//! Offline path: train the refinement network, distill it into a LUT, save
//! the LUT to disk, reload it and use it for super-resolution — the workflow
//! a deployment would run once per content library.
//!
//! ```text
//! cargo run --release --example train_and_build_lut
//! ```

use volut::core::encoding::KeyScheme;
use volut::core::lut::builder::LutBuilder;
use volut::core::lut::io::{read_lut, write_sparse, LutHeader};
use volut::core::lut::memory::{table1_rows, MemoryModel};
use volut::core::lut::Lut as _;
use volut::core::nn::train::{build_training_set, RefinementTrainer, TrainConfig};
use volut::core::refine::LutRefiner;
use volut::core::{SrConfig, SrPipeline};
use volut::pointcloud::{metrics, sampling, synthetic};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = SrConfig::default();

    // Table 1: what a dense LUT would cost for different configurations.
    println!("dense LUT memory model (paper Table 1):");
    for row in table1_rows() {
        println!(
            "  n={} b={:>3}  entries={:>12}  size={}",
            row.receptive_field, row.bins, row.entries, row.formatted
        );
    }
    println!(
        "deployed configuration n=4, b=128 -> {}",
        MemoryModel::format_bytes(MemoryModel::new(4, 128).compact_bytes())
    );

    // Train on several animation phases of the "Long Dress" stand-in.
    let mut set = build_training_set(
        &synthetic::humanoid(6_000, 0.0, 1),
        0.5,
        &config,
        KeyScheme::Full,
        1,
    )?;
    set.extend(build_training_set(
        &synthetic::humanoid(6_000, 0.9, 1),
        0.25,
        &config,
        KeyScheme::Full,
        2,
    )?);
    let mut trainer = RefinementTrainer::new(
        &config,
        TrainConfig {
            epochs: 8,
            ..TrainConfig::default()
        },
    )?;
    let report = trainer.train(&set)?;
    println!(
        "trained on {} samples, loss {:?} -> {:?}",
        set.len(),
        report.epoch_losses.first(),
        report.final_loss()
    );

    // Distill and persist.
    let network = trainer.into_network();
    let lut = LutBuilder::new(&config, KeyScheme::Full)?.distill_sparse(&network, &set)?;
    println!(
        "distilled sparse LUT: {} entries, {} bytes resident",
        lut.populated(),
        lut.memory_bytes()
    );
    let header = LutHeader {
        scheme: KeyScheme::Full,
        receptive_field: config.receptive_field,
        bins: config.bins,
    };
    let path = std::env::temp_dir().join("volut_example.vlut");
    write_sparse(&lut, header, &path)?;
    println!("wrote {}", path.display());

    // Reload and use on unseen content (the "Loot" stand-in) to check
    // generalization, like the paper's cross-video evaluation.
    let loaded = read_lut(&path)?;
    println!(
        "reloaded LUT: {} entries, scheme {:?}",
        loaded.as_lut().populated(),
        loaded.header().scheme
    );
    let refiner =
        LutRefiner::from_config(&config, loaded.header().scheme, loaded.into_boxed_lut())?;
    let pipeline = SrPipeline::new(config, Box::new(refiner));

    let unseen = synthetic::humanoid(8_000, 2.0, 99);
    let low = sampling::random_downsample(&unseen, 0.25, 5)?;
    let result = pipeline.upsample(&low, 4.0)?;
    let quality = metrics::quality_report(&result.cloud, &unseen);
    println!(
        "x4 SR on unseen content: {} -> {} points, psnr {:.2} dB, chamfer {:.6}, lut hit rate {:.1}%",
        low.len(),
        result.cloud.len(),
        quality.psnr_db,
        quality.chamfer,
        result.lookup_stats.map(|s| s.hit_rate() * 100.0).unwrap_or(0.0)
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}

//! Quickstart: downsample a synthetic frame, upsample it back with the
//! two-stage VoLUT pipeline, and report quality metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use volut::core::encoding::KeyScheme;
use volut::core::lut::builder::LutBuilder;
use volut::core::nn::train::{build_training_set, RefinementTrainer, TrainConfig};
use volut::core::refine::{IdentityRefiner, LutRefiner};
use volut::core::{SrConfig, SrPipeline};
use volut::pointcloud::{metrics, sampling, synthetic};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. "Capture" a ground-truth frame (stand-in for a Long Dress frame).
    let ground_truth = synthetic::humanoid(8_000, 0.3, 42);
    println!("ground truth: {} points", ground_truth.len());

    // 2. Offline: train the refinement network on downsampled/original pairs
    //    and distill it into a lookup table.
    let config = SrConfig::default();
    let training_set = build_training_set(&ground_truth, 0.5, &config, KeyScheme::Full, 7)?;
    let mut trainer = RefinementTrainer::new(
        &config,
        TrainConfig {
            epochs: 6,
            ..TrainConfig::default()
        },
    )?;
    let report = trainer.train(&training_set)?;
    println!(
        "trained refinement network on {} samples, final loss {:.5}",
        report.samples,
        report.final_loss().unwrap_or(f32::NAN)
    );
    let network = trainer.into_network();
    let lut = LutBuilder::new(&config, KeyScheme::Full)?.distill_sparse(&network, &training_set)?;

    // 3. Online: the server randomly downsamples the frame (here to 50%),
    //    the client interpolates + LUT-refines it back to full density.
    let low = sampling::random_downsample(&ground_truth, 0.5, 3)?;
    let volut = SrPipeline::new(
        config,
        Box::new(LutRefiner::from_config(
            &config,
            KeyScheme::Full,
            Box::new(lut),
        )?),
    );
    let interp_only = SrPipeline::new(config, Box::new(IdentityRefiner));

    let refined = volut.upsample(&low, 2.0)?;
    let unrefined = interp_only.upsample(&low, 2.0)?;

    // 4. Compare quality.
    let report = |name: &str, cloud: &volut::pointcloud::PointCloud| {
        let q = metrics::quality_report(cloud, &ground_truth);
        println!(
            "{name:<22} points {:>6}  psnr {:>6.2} dB  chamfer {:.6}",
            cloud.len(),
            q.psnr_db,
            q.chamfer
        );
    };
    report("received (50%)", &low);
    report("interpolation only", &unrefined.cloud);
    report("VoLUT (LUT refined)", &refined.cloud);
    println!(
        "SR stage breakdown: knn {:?}, interpolation {:?}, colorization {:?}, refinement {:?}",
        refined.timings.knn,
        refined.timings.interpolation,
        refined.timings.colorization,
        refined.timings.refinement
    );
    Ok(())
}

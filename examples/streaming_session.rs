//! End-to-end streaming session: plays the "Long Dress" stand-in over an LTE
//! trace with VoLUT, Yuzu-SR and ViVo, printing the per-system QoE, stall
//! and data usage plus a short excerpt of VoLUT's chunk timeline.
//!
//! ```text
//! cargo run --release --example streaming_session
//! ```

use volut::stream::chunk::chunk_video;
use volut::stream::simulator::{SessionConfig, StreamingSimulator};
use volut::stream::systems::SystemKind;
use volut::stream::trace::NetworkTrace;
use volut::stream::video::VideoMeta;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two minutes of 100K-point content at 30 FPS.
    let mut video = VideoMeta::long_dress();
    video.frame_count = 3600;
    let trace = NetworkTrace::synthetic_lte(32.5, 13.5, video.duration_s() + 60.0, 7);
    println!(
        "video: {} ({:.0} s, {:.0} Mbps raw, {:.0} Mbps compressed) over trace {} (mean {:.1} Mbps, std {:.1})",
        video.name,
        video.duration_s(),
        video.raw_bitrate_mbps(),
        video.compressed_bitrate_mbps(),
        trace.name,
        trace.mean_mbps(),
        trace.std_mbps()
    );

    let sim = StreamingSimulator::new(SessionConfig::default());
    let full_bytes: u64 = chunk_video(&video, sim.config().chunk_duration_s)
        .iter()
        .map(|c| c.encoded_bytes(1.0))
        .sum();

    println!(
        "\n{:<32} {:>8} {:>9} {:>10} {:>12}",
        "system", "QoE", "stall(s)", "data (MB)", "vs full (%)"
    );
    for system in [
        SystemKind::VolutContinuous,
        SystemKind::YuzuSr,
        SystemKind::Vivo,
        SystemKind::Raw,
    ] {
        let r = sim.run(&video, &trace, system)?;
        println!(
            "{:<32} {:>8.1} {:>9.1} {:>10.1} {:>11.1}%",
            system.label(),
            r.qoe.normalized,
            r.stall_s,
            r.data_bytes as f64 / 1e6,
            r.data_bytes as f64 / full_bytes as f64 * 100.0
        );
    }

    // Show how the continuous controller adapts chunk by chunk.
    let volut = sim.run(&video, &trace, SystemKind::VolutContinuous)?;
    println!("\nVoLUT timeline (first 10 chunks):");
    println!(
        "{:>5} {:>9} {:>8} {:>9} {:>9} {:>8}",
        "chunk", "density", "SR", "quality", "buffer", "stall"
    );
    for record in volut.timeline.iter().take(10) {
        println!(
            "{:>5} {:>9.3} {:>7.1}x {:>9.2} {:>8.1}s {:>7.2}s",
            record.index,
            record.fetch_density,
            record.sr_ratio,
            record.displayed_quality,
            record.buffer_after_s,
            record.stall_s
        );
    }
    Ok(())
}

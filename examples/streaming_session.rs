//! End-to-end streaming session: plays the "Long Dress" stand-in over an LTE
//! trace with VoLUT, Yuzu-SR and ViVo, printing the per-system QoE, stall
//! and data usage plus a short excerpt of VoLUT's chunk timeline. A live
//! delta-frame SR session is driven first: a churned frame sequence (the
//! synthetic stand-in for chunked volumetric delivery) runs through the
//! engine's temporally coherent incremental kNN path, its per-stage timings
//! calibrate the compute model, and the simulator then prices VoLUT's chunks
//! with that temporally-coherent cost instead of the cold-frame constants.
//!
//! ```text
//! cargo run --release --example streaming_session
//! ```

use volut::core::refine::IdentityRefiner;
use volut::core::{SrConfig, SrPipeline};
use volut::pointcloud::synthetic;
use volut::pointcloud::synthetic::DeltaStreamConfig;
use volut::stream::chunk::chunk_video;
use volut::stream::client::SrSession;
use volut::stream::faults::{FaultConfig, FaultyLink};
use volut::stream::link::SimulatedLink;
use volut::stream::resilience::{DeltaServer, ResilientSession};
use volut::stream::simulator::{SessionConfig, StreamingSimulator};
use volut::stream::systems::SystemKind;
use volut::stream::trace::NetworkTrace;
use volut::stream::video::VideoMeta;

/// Drives a live churned SR session and reports what temporal coherence
/// buys, returning the compute model the simulator should price VoLUT with:
/// the stock `volut_lut` constants with only the **kNN term** replaced by
/// the live churned measurement. The session runs an identity refiner (no
/// trained LUT exists in this example), so its interpolate/colorize/refine
/// timings are not representative — substituting just the knn term keeps
/// the cross-system comparison fair while still crediting the temporal
/// reuse this measurement demonstrates.
fn live_churned_calibration() -> Result<volut::stream::client::SrComputeModel, volut::core::Error> {
    let base = synthetic::humanoid(20_000, 0.5, 7);
    let churn = 0.1;
    let frames = 8;
    println!(
        "live delta-frame session: {} points, {:.0}% churn per frame, {frames} frames",
        base.len(),
        churn * 100.0
    );
    let mut session = SrSession::new(SrPipeline::new(
        SrConfig::default(),
        Box::new(IdentityRefiner),
    ));
    let measured = session.calibrate_model_churned(&base, 2.0, churn, frames)?;
    let stats = session.index_stats();
    let t = session.temporal_stats();
    println!(
        "  index: {} rebuilt / {} patched; rows: {} reused / {} recomputed ({:.0}% reused)",
        stats.rebuilds,
        stats.patches,
        stats.rows_reused,
        stats.rows_recomputed,
        100.0 * stats.rows_reused as f64 / (stats.rows_reused + stats.rows_recomputed) as f64,
    );
    let mut model = volut::stream::client::SrComputeModel::volut_lut();
    println!(
        "  frames: {} incremental / {} full; knn cost: {:.3} us/point measured vs {:.3} cold default",
        t.incremental_frames, t.full_frames, measured.knn_us_per_input_point, model.knn_us_per_input_point
    );
    model.knn_us_per_input_point = measured.knn_us_per_input_point;
    Ok(model)
}

/// Streams a churned delta-frame sequence over a link with 2% burst loss
/// (plus occasional corruption) through the resilient session protocol,
/// then re-runs the identical sequence over a clean link and checks the
/// final upsampled frames are bit-identical — faults cost recovery time,
/// never correctness.
fn lossy_delta_session() -> Result<(), Box<dyn std::error::Error>> {
    let base = synthetic::humanoid(8_000, 0.5, 11);
    let frames = synthetic::delta_frame_sequence(
        &base,
        60,
        DeltaStreamConfig {
            churn: 0.1,
            drift: 0.04,
            jitter: 0.008,
            seed: 11,
        },
    );
    let server = DeltaServer::new(frames);
    let trace = NetworkTrace::stable(60.0, 600.0);
    let make_session = || {
        ResilientSession::new(SrSession::new(SrPipeline::new(
            SrConfig::default(),
            Box::new(IdentityRefiner),
        )))
    };

    println!("\nlossy delta streaming: 60 frames, 10% churn, 2% burst loss");
    let mut lossy_link = FaultyLink::new(
        SimulatedLink::new(&trace),
        FaultConfig::bursty_loss(0.02),
        16,
    );
    let mut clean_link = FaultyLink::new(SimulatedLink::new(&trace), FaultConfig::lossless(), 16);
    let mut lossy = make_session();
    let mut clean = make_session();
    let mut identical = 0usize;
    for seq in 0..server.frame_count() as u64 {
        let a = lossy.advance(&server, &mut lossy_link, seq, 2.0)?;
        let b = clean.advance(&server, &mut clean_link, seq, 2.0)?;
        if a.cloud == b.cloud {
            identical += 1;
        }
    }
    let stats = lossy.stats();
    println!(
        "  link: {} drops seen, {} integrity failures, {} retries",
        stats.drops_seen, stats.integrity_failures, stats.retries
    );
    println!(
        "  recovered: {} spliced (compose), {} retransmitted, {} keyframe resyncs",
        stats.recovered_compose, stats.recovered_retransmit, stats.recovered_keyframe
    );
    println!(
        "  output: {identical}/{} frames bit-identical to the clean run; \
         session time {:.2}s (clean {:.2}s)",
        server.frame_count(),
        lossy.clock_s(),
        clean.clock_s()
    );
    assert_eq!(
        identical,
        server.frame_count(),
        "faults must never change output"
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let churned_model = live_churned_calibration()?;
    lossy_delta_session()?;

    // Two minutes of 100K-point content at 30 FPS.
    let mut video = VideoMeta::long_dress();
    video.frame_count = 3600;
    let trace = NetworkTrace::synthetic_lte(32.5, 13.5, video.duration_s() + 60.0, 7);
    println!(
        "video: {} ({:.0} s, {:.0} Mbps raw, {:.0} Mbps compressed) over trace {} (mean {:.1} Mbps, std {:.1})",
        video.name,
        video.duration_s(),
        video.raw_bitrate_mbps(),
        video.compressed_bitrate_mbps(),
        trace.name,
        trace.mean_mbps(),
        trace.std_mbps()
    );

    let sim = StreamingSimulator::new(SessionConfig::default());
    let full_bytes: u64 = chunk_video(&video, sim.config().chunk_duration_s)
        .iter()
        .map(|c| c.encoded_bytes(1.0))
        .sum();

    println!(
        "\n{:<32} {:>8} {:>9} {:>10} {:>12}",
        "system", "QoE", "stall(s)", "data (MB)", "vs full (%)"
    );
    for system in [
        SystemKind::VolutContinuous,
        SystemKind::YuzuSr,
        SystemKind::Vivo,
        SystemKind::Raw,
    ] {
        // VoLUT's compute cost comes from the live churned calibration
        // above, so the simulator charges temporally-coherent frame costs.
        let r = if system == SystemKind::VolutContinuous {
            sim.run_with_model(&video, &trace, system, churned_model.clone())?
        } else {
            sim.run(&video, &trace, system)?
        };
        println!(
            "{:<32} {:>8.1} {:>9.1} {:>10.1} {:>11.1}%",
            system.label(),
            r.qoe.normalized,
            r.stall_s,
            r.data_bytes as f64 / 1e6,
            r.data_bytes as f64 / full_bytes as f64 * 100.0
        );
    }

    // Show how the continuous controller adapts chunk by chunk.
    let volut = sim.run(&video, &trace, SystemKind::VolutContinuous)?;
    println!("\nVoLUT timeline (first 10 chunks):");
    println!(
        "{:>5} {:>9} {:>8} {:>9} {:>9} {:>8}",
        "chunk", "density", "SR", "quality", "buffer", "stall"
    );
    for record in volut.timeline.iter().take(10) {
        println!(
            "{:>5} {:>9.3} {:>7.1}x {:>9.2} {:>8.1}s {:>7.2}s",
            record.index,
            record.fetch_density,
            record.sr_ratio,
            record.displayed_quality,
            record.buffer_after_s,
            record.stall_s
        );
    }
    Ok(())
}

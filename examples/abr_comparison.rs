//! Compares ABR controllers (continuous MPC, discrete MPC, buffer-based,
//! rate-based) over a range of stable bandwidths, printing the density each
//! one selects and the resulting QoE — the intuition behind the paper's
//! continuous-ABR contribution (§5).
//!
//! ```text
//! cargo run --release --example abr_comparison
//! ```

use volut::stream::abr::{
    AbrContext, AbrController, BufferBasedAbr, ContinuousMpcAbr, DiscreteMpcAbr, RateBasedAbr,
};
use volut::stream::qoe::QoeParams;
use volut::stream::simulator::{SessionConfig, StreamingSimulator};
use volut::stream::systems::SystemKind;
use volut::stream::trace::NetworkTrace;
use volut::stream::video::VideoMeta;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Single-decision view: what density does each controller pick?
    println!("single-chunk decisions (full chunk = 11.25 MB compressed, SR up to 8x):");
    println!(
        "{:>10} {:>14} {:>13} {:>13} {:>11}",
        "bandwidth", "continuous", "discrete", "buffer", "rate"
    );
    for mbps in [20.0, 35.0, 50.0, 75.0, 100.0, 150.0] {
        let ctx = AbrContext {
            throughput_mbps: mbps,
            buffer_level_s: 4.0,
            chunk_duration_s: 1.0,
            full_chunk_bytes: 11_250_000,
            previous_quality: 0.8,
            max_sr_ratio: 8.0,
            sr_quality_factor: 0.75,
            sr_seconds_per_chunk: 0.1,
        };
        let mut continuous = ContinuousMpcAbr::default();
        let mut discrete = DiscreteMpcAbr::yuzu_ladder(QoeParams::default());
        let mut buffer = BufferBasedAbr::default();
        let mut rate = RateBasedAbr::default();
        println!(
            "{:>8.0}Mb {:>14.3} {:>13.3} {:>13.3} {:>11.3}",
            mbps,
            continuous.decide(&ctx).fetch_density,
            discrete.decide(&ctx).fetch_density,
            buffer.decide(&ctx).fetch_density,
            rate.decide(&ctx).fetch_density,
        );
    }

    // Session-level view: continuous vs discrete ABR with the same LUT SR.
    let mut video = VideoMeta::long_dress();
    video.frame_count = 1800; // one minute
    let sim = StreamingSimulator::new(SessionConfig::default());
    println!("\nsession results over stable links (same LUT SR, different ABR granularity):");
    println!(
        "{:>10} {:>26} {:>10} {:>12}",
        "bandwidth", "system", "QoE", "data (MB)"
    );
    for mbps in [30.0, 50.0, 80.0] {
        let trace = NetworkTrace::stable(mbps, video.duration_s() + 30.0);
        for system in [SystemKind::VolutContinuous, SystemKind::VolutDiscrete] {
            let r = sim.run(&video, &trace, system)?;
            println!(
                "{:>8.0}Mb {:>26} {:>10.1} {:>12.1}",
                mbps,
                system.label(),
                r.qoe.normalized,
                r.data_bytes as f64 / 1e6
            );
        }
    }
    Ok(())
}

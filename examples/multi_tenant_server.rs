//! Multi-tenant SR server: one process, many concurrent streaming sessions
//! sharing one immutable content registry.
//!
//! The example publishes a dense Compact-scheme serving LUT into a
//! `ModelRegistry`, admits 200 churned sessions against it through the
//! server's bounded queue (capacity 64, so admission staggers), runs them to
//! retirement over the work-stealing pool, and prints the aggregate
//! telemetry: throughput, frame-time percentiles from the streaming sketch,
//! QoE and reuse-rate histograms. It then shows the two levers the server
//! exists for: bytes/session with the registry shared vs cloned per
//! session, and the deadline ladder — the same workload re-run under an
//! impossible per-frame budget degrades explicitly (level residency, honest
//! QoE) instead of stalling. A final section feeds tenants through the
//! resilient delta protocol over lossy links: recovery runs inside the tick
//! loop, one tenant's permanently dead link gets it quarantined with a
//! typed cause, and every healthy tenant's output digest stays bit-identical
//! to the clean-link run.
//!
//! ```text
//! cargo run --release --example multi_tenant_server
//! ```

use std::sync::Arc;

use volut::core::config::SrConfig;
use volut::core::encoding::KeyScheme;
use volut::core::lut::dense::DenseLut;
use volut::core::lut::Lut as _;
use volut::core::registry::{ContentModel, ModelRegistry};
use volut::stream::faults::FaultConfig;
use volut::stream::resilience::DegradationConfig;
use volut::stream::server::{IngestConfig, IngestSource, ServerConfig, SessionSpec, SrServer};
use volut::stream::telemetry::UNIT_BUCKETS;

const CONTENT: &str = "long-dress";

/// One serving-scale content item: a dense Compact LUT over bins = 16
/// (16^4 = 65 536 keys, ~0.4 MiB), one-third populated.
fn registry() -> Arc<ModelRegistry> {
    let config = SrConfig {
        bins: 16,
        ..SrConfig::default()
    };
    let key_space = (config.bins as u128).pow(config.receptive_field as u32);
    let mut lut = DenseLut::new(key_space).expect("table within budget");
    for key in (0..key_space).step_by(3) {
        lut.set(key, [0.01, -0.004, 0.002]).expect("in-range key");
    }
    let mut reg = ModelRegistry::new();
    reg.publish(ContentModel::from_dense(
        CONTENT,
        config,
        KeyScheme::Compact,
        lut,
        None,
    ));
    Arc::new(reg)
}

fn specs(n: usize) -> Vec<SessionSpec> {
    (0..n as u64)
        .map(|seed| SessionSpec {
            content: CONTENT.into(),
            seed,
            points: 300 + (seed as usize % 4) * 100,
            churn: [0.0, 0.05, 0.15, 0.3][seed as usize % 4],
            frames: 6,
            ingest: IngestSource::Local,
        })
        .collect()
}

fn histogram_line(counts: &[u64; UNIT_BUCKETS]) -> String {
    counts
        .iter()
        .enumerate()
        .map(|(i, c)| format!("{}-{}%:{c}", i * 10, (i + 1) * 10))
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let registry = registry();
    let sessions = 200;

    // --- 1. The serving run: bounded admission, shared registry. ---------
    println!("== multi-tenant serving: {sessions} sessions, capacity 64 ==");
    let mut server = SrServer::new(
        Arc::clone(&registry),
        ServerConfig {
            capacity: 64,
            queue_limit: sessions,
            ..ServerConfig::default()
        },
    );
    for spec in specs(sessions) {
        assert!(server.enqueue(spec));
    }
    let report = server.run(1_000);
    let t = &report.telemetry;
    println!(
        "  {} frames in {:.2}s wall -> {:.0} frames/s aggregate",
        t.frames_total, report.wall_s, report.aggregate_fps
    );
    println!(
        "  frame time p50/p95/p99: {:.3}/{:.3}/{:.3} ms (max {:.3} ms)",
        t.frame_time_p50_ms, t.frame_time_p95_ms, t.frame_time_p99_ms, t.frame_time_max_ms
    );
    println!(
        "  admitted {} | rejected {} | retired {} | deadline misses {} | frame errors {}",
        t.sessions_admitted,
        t.sessions_rejected,
        t.sessions_retired,
        t.deadline_misses,
        report.frame_errors
    );
    println!(
        "  reuse-rate histogram: {}",
        histogram_line(t.reuse_histogram.counts())
    );
    let mean_qoe = report
        .sessions
        .iter()
        .map(|s| s.qoe.normalized)
        .sum::<f64>()
        / report.sessions.len().max(1) as f64;
    println!("  mean normalized QoE across sessions: {mean_qoe:.2}");

    // --- 2. What sharing the registry buys. ------------------------------
    println!("\n== bytes/session: shared registry vs per-session clones ==");
    let table_bytes = registry.shared_bytes();
    for share in [true, false] {
        let mut s = SrServer::new(
            Arc::clone(&registry),
            ServerConfig {
                capacity: 32,
                queue_limit: 32,
                share_registry: share,
                ..ServerConfig::default()
            },
        );
        for spec in specs(32) {
            s.enqueue(spec);
        }
        s.tick();
        s.tick();
        let m = s.memory_stats();
        println!(
            "  {:<7}: {:>10.0} bytes/session ({} sessions; table {} bytes held {})",
            if share { "shared" } else { "cloned" },
            m.bytes_per_session,
            m.sessions,
            table_bytes,
            if share { "once" } else { "per session" },
        );
    }

    // --- 3. The deadline ladder under an impossible budget. ---------------
    println!("\n== same workload, 50 us frame deadline: explicit degradation ==");
    let mut strained = SrServer::new(
        Arc::clone(&registry),
        ServerConfig {
            capacity: 64,
            queue_limit: 64,
            deadline_s: 50e-6,
            degradation: Some(DegradationConfig {
                degrade_after: 1,
                recover_after: 3,
                ..DegradationConfig::default()
            }),
            ..ServerConfig::default()
        },
    );
    for spec in specs(64) {
        strained.enqueue(spec);
    }
    let degraded = strained.run(1_000);
    let mut residency = [0u64; 5];
    for s in &degraded.sessions {
        for (acc, r) in residency.iter_mut().zip(s.residency) {
            *acc += r;
        }
    }
    let strained_qoe = degraded
        .sessions
        .iter()
        .map(|s| s.qoe.normalized)
        .sum::<f64>()
        / degraded.sessions.len().max(1) as f64;
    println!(
        "  level residency [full, skip-refine, reduced-ratio, interp-only, passthrough]: {residency:?}"
    );
    println!(
        "  frame errors {} (degradation sheds work, never corrupts); mean QoE {:.2} (honest cost)",
        degraded.frame_errors, strained_qoe
    );
    assert_eq!(degraded.frame_errors, 0);

    // --- 4. Resilient ingest: lossy links, quarantine, bit-identity. ------
    println!("\n== resilient ingest: 24 tenants on 2% burst-loss links + 1 dead link ==");
    let chaos_config = ServerConfig {
        capacity: 32,
        queue_limit: 32,
        degradation: None, // isolate the transport path for digest compares
        ..ServerConfig::default()
    };
    let run_chaos = |faulted: bool| {
        let mut s = SrServer::new(Arc::clone(&registry), chaos_config.clone());
        for mut spec in specs(24) {
            spec.ingest = IngestSource::Resilient(IngestConfig {
                faults: if faulted {
                    FaultConfig::bursty_loss(0.02)
                } else {
                    FaultConfig::lossless()
                },
                ..IngestConfig::default()
            });
            assert!(s.enqueue(spec));
        }
        if faulted {
            // One tenant whose link never delivers: quarantined, not served.
            let mut dead = specs(1).remove(0);
            dead.seed = 999;
            dead.ingest = IngestSource::Resilient(IngestConfig {
                faults: FaultConfig {
                    drop: 1.0,
                    ..FaultConfig::default()
                },
                ..IngestConfig::default()
            });
            assert!(s.enqueue(dead));
        }
        s.run(1_000)
    };
    let clean = run_chaos(false);
    let chaos = run_chaos(true);
    let ingest = &chaos.telemetry.ingest;
    println!(
        "  recoveries: {} retransmit | {} compose | {} keyframe resync | {} poisonings detected",
        ingest.recovered_retransmit,
        ingest.recovered_compose,
        ingest.recovered_keyframe,
        ingest.poisonings_detected
    );
    let quarantined: Vec<_> = chaos
        .sessions
        .iter()
        .filter(|r| r.failure.is_some())
        .collect();
    for q in &quarantined {
        println!(
            "  quarantined tenant seed {}: {:?} after {} frames",
            q.seed, q.failure, q.frames
        );
    }
    assert_eq!(chaos.telemetry.sessions_quarantined, 1);
    let digests = |report: &volut::stream::server::ServerReport| {
        let mut rows: Vec<(u64, u64)> = report
            .sessions
            .iter()
            .filter(|r| r.seed < 999)
            .map(|r| (r.seed, r.digest))
            .collect();
        rows.sort_unstable();
        rows
    };
    assert_eq!(
        digests(&clean),
        digests(&chaos),
        "healthy tenants must be bit-identical to the clean-link run"
    );
    println!("  all 24 healthy tenants bit-identical to the clean-link run");
    Ok(())
}

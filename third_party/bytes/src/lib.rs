//! Offline shim for the `bytes` crate (see `third_party/README.md`).
//!
//! [`Bytes`] is a cheaply clonable immutable byte buffer (`Arc<[u8]>`
//! underneath — no slicing views, which this workspace never uses),
//! [`BytesMut`] a growable builder with little-endian `put_*` methods, and
//! [`Buf`] the reader trait implemented for `&[u8]` cursors.

use std::ops::Deref;
use std::sync::Arc;

/// Immutable, cheaply clonable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: data.into() }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

/// Growable byte buffer with little-endian writers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends raw bytes.
    pub fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16_le(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u128`.
    pub fn put_u128_le(&mut self, v: u128) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    pub fn put_f32_le(&mut self, v: f32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data.into(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Reader over a shrinking byte cursor (implemented for `&[u8]`).
///
/// # Panics
/// Like upstream `bytes`, the `get_*` methods panic when the cursor holds
/// fewer bytes than requested — callers bounds-check with [`Buf::remaining`].
pub trait Buf {
    /// Bytes left in the cursor.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out and advances.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `u128`.
    fn get_u128_le(&mut self) -> u128 {
        let mut b = [0u8; 16];
        self.copy_to_slice(&mut b);
        u128::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Writer trait alias kept for API parity (`BytesMut` has inherent methods).
pub trait BufMut {}
impl BufMut for BytesMut {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(64);
        buf.put_slice(b"VPC1");
        buf.put_u8(7);
        buf.put_u16_le(1234);
        buf.put_u64_le(0xDEAD_BEEF);
        buf.put_u128_le(1 << 100);
        buf.put_f32_le(-1.5);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        let mut magic = [0u8; 4];
        cursor.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"VPC1");
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u16_le(), 1234);
        assert_eq!(cursor.get_u64_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u128_le(), 1 << 100);
        assert_eq!(cursor.get_f32_le(), -1.5);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1, 2];
        cursor.get_u64_le();
    }
}

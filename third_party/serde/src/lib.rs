//! Offline shim for the `serde` crate (see `third_party/README.md`).
//!
//! Instead of serde's visitor-based architecture, this shim uses a concrete
//! [`Value`] tree as its data model: `Serialize` renders a type into a
//! `Value`, `Deserialize` reconstructs a type from one. `serde_json` (the
//! sibling shim) prints and parses that tree as JSON. The derive macros are
//! re-exported from `serde_derive`.

use std::collections::HashMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model shared by `Serialize` / `Deserialize`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for absent fields).
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer (covers every integer type in the workspace).
    Int(i128),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence (arrays, `Vec`, tuples).
    Seq(Vec<Value>),
    /// Key-value map in insertion order (structs, string-keyed maps).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Map lookup by key; `None` for non-maps or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Error produced by [`Deserialize`] (and the `serde_json` shim).
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Wraps the error with the field path that produced it.
    pub fn in_field(self, field: &str) -> Self {
        Self {
            message: format!("{field}: {}", self.message),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Renders `self` as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`] tree.
    ///
    /// # Errors
    /// Returns [`Error`] when the value's shape does not match `Self`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// --- primitive impls -------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::Float(f) if f.fract() == 0.0 => Ok(*f as $t),
                    _ => Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}
int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_value(&self) -> Value {
        // i128 covers every key the LUT layer serializes (bins^n fits well
        // below 2^127 for all valid configs); saturate defensively.
        Value::Int(i128::try_from(*self).unwrap_or(i128::MAX))
    }
}

impl Deserialize for u128 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Int(i) => {
                u128::try_from(*i).map_err(|_| Error::custom("negative integer for u128"))
            }
            _ => Err(Error::custom("expected integer for u128")),
        }
    }
}

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        Value::Int(*self)
    }
}

impl Deserialize for i128 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Int(i) => Ok(*i),
            _ => Err(Error::custom("expected integer for i128")),
        }
    }
}

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(f64::from(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    _ => Err(Error::custom(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}
float_impls!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// --- containers ------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected sequence")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) if items.len() == N => {
                let mut out = [T::default(); N];
                for (slot, item) in out.iter_mut().zip(items) {
                    *slot = T::from_value(item)?;
                }
                Ok(out)
            }
            _ => Err(Error::custom("expected sequence of matching length")),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            _ => Err(Error::custom("expected two-element sequence")),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            _ => Err(Error::custom("expected map")),
        }
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("secs".to_string(), Value::Int(self.as_secs() as i128)),
            (
                "nanos".to_string(),
                Value::Int(i128::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let secs = u64::from_value(value.get("secs").unwrap_or(&Value::Null))?;
        let nanos = u32::from_value(value.get("nanos").unwrap_or(&Value::Null))?;
        Ok(std::time::Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        let v: Option<u32> = Some(7);
        assert_eq!(Option::<u32>::from_value(&v.to_value()).unwrap(), Some(7));
        let n: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&n.to_value()).unwrap(), None);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1.5f32, -2.25];
        assert_eq!(Vec::<f32>::from_value(&v.to_value()).unwrap(), v);
        let a = [3usize, 4];
        assert_eq!(<[usize; 2]>::from_value(&a.to_value()).unwrap(), a);
        let t = (1u8, "x".to_string());
        assert_eq!(<(u8, String)>::from_value(&t.to_value()).unwrap(), t);
    }

    #[test]
    fn map_get() {
        let v = Value::Map(vec![("a".to_string(), Value::Int(1))]);
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        assert_eq!(v.get("b"), None);
    }
}

//! Offline shim for the `proptest` crate (see `third_party/README.md`).
//!
//! Provides the surface this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, strategies for numeric ranges and
//! tuples, `prop::collection::vec`, `ProptestConfig::with_cases`, and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros. Inputs are
//! sampled from seeded RNG streams (deterministic per case index) — there
//! is no shrinking; a failing case panics with the standard assert message.
//!
//! Limitation: at most one `proptest!` block per module (the config is
//! expanded into a helper function with a fixed name).

use rand::prelude::*;
use std::ops::Range;

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps the generated value through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
range_strategy!(usize, u64, u32, u16, u8, i32, i64, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

/// The `prop::` namespace (`prop::collection::vec`).
pub mod prop {
    pub mod collection {
        use super::super::{StdRng, Strategy};
        use rand::prelude::*;
        use std::ops::Range;

        /// Strategy producing `Vec`s whose length is drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// Vector of values from `element` with length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = rng.random_range(self.len.clone());
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

pub use rand::rngs::StdRng;

/// Per-case RNG: deterministic stream derived from the case index.
pub fn case_rng(case: u32) -> StdRng {
    StdRng::seed_from_u64(
        0x70726f_70746573u64 ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15),
    )
}

/// Boolean property assertion (no shrinking — plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality property assertion (no shrinking — plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality property assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running `cases` seeded random cases.
#[macro_export]
macro_rules! proptest {
    (
        $(#![proptest_config($config:expr)])?
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        /// Number of cases configured for this `proptest!` block.
        #[allow(dead_code)]
        fn __proptest_shim_cases() -> u32 {
            #[allow(unused_mut, unused_assignments)]
            let mut config = $crate::ProptestConfig::default();
            $( config = $config; )?
            config.cases
        }

        $(
            $(#[$meta])*
            fn $name() {
                for __case in 0..__proptest_shim_cases() {
                    let mut __rng = $crate::case_rng(__case);
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )*
                    $body
                }
            }
        )*
    };
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude`.
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u32, u32)> {
        (0u32..10, 10u32..20)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_maps_compose(
            small in (0usize..5).prop_map(|v| v * 2),
            pair in arb_pair(),
            items in prop::collection::vec(0f32..1.0, 1..6),
        ) {
            prop_assert!(small < 10 && small % 2 == 0);
            prop_assert!(pair.0 < 10 && (10..20).contains(&pair.1));
            prop_assert!(!items.is_empty() && items.len() < 6);
            prop_assert!(items.iter().all(|v| (0.0..1.0).contains(v)));
        }
    }
}

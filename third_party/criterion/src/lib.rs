//! Offline shim for the `criterion` crate (see `third_party/README.md`).
//!
//! Implements the subset of the criterion API this workspace's benches use
//! (`Criterion`, groups, `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `sample_size`, `iter`) with a simple wall-clock harness:
//! each benchmark is warmed up once, then timed for `sample_size` samples,
//! and the mean / median / min per-iteration time is printed. Statistical
//! rigor is intentionally traded for zero dependencies — the numbers are
//! for relative comparisons in this repo's perf trajectory, not papers.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (benches in this repo import it
/// from `std::hint`, but the canonical criterion path also works).
pub use std::hint::black_box;

/// Returns `true` when the bench binary was invoked in quick/smoke mode
/// (`cargo bench -- --test`, mirroring real criterion, or `--quick`).
/// Benches use this to downscale workloads; [`Criterion::new`] uses it to
/// pin every benchmark to a single sample.
pub fn is_quick_mode() -> bool {
    std::env::args().any(|a| a == "--test" || a == "--quick")
}

/// Identifies one benchmark inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name (plain strings or [`BenchmarkId`]).
pub trait IntoBenchmarkLabel {
    /// The display label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// Per-benchmark timer handle passed to the closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `sample_size` measured calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn report(group: &str, label: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{group}/{label}: no samples");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let mut line = String::new();
    let _ = write!(
        line,
        "{group}/{label}: mean {} median {} min {} ({} samples)",
        format_duration(mean),
        format_duration(median),
        format_duration(min),
        samples.len()
    );
    println!("{line}");
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    quick: bool,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark (criterion's `sample_size`).
    /// Ignored in `--test` quick mode, which pins every benchmark to one
    /// sample.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if !self.quick {
            self.sample_size = n.max(1);
        }
        self
    }

    /// Ignored; kept for API parity.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark without an explicit input.
    pub fn bench_function<L: IntoBenchmarkLabel, F: FnMut(&mut Bencher)>(
        &mut self,
        id: L,
        mut f: F,
    ) -> &mut Self {
        let label = id.into_label();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&self.name, &label, &mut bencher.samples);
        self
    }

    /// Runs a benchmark with a borrowed input value.
    pub fn bench_with_input<L: IntoBenchmarkLabel, I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: L,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = id.into_label();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        report(&self.name, &label, &mut bencher.samples);
        self
    }

    /// Finishes the group (printing is already done per benchmark).
    pub fn finish(&mut self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
    quick: bool,
}

impl Criterion {
    /// Shim default: 10 samples per benchmark. Like real criterion, passing
    /// `--test` (or `--quick`) on the command line — `cargo bench -- --test`
    /// — switches to a smoke mode that runs every benchmark once, so CI can
    /// verify the bench targets compile and execute without paying full
    /// measurement time.
    pub fn new() -> Self {
        let quick = is_quick_mode();
        Self {
            default_sample_size: if quick { 1 } else { 10 },
            quick,
        }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size.max(1);
        let quick = self.quick;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            quick,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let sample_size = self.default_sample_size.max(1);
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size,
        };
        f(&mut bencher);
        report("bench", name, &mut bencher.samples);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::new();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro. Requires
/// `harness = false` on the `[[bench]]` target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::new();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u32, |b, &x| b.iter(|| x * x));
        group.finish();
    }
}

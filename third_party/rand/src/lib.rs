//! Offline shim for the `rand` crate (see `third_party/README.md`).
//!
//! Provides a deterministic `StdRng` (xoshiro256**) plus the small API
//! surface this workspace uses: `seed_from_u64`, `random`, `random_range`
//! over integer/float ranges, and slice `shuffle`. The generator is NOT the
//! real `StdRng` (ChaCha12), so seeded streams differ from upstream rand —
//! all in-tree tests assert determinism, not specific draws.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// Deterministic xoshiro256** generator standing in for rand's `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

pub use rngs::StdRng;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Random number generator interface (the subset of rand's `Rng`/`RngCore`
/// this workspace uses).
pub trait Rng {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample of `T`'s standard distribution (floats in `[0, 1)`).
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a range, mirroring `Rng::random_range`.
    ///
    /// # Panics
    /// Panics when the range is empty.
    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Seedable construction (the subset of rand's `SeedableRng` used here).
pub trait SeedableRng: Sized {
    /// Seeds the generator from a single `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

/// Types samplable from the "standard" distribution (rand's `StandardUniform`).
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> f32 {
        // 24 high bits -> [0, 1) with full f32 mantissa precision.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128) - (start as u128) + 1;
                start + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
uint_range!(usize, u64, u32, u16, u8);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = rng.random();
                let v = self.start + u * (self.end - self.start);
                // `start + u * span` can round up to `end` even though
                // u < 1; a half-open range must exclude its endpoint.
                if v >= self.end {
                    self.end.next_down()
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u: $t = rng.random();
                start + u * (end - start)
            }
        }
    )*};
}
float_range!(f32, f64);

macro_rules! signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
signed_range!(i64, i32, i16, i8, isize);

/// Slice extension providing `shuffle` / `choose` (rand's `SliceRandom`).
pub trait SliceRandom {
    /// Element type.
    type Item;
    /// Fisher–Yates shuffle driven by `rng`.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
    /// Uniformly random element, or `None` when empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.random_range(0..i + 1);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `rand::prelude`.
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, SampleRange, SeedableRng, SliceRandom, Standard};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f32 = rng.random_range(-3.0f32..5.0);
            assert!((-3.0..5.0).contains(&v));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            let w: f32 = rng.random_range(0.0f32..=1.0);
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.random_range(0usize..7);
            assert!(v < 7);
            let w = rng.random_range(5u64..=9);
            assert!((5..=9).contains(&w));
            let s = rng.random_range(-4i64..4);
            assert!((-4..4).contains(&s));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 50-element shuffle should not be identity");
        assert!(v.choose(&mut rng).is_some());
    }
}

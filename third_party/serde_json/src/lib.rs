//! Offline shim for `serde_json` (see `third_party/README.md`).
//!
//! Prints and parses the shim `serde::Value` data model as JSON. Supports
//! exactly what the workspace uses: `to_string`, `to_string_pretty`,
//! `from_str`, and the [`Value`] re-export.

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

/// Serializes `value` as compact JSON.
///
/// # Errors
/// Infallible for the shim data model; kept `Result` for API parity.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
/// Infallible for the shim data model; kept `Result` for API parity.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
///
/// # Errors
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// --- writer ----------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest representation that roundtrips.
                out.push_str(&format!("{f:?}"));
            } else {
                // JSON has no infinities; match serde_json's `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            write_compound(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                write_value(out, &items[i], indent, d);
            })
        }
        Value::Map(entries) => {
            write_compound(out, indent, depth, '{', '}', entries.len(), |out, i, d| {
                write_escaped(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &entries[i].1, indent, d);
            })
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<&str>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str(pad);
            }
        }
        item(out, i, depth + 1);
    }
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::custom("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error::custom(format!("invalid number `{text}`")))
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value_tree() {
        let v = Value::Map(vec![
            ("name".to_string(), Value::Str("vo\"lut\n".to_string())),
            ("n".to_string(), Value::Int(-42)),
            ("x".to_string(), Value::Float(1.5)),
            ("flag".to_string(), Value::Bool(true)),
            ("none".to_string(), Value::Null),
            (
                "seq".to_string(),
                Value::Seq(vec![Value::Int(1), Value::Int(2)]),
            ),
        ]);
        for text in [
            to_string(&ValueWrap(v.clone())).unwrap(),
            to_string_pretty(&ValueWrap(v.clone())).unwrap(),
        ] {
            let back: ValueWrap = from_str(&text).unwrap();
            assert_eq!(back.0, v);
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<ValueWrap>("{").is_err());
        assert!(from_str::<ValueWrap>("[1,]").is_err());
        assert!(from_str::<ValueWrap>("nul").is_err());
        assert!(from_str::<ValueWrap>("1 2").is_err());
    }

    #[test]
    fn float_formatting_roundtrips() {
        let x = 0.30000000000000004f64;
        let text = to_string(&ValueWrap(Value::Float(x))).unwrap();
        let back: ValueWrap = from_str(&text).unwrap();
        assert_eq!(back.0, Value::Float(x));
    }

    /// Wrapper so plain `Value`s can go through the typed entry points.
    #[derive(Debug, PartialEq)]
    struct ValueWrap(Value);

    impl Serialize for ValueWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }

    impl Deserialize for ValueWrap {
        fn from_value(value: &Value) -> Result<Self, Error> {
            Ok(ValueWrap(value.clone()))
        }
    }
}

//! Offline shim for `serde_derive` (see `third_party/README.md`).
//!
//! Generates impls of the shim `serde::Serialize` / `serde::Deserialize`
//! traits (a `Value`-tree data model) for:
//! * non-generic structs with named fields, honoring `#[serde(skip)]`
//!   (skipped fields are omitted on serialize and `Default::default()`ed on
//!   deserialize);
//! * enums whose variants are all unit variants (encoded as their name).
//!
//! Anything else panics at expansion time with a clear message so an
//! unsupported shape is caught at compile time, not silently mis-encoded.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: name plus whether `#[serde(skip)]` was present.
struct Field {
    name: String,
    skip: bool,
}

enum Shape {
    Struct { name: String, fields: Vec<Field> },
    UnitEnum { name: String, variants: Vec<String> },
}

/// Consumes leading `#[...]` attributes, reporting whether one of them was
/// `#[serde(skip)]`.
fn eat_attrs(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> bool {
    let mut skip = false;
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.next() {
                    let text = g.stream().to_string();
                    // Matches `serde(skip)` and `serde(skip, ...)`.
                    let compact: String = text.chars().filter(|c| !c.is_whitespace()).collect();
                    if compact.starts_with("serde(") && compact.contains("skip") {
                        skip = true;
                    }
                } else {
                    panic!("expected bracketed attribute body after `#`");
                }
            }
            _ => return skip,
        }
    }
}

/// Consumes an optional `pub` / `pub(...)` visibility.
fn eat_vis(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(iter.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        iter.next();
        if matches!(iter.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            iter.next();
        }
    }
}

/// Skips a field's type: consumes tokens until a comma at angle-bracket
/// depth zero (parenthesized/bracketed groups hide their own commas).
fn skip_type(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut angle_depth = 0i32;
    while let Some(tt) = iter.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                iter.next();
                return;
            }
            _ => {}
        }
        iter.next();
    }
}

fn parse(input: TokenStream) -> Shape {
    let mut iter = input.into_iter().peekable();
    eat_attrs(&mut iter);
    eat_vis(&mut iter);

    let kind = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic type `{name}`");
    }

    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            panic!("serde shim derive does not support tuple struct `{name}`")
        }
        other => panic!("expected braced body for `{name}`, found {other:?}"),
    };

    match kind.as_str() {
        "struct" => {
            let mut fields = Vec::new();
            let mut it = body.into_iter().peekable();
            while it.peek().is_some() {
                let skip = eat_attrs(&mut it);
                eat_vis(&mut it);
                let fname = match it.next() {
                    Some(TokenTree::Ident(i)) => i.to_string(),
                    None => break,
                    other => panic!("expected field name in `{name}`, found {other:?}"),
                };
                match it.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => panic!("expected `:` after field `{fname}`, found {other:?}"),
                }
                skip_type(&mut it);
                fields.push(Field { name: fname, skip });
            }
            Shape::Struct { name, fields }
        }
        "enum" => {
            let mut variants = Vec::new();
            let mut it = body.into_iter().peekable();
            while it.peek().is_some() {
                eat_attrs(&mut it);
                let vname = match it.next() {
                    Some(TokenTree::Ident(i)) => i.to_string(),
                    None => break,
                    other => panic!("expected variant name in `{name}`, found {other:?}"),
                };
                match it.next() {
                    None => {
                        variants.push(vname);
                        break;
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => variants.push(vname),
                    Some(TokenTree::Group(_)) => {
                        panic!("serde shim derive only supports unit variants; `{name}::{vname}` has data")
                    }
                    other => panic!("unexpected token after variant `{vname}`: {other:?}"),
                }
            }
            Shape::UnitEnum { name, variants }
        }
        other => panic!("serde shim derive does not support `{other}` items"),
    }
}

/// Derives the shim `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse(input) {
        Shape::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "map.push((\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut map: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Map(map)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\",\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Serialize impl parses")
}

/// Derives the shim `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse(input) {
        Shape::Struct { name, fields } => {
            let mut inits = String::new();
            for f in &fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{}: ::core::default::Default::default(),\n",
                        f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{0}: ::serde::Deserialize::from_value(
                             value.get(\"{0}\").unwrap_or(&::serde::Value::Null))
                             .map_err(|e| e.in_field(\"{1}.{0}\"))?,\n",
                        f.name, name
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         Ok(Self {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\
                                 other => Err(::serde::Error::custom(format!(\n\
                                     \"unknown {name} variant: {{other}}\"))),\n\
                             }},\n\
                             _ => Err(::serde::Error::custom(\n\
                                 \"expected string for enum {name}\".to_string())),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("generated Deserialize impl parses")
}

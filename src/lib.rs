//! # volut
//!
//! Facade crate for the VoLUT reproduction (MLSys 2025): efficient
//! volumetric streaming enhanced by LUT-based super-resolution.
//!
//! This crate re-exports the three library layers so applications can depend
//! on a single crate:
//!
//! * [`pointcloud`] — geometry, neighbor search, sampling, metrics,
//!   synthetic content and I/O ([`volut_pointcloud`]);
//! * [`core`] — the two-stage SR pipeline: dilated interpolation plus
//!   LUT-based refinement, the offline training/distillation path and the
//!   GradPU / Yuzu baselines ([`volut_core`]);
//! * [`stream`] — volumetric video, network traces, MPC ABR, QoE and the
//!   end-to-end streaming simulator ([`volut_stream`]).
//!
//! See the runnable programs in `examples/` for end-to-end usage, and the
//! `volut-bench` crate for the harness that regenerates every table and
//! figure of the paper.
//!
//! # Example
//!
//! ```
//! use volut::core::{refine::IdentityRefiner, SrConfig, SrPipeline};
//! use volut::pointcloud::{metrics, sampling, synthetic};
//!
//! # fn main() -> Result<(), volut::core::Error> {
//! let ground_truth = synthetic::torus(2_000, 1.0, 0.3, 1);
//! let low = sampling::random_downsample(&ground_truth, 0.5, 2)?;
//! let pipeline = SrPipeline::new(SrConfig::default(), Box::new(IdentityRefiner));
//! let upsampled = pipeline.upsample(&low, 2.0)?;
//! assert!(metrics::one_sided_chamfer(&ground_truth, &upsampled.cloud)
//!     < metrics::one_sided_chamfer(&ground_truth, &low));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use volut_core as core;
pub use volut_pointcloud as pointcloud;
pub use volut_stream as stream;

//! Criterion bench: temporally coherent incremental kNN — and the
//! downstream churn-proportional SR pipeline — across streaming delta
//! frames.
//!
//! Drives churned frame sequences (the `volut_pointcloud::synthetic::
//! DeltaStream` generator: spatially coherent cluster churn + drift, the
//! shape chunked volumetric delivery produces) through one `FrameScratch`
//! twice — incremental reuse on vs off — and reports whole-frame and
//! per-stage medians side by side over a churn sweep (0/1/10/50/100%).
//! The headline number is the whole-frame ratio at 10% churn on the
//! 50k-point / `kq = 5` frame: with output reuse the kNN self-join,
//! midpoint generation, colorization *and* refinement all scale with churn,
//! so the gap to the full recompute widens as churn drops. 0% churn should
//! collapse to wholesale copies of every stage's output and 100% churn
//! should sit within a few percent of the cold path (the failed diff is one
//! linear pass). Runs in CI's `--test` smoke mode with a downscaled
//! workload.

use criterion::{criterion_group, criterion_main, is_quick_mode, Criterion};
use std::hint::black_box;
use volut_core::interpolate::FrameScratch;
use volut_core::pipeline::{InterpolationMode, SrPipeline};
use volut_core::refine::IdentityRefiner;
use volut_core::SrConfig;
use volut_pointcloud::synthetic::{self, DeltaStreamConfig};
use volut_pointcloud::PointCloud;

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Per-stage steady-state medians of one measured pass, in milliseconds.
#[derive(Default)]
struct StageMedians {
    index: f64,
    knn: f64,
    interpolate: f64,
    colorize: f64,
    refine: f64,
    total: f64,
}

/// One measured pass: warm up on frame 0, then collect per-stage times over
/// the rest of the sequence.
fn run_sequence(pipeline: &SrPipeline, frames: &[PointCloud], incremental: bool) -> StageMedians {
    let mut scratch = FrameScratch::new();
    scratch.set_incremental(incremental);
    pipeline
        .upsample_with(&frames[0], 2.0, &mut scratch)
        .unwrap();
    let mut cols: [Vec<f64>; 6] = Default::default();
    for frame in &frames[1..] {
        let r = pipeline.upsample_with(frame, 2.0, &mut scratch).unwrap();
        let t = r.timings;
        for (col, d) in cols.iter_mut().zip([
            t.index_build,
            t.knn,
            t.interpolation,
            t.colorization,
            t.refinement,
            t.total(),
        ]) {
            col.push(d.as_secs_f64() * 1e3);
        }
    }
    StageMedians {
        index: median(&mut cols[0]),
        knn: median(&mut cols[1]),
        interpolate: median(&mut cols[2]),
        colorize: median(&mut cols[3]),
        refine: median(&mut cols[4]),
        total: median(&mut cols[5]),
    }
}

fn bench_temporal_coherence(c: &mut Criterion) {
    let (n, measured) = if is_quick_mode() {
        (4_000, 3)
    } else {
        (50_000, 9)
    };
    // kq = k + 1 = 5 with the k4d1 config through the dilated interpolator —
    // the acceptance shape (50k points, k = 5 self-join).
    let pipeline = SrPipeline::with_mode(
        SrConfig::k4d1(),
        InterpolationMode::Dilated,
        Box::new(IdentityRefiner),
    );
    let base = synthetic::humanoid(n, 0.5, 5);

    println!("temporal_coherence/{n}pts_kq5 (median of {measured} steady-state frames, ms):");
    println!(
        "  {:>6} | {:>11} {:>11} {:>8} | {:>7} {:>8} {:>8} {:>8} {:>8}",
        "churn", "total incr", "total full", "speedup", "index", "knn", "interp", "color", "refine"
    );
    for churn in [0.0f64, 0.01, 0.1, 0.5, 1.0] {
        let frames = synthetic::delta_frame_sequence(
            &base,
            measured + 1,
            DeltaStreamConfig {
                churn,
                drift: 0.05,
                jitter: 0.01,
                seed: 11,
            },
        );
        let incr = run_sequence(&pipeline, &frames, true);
        let full = run_sequence(&pipeline, &frames, false);
        println!(
            "  {:>5.0}% | {:>11.3} {:>11.3} {:>7.2}x | {:>7.3} {:>8.3} {:>8.3} {:>8.3} {:>8.3}",
            churn * 100.0,
            incr.total,
            full.total,
            full.total / incr.total.max(1e-9),
            incr.index,
            incr.knn,
            incr.interpolate,
            incr.colorize,
            incr.refine,
        );
    }

    // Criterion hooks so the harness lists/runs this group like any bench:
    // whole-frame iteration over the churned sequence, incremental vs full.
    let frames = synthetic::delta_frame_sequence(
        &base,
        measured + 1,
        DeltaStreamConfig {
            churn: 0.1,
            drift: 0.05,
            jitter: 0.01,
            seed: 11,
        },
    );
    let mut group = c.benchmark_group(format!("temporal_coherence_{n}_kq5_10pct"));
    group.sample_size(10);
    for (name, incremental) in [("incremental", true), ("full_recompute", false)] {
        group.bench_function(name, |b| {
            let mut scratch = FrameScratch::new();
            scratch.set_incremental(incremental);
            pipeline
                .upsample_with(&frames[0], 2.0, &mut scratch)
                .unwrap();
            let mut next = 1usize;
            b.iter(|| {
                let r = pipeline
                    .upsample_with(&frames[next], 2.0, &mut scratch)
                    .unwrap();
                next = 1 + (next % (frames.len() - 1));
                black_box(r.cloud.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_temporal_coherence);
criterion_main!(benches);

//! Criterion bench: temporally coherent incremental kNN across streaming
//! delta-frames.
//!
//! Drives churned frame sequences (the `volut_pointcloud::synthetic::
//! DeltaStream` generator: spatially coherent cluster churn + drift, the
//! shape chunked volumetric delivery produces) through one `FrameScratch`
//! twice — incremental reuse on vs off — and reports the per-frame
//! `knn`-stage and `index_build`-stage medians side by side. The headline
//! number is the knn-stage ratio at 10% churn on the 50k-point / `kq = 5`
//! frame (the §4.1-dominating self-join); 0% churn should collapse to the
//! wholesale row-copy fast path and 100% churn should sit within a few
//! percent of the cold full-recompute path (the failed diff is one linear
//! pass). Runs in CI's `--test` smoke mode with a downscaled workload.

use criterion::{criterion_group, criterion_main, is_quick_mode, Criterion};
use std::hint::black_box;
use volut_core::interpolate::FrameScratch;
use volut_core::pipeline::{InterpolationMode, SrPipeline};
use volut_core::refine::IdentityRefiner;
use volut_core::SrConfig;
use volut_pointcloud::synthetic::{self, DeltaStreamConfig};
use volut_pointcloud::PointCloud;

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// One measured pass: warm up on frame 0, then collect per-stage times over
/// the rest of the sequence. Returns `(knn median ms, index median ms)`.
fn run_sequence(pipeline: &SrPipeline, frames: &[PointCloud], incremental: bool) -> (f64, f64) {
    let mut scratch = FrameScratch::new();
    scratch.set_incremental(incremental);
    pipeline
        .upsample_with(&frames[0], 2.0, &mut scratch)
        .unwrap();
    let mut knn = Vec::with_capacity(frames.len() - 1);
    let mut index = Vec::with_capacity(frames.len() - 1);
    for frame in &frames[1..] {
        let r = pipeline.upsample_with(frame, 2.0, &mut scratch).unwrap();
        knn.push(r.timings.knn.as_secs_f64() * 1e3);
        index.push(r.timings.index_build.as_secs_f64() * 1e3);
    }
    (median(&mut knn), median(&mut index))
}

fn bench_temporal_coherence(c: &mut Criterion) {
    let (n, measured) = if is_quick_mode() {
        (4_000, 3)
    } else {
        (50_000, 9)
    };
    // kq = k + 1 = 5 with the k4d1 config through the dilated interpolator —
    // the acceptance shape (50k points, k = 5 self-join).
    let pipeline = SrPipeline::with_mode(
        SrConfig::k4d1(),
        InterpolationMode::Dilated,
        Box::new(IdentityRefiner),
    );
    let base = synthetic::humanoid(n, 0.5, 5);

    println!("temporal_coherence/{n}pts_kq5 (median of {measured} steady-state frames, ms):");
    println!(
        "  {:>6} | {:>16} {:>16} | {:>16} {:>16} | {:>9}",
        "churn", "knn incr", "knn full", "index incr", "index full", "knn ratio"
    );
    for churn in [0.0f64, 0.1, 1.0] {
        let frames = synthetic::delta_frame_sequence(
            &base,
            measured + 1,
            DeltaStreamConfig {
                churn,
                drift: 0.05,
                jitter: 0.01,
                seed: 11,
            },
        );
        let (knn_incr, idx_incr) = run_sequence(&pipeline, &frames, true);
        let (knn_full, idx_full) = run_sequence(&pipeline, &frames, false);
        println!(
            "  {:>5.0}% | {:>16.3} {:>16.3} | {:>16.3} {:>16.3} | {:>8.2}x",
            churn * 100.0,
            knn_incr,
            knn_full,
            idx_incr,
            idx_full,
            knn_full / knn_incr.max(1e-9),
        );
    }

    // Criterion hooks so the harness lists/runs this group like any bench:
    // whole-frame iteration over the churned sequence, incremental vs full.
    let frames = synthetic::delta_frame_sequence(
        &base,
        measured + 1,
        DeltaStreamConfig {
            churn: 0.1,
            drift: 0.05,
            jitter: 0.01,
            seed: 11,
        },
    );
    let mut group = c.benchmark_group(format!("temporal_coherence_{n}_kq5_10pct"));
    group.sample_size(10);
    for (name, incremental) in [("incremental", true), ("full_recompute", false)] {
        group.bench_function(name, |b| {
            let mut scratch = FrameScratch::new();
            scratch.set_incremental(incremental);
            pipeline
                .upsample_with(&frames[0], 2.0, &mut scratch)
                .unwrap();
            let mut next = 1usize;
            b.iter(|| {
                let r = pipeline
                    .upsample_with(&frames[next], 2.0, &mut scratch)
                    .unwrap();
                next = 1 + (next % (frames.len() - 1));
                black_box(r.cloud.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_temporal_coherence);
criterion_main!(benches);

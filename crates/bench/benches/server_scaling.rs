//! Multi-tenant server scaling: N concurrent churned SR sessions against one
//! shared content registry, driven over the work-stealing pool.
//!
//! For each session count N the bench admits N churned sessions (every one a
//! distinct seed against the same ~2 MiB dense serving LUT), runs them to
//! retirement and records the aggregate throughput, the frame-time
//! percentiles from the server's streaming sketch, deadline misses,
//! admission rejections and the QoE distribution. A second sweep measures
//! bytes/session with the registry shared vs the pre-registry behavior of
//! cloning the table into every session. Quick mode (`--test`) runs the CI
//! smoke cell (N = 64) and asserts zero deadline misses and zero rejections;
//! the full run adds N = 1 000 and N = 10 000 and commits
//! `results/server_scaling.json`.

use criterion::{criterion_group, criterion_main, is_quick_mode, Criterion};
use serde::Serialize;
use std::hint::black_box;
use std::sync::Arc;
use volut_bench::memory::{measure_server_memory, serving_registry, SERVING_CONTENT};
use volut_bench::setup::{detected_cores, log_runtime_once};
use volut_core::registry::ModelRegistry;
use volut_stream::server::{IngestSource, ServerConfig, ServerReport, SessionSpec, SrServer};

/// Points per low-res session frame. Small enough that 10 000 resident
/// sessions stay well inside host memory, large enough that interpolation +
/// LUT refinement dominate a frame step.
const POINTS: usize = 512;

/// Session churn: 10% of points replaced per frame, the mid column of the
/// chaos sweep.
const CHURN: f64 = 0.1;

#[derive(Serialize)]
struct ScalePoint {
    sessions: usize,
    frames_per_session: u64,
    frames_total: u64,
    wall_s: f64,
    aggregate_fps: f64,
    frame_time_p50_ms: f64,
    frame_time_p95_ms: f64,
    frame_time_p99_ms: f64,
    frame_time_mean_ms: f64,
    frame_time_max_ms: f64,
    deadline_misses: u64,
    deadline_miss_rate: f64,
    sessions_admitted: u64,
    sessions_rejected: u64,
    sessions_retired: u64,
    frame_errors: u64,
    mean_qoe_normalized: f64,
    mean_quality: f64,
    degradation_residency: [u64; 5],
}

#[derive(Serialize)]
struct MemoryRow {
    sessions: usize,
    mode: String,
    bytes_per_session: f64,
    registry_bytes: usize,
    shared_over_cloned: f64,
    materialized: bool,
}

#[derive(Serialize)]
struct BenchReport {
    description: String,
    recorded: String,
    pr: u64,
    host_cores: usize,
    workload: String,
    scaling: Vec<ScalePoint>,
    memory: Vec<MemoryRow>,
    note: String,
}

fn spawn_specs(n: usize, frames: u64) -> Vec<SessionSpec> {
    (0..n as u64)
        .map(|seed| SessionSpec {
            content: SERVING_CONTENT.into(),
            seed,
            points: POINTS,
            churn: CHURN,
            frames,
            ingest: IngestSource::Local,
        })
        .collect()
}

/// Admits `n` sessions at once (capacity = queue = n) and runs them to
/// retirement, returning the server's closing report.
fn run_scale(registry: &Arc<ModelRegistry>, n: usize, frames: u64) -> ServerReport {
    let config = ServerConfig {
        capacity: n,
        queue_limit: n,
        ..ServerConfig::default()
    };
    let mut server = SrServer::new(Arc::clone(registry), config);
    for spec in spawn_specs(n, frames) {
        assert!(server.enqueue(spec), "queue sized to hold every spec");
    }
    server.run(frames + 4)
}

fn scale_point(registry: &Arc<ModelRegistry>, n: usize, frames: u64) -> ScalePoint {
    let report = run_scale(registry, n, frames);
    let t = &report.telemetry;
    let retired = report.sessions.len().max(1) as f64;
    let mean_qoe = report
        .sessions
        .iter()
        .map(|s| s.qoe.normalized)
        .sum::<f64>()
        / retired;
    let mean_quality = report
        .sessions
        .iter()
        .map(|s| s.qoe.mean_quality)
        .sum::<f64>()
        / retired;
    let mut residency = [0u64; 5];
    for s in &report.sessions {
        for (acc, r) in residency.iter_mut().zip(s.residency) {
            *acc += r;
        }
    }
    ScalePoint {
        sessions: n,
        frames_per_session: frames,
        frames_total: t.frames_total,
        wall_s: report.wall_s,
        aggregate_fps: report.aggregate_fps,
        frame_time_p50_ms: t.frame_time_p50_ms,
        frame_time_p95_ms: t.frame_time_p95_ms,
        frame_time_p99_ms: t.frame_time_p99_ms,
        frame_time_mean_ms: t.frame_time_mean_ms,
        frame_time_max_ms: t.frame_time_max_ms,
        deadline_misses: t.deadline_misses,
        deadline_miss_rate: t.deadline_misses as f64 / t.frames_total.max(1) as f64,
        sessions_admitted: t.sessions_admitted,
        sessions_rejected: t.sessions_rejected,
        sessions_retired: t.sessions_retired,
        frame_errors: report.frame_errors,
        mean_qoe_normalized: mean_qoe,
        mean_quality,
        degradation_residency: residency,
    }
}

fn memory_rows(registry: &Arc<ModelRegistry>, counts: &[usize], cap: usize) -> Vec<MemoryRow> {
    let table_bytes = registry.shared_bytes();
    let mut rows = Vec::new();
    for &n in counts {
        let shared = measure_server_memory(registry, n, true, POINTS, 2);
        let materialized = n.saturating_mul(table_bytes) <= cap;
        let cloned_per_session = if materialized {
            measure_server_memory(registry, n, false, POINTS, 2).bytes_per_session
        } else {
            // Exact, not estimated: cloning adds exactly one table per
            // session and changes nothing else.
            shared.bytes_per_session + table_bytes as f64
        };
        let ratio = shared.bytes_per_session / cloned_per_session.max(1.0);
        rows.push(MemoryRow {
            sessions: n,
            mode: "shared".into(),
            bytes_per_session: shared.bytes_per_session,
            registry_bytes: shared.registry_bytes,
            shared_over_cloned: ratio,
            materialized: true,
        });
        rows.push(MemoryRow {
            sessions: n,
            mode: "cloned".into(),
            bytes_per_session: cloned_per_session,
            registry_bytes: shared.registry_bytes,
            shared_over_cloned: ratio,
            materialized,
        });
    }
    rows
}

fn print_point(p: &ScalePoint) {
    println!(
        "  {:>6} | {:>7} {:>9.0} | {:>7.3} {:>7.3} {:>7.3} | {:>6} {:>6} {:>6} | {:>6.3}",
        p.sessions,
        p.frames_total,
        p.aggregate_fps,
        p.frame_time_p50_ms,
        p.frame_time_p95_ms,
        p.frame_time_p99_ms,
        p.deadline_misses,
        p.sessions_rejected,
        p.frame_errors,
        p.mean_qoe_normalized,
    );
}

fn bench_server_scaling(c: &mut Criterion) {
    log_runtime_once();
    let registry = serving_registry(24);

    // (N, frames/session): frame counts taper at scale to bound wall time
    // while keeping total recorded frames per point in the tens of
    // thousands.
    let cells: &[(usize, u64)] = if is_quick_mode() {
        &[(1, 8), (64, 8)]
    } else {
        &[(1, 30), (64, 30), (1_000, 12), (10_000, 6)]
    };

    println!("server_scaling ({POINTS}pts/session, {CHURN} churn, x2 SR, shared registry):");
    println!(
        "  {:>6} | {:>7} {:>9} | {:>7} {:>7} {:>7} | {:>6} {:>6} {:>6} | {:>6}",
        "N", "frames", "agg fps", "p50ms", "p95ms", "p99ms", "miss", "rej", "err", "qoe"
    );
    let mut scaling = Vec::new();
    for &(n, frames) in cells {
        let p = scale_point(&registry, n, frames);
        print_point(&p);
        assert_eq!(p.frame_errors, 0, "no session may error at N={n}");
        assert_eq!(
            p.sessions_retired, n as u64,
            "every admitted session must retire at N={n}"
        );
        scaling.push(p);
    }

    // CI smoke contract: the N=64 cell must run clean — every frame inside
    // its deadline and no admission rejections.
    let smoke = scaling
        .iter()
        .find(|p| p.sessions == 64)
        .expect("cells include N=64");
    assert_eq!(
        smoke.deadline_misses, 0,
        "server smoke: zero deadline misses required at N=64"
    );
    assert_eq!(
        smoke.sessions_rejected, 0,
        "server smoke: zero rejections required at N=64"
    );

    if !is_quick_mode() {
        // Materialize the cloned baseline up to ~4 GiB of table copies
        // (covers N=1k at ~2 GiB); beyond that the exact derivation is used.
        let cap = 4usize << 30;
        let memory = memory_rows(&registry, &[1_000, 10_000], cap);
        for row in &memory {
            println!(
                "  memory N={:>6} {:<6}: {:>12.0} bytes/session (ratio {:.3}{})",
                row.sessions,
                row.mode,
                row.bytes_per_session,
                row.shared_over_cloned,
                if row.materialized { "" } else { ", derived" }
            );
        }
        let at_1k: Vec<&MemoryRow> = memory.iter().filter(|r| r.sessions == 1_000).collect();
        let shared_1k = at_1k.iter().find(|r| r.mode == "shared").unwrap();
        let cloned_1k = at_1k.iter().find(|r| r.mode == "cloned").unwrap();
        assert!(
            shared_1k.bytes_per_session <= 0.25 * cloned_1k.bytes_per_session,
            "acceptance: shared bytes/session at N=1k ({:.0}) must be <= 25% of cloned ({:.0})",
            shared_1k.bytes_per_session,
            cloned_1k.bytes_per_session
        );

        let report = BenchReport {
            description: "Multi-tenant SR server scaling: N concurrent churned sessions \
                          against one shared content registry over the work-stealing \
                          pool. Aggregate FPS, frame-time percentiles (streaming \
                          sketch), deadline misses, admission rejections, QoE, and \
                          bytes/session shared vs per-session table clones. Regenerate \
                          with `cargo bench -p volut-bench --bench server_scaling`."
                .into(),
            recorded: "2026-08-09".into(),
            pr: 9,
            host_cores: detected_cores(),
            workload: format!(
                "{POINTS}-point sphere sessions, {CHURN} churn/frame, x2 SR, dense \
                 Compact LUT (bins=24, ~2 MiB) shared via ModelRegistry, 30 FPS \
                 deadline, default degradation ladder, LPT dispatch over the \
                 work-stealing pool"
            ),
            scaling,
            memory,
            note: "bytes/session in shared mode is scratch + cloud only; the cloned \
                   baseline pays the full table per session, so sharing wins by the \
                   table-to-scratch ratio (>= 4x at N=1k, growing with table size). \
                   Frame-time percentiles are wall-clock per session step on this \
                   host; digests and QoE are deterministic (see \
                   tests/property_server.rs), the timings are not. The cloned N=10k \
                   row is derived exactly (one table copy per session) rather than \
                   materialized."
                .into(),
        };
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/server_scaling.json"
        );
        match serde_json::to_string_pretty(&report) {
            Ok(json) => {
                if let Err(e) = std::fs::write(path, json + "\n") {
                    println!("  warning: could not write {path}: {e}");
                } else {
                    println!("  wrote {path}");
                }
            }
            Err(e) => println!("  warning: could not serialize scaling report: {e}"),
        }
    }

    // Criterion hook: one full server tick at N=64 so the harness lists and
    // smoke-runs the dispatch path like any other bench.
    let mut group = c.benchmark_group("server_tick_64_sessions");
    group.sample_size(10);
    group.bench_function("tick", |b| {
        let config = ServerConfig {
            capacity: 64,
            queue_limit: 64,
            ..ServerConfig::default()
        };
        let mut server = SrServer::new(Arc::clone(&registry), config);
        for spec in spawn_specs(64, u64::MAX) {
            server.enqueue(spec);
        }
        server.tick(); // admit + warm every scratch arena
        b.iter(|| {
            server.tick();
            black_box(server.telemetry().frames_total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_server_scaling);
criterion_main!(benches);

//! Criterion bench: thread scaling of the work-stealing runtime, grouped by
//! worker count.
//!
//! Three workloads per worker count (pinned via `runtime::with_workers`, so
//! the numbers are comparable on any host and `VOLUT_WORKERS` is not
//! needed):
//!
//! * `self_join/chunked_single_tree` — the engine's pre-chunked single-tree
//!   sweep (each chunk a bichromatic `knn_batch` over a query sub-slice),
//!   the multi-worker route the engine used for *all* batches before the
//!   dual tree learned to shard;
//! * `self_join/dual_tree` — the dual-tree leaf-pair traversal, sharding
//!   its query-leaf set across the pool internally (at one worker this is
//!   the classic sequential traversal);
//! * `sr_frame_recompute` — a whole SR frame (interpolation, colorization,
//!   refinement) with temporal reuse off: every pool-routed stage of the
//!   pipeline at once.
//!
//! The `self_join` pair is the measurement behind `BatchStrategy::Auto`'s
//! crossover: on a host with real cores, compare `chunked_single_tree` vs
//! `dual_tree` at each worker count and set `VOLUT_DUAL_MIN_QUERIES`
//! accordingly (the committed default was measured on the single-core build
//! host, where the dual tree wins at every count — see
//! `BENCH_knn.json`'s `thread_scaling` section). Runs in CI's `--test`
//! smoke mode with a downscaled workload.

use criterion::{criterion_group, criterion_main, is_quick_mode, BenchmarkId, Criterion};
use std::hint::black_box;
use volut_core::interpolate::FrameScratch;
use volut_core::refine::IdentityRefiner;
use volut_core::{SrConfig, SrPipeline};
use volut_pointcloud::dualtree::{BatchStrategy, DualTreeScratch};
use volut_pointcloud::kdtree::KdTree;
use volut_pointcloud::knn::NeighborSearch;
use volut_pointcloud::{par, runtime, synthetic, Neighborhoods};

/// Worker counts the scaling sweep pins. The build host may have fewer
/// cores than the top entry — the numbers still bound scheduling overhead
/// (oversubscribed pools must not collapse), and they become real scaling
/// curves when the host grows.
const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

fn bench_self_join_scaling(c: &mut Criterion) {
    volut_bench::setup::log_runtime_once();
    let n = if is_quick_mode() { 4_000 } else { 100_000 };
    let k = 5;
    let cloud = synthetic::humanoid(n, 0.5, 3);
    let queries = cloud.positions();
    let tree = KdTree::build(queries);
    for workers in WORKER_COUNTS {
        let mut group = c.benchmark_group(format!("thread_scaling_self_join_{n}_k{k}"));
        group.sample_size(10);
        let mut out = Neighborhoods::with_capacity(n, n * k);
        let mut scratch = DualTreeScratch::new();
        group.bench_function(BenchmarkId::new("chunked_single_tree", workers), |b| {
            runtime::with_workers(workers, || {
                b.iter(|| {
                    out.clear();
                    // The engine's pre-chunk route: one bichromatic
                    // `knn_batch` per chunk, partials appended in order.
                    let chunk = queries.len().div_ceil(workers).max(1);
                    let partials = par::map_chunks(queries.len(), chunk, |_, range| {
                        let mut local = Neighborhoods::with_capacity(range.len(), range.len() * k);
                        tree.knn_batch(&queries[range], k, &mut local);
                        local
                    });
                    for part in &partials {
                        out.append(part);
                    }
                    black_box(out.total_indices())
                })
            });
        });
        group.bench_function(BenchmarkId::new("dual_tree", workers), |b| {
            runtime::with_workers(workers, || {
                b.iter(|| {
                    out.clear();
                    tree.knn_batch_with(
                        queries,
                        k,
                        &mut out,
                        BatchStrategy::DualTree,
                        &mut scratch,
                    );
                    black_box(out.total_indices())
                })
            });
        });
        group.finish();
    }
}

fn bench_frame_scaling(c: &mut Criterion) {
    let n = if is_quick_mode() { 4_000 } else { 50_000 };
    let cloud = synthetic::humanoid(n, 0.5, 7);
    let pipeline = SrPipeline::new(SrConfig::default(), Box::new(IdentityRefiner));
    let mut group = c.benchmark_group(format!("thread_scaling_sr_frame_{n}"));
    group.sample_size(10);
    for workers in WORKER_COUNTS {
        group.bench_function(BenchmarkId::new("sr_frame_recompute", workers), |b| {
            runtime::with_workers(workers, || {
                let mut scratch = FrameScratch::new();
                scratch.set_incremental(false);
                b.iter(|| {
                    let r = pipeline.upsample_with(&cloud, 2.0, &mut scratch).unwrap();
                    black_box(r.cloud.len())
                })
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_self_join_scaling, bench_frame_scaling);
criterion_main!(benches);

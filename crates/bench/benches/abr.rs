//! Criterion bench: ABR decision latency and full streaming-session
//! simulation throughput (the substrate behind Figures 12-14).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use volut_stream::abr::{AbrContext, AbrController, ContinuousMpcAbr, DiscreteMpcAbr};
use volut_stream::qoe::QoeParams;
use volut_stream::simulator::{SessionConfig, StreamingSimulator};
use volut_stream::systems::SystemKind;
use volut_stream::trace::NetworkTrace;
use volut_stream::video::VideoMeta;

fn ctx() -> AbrContext {
    AbrContext {
        throughput_mbps: 60.0,
        buffer_level_s: 4.0,
        chunk_duration_s: 1.0,
        full_chunk_bytes: 11_250_000,
        previous_quality: 0.8,
        max_sr_ratio: 8.0,
        sr_quality_factor: 0.95,
        sr_seconds_per_chunk: 0.1,
    }
}

fn bench_abr_decision(c: &mut Criterion) {
    let mut group = c.benchmark_group("abr_decision");
    group.sample_size(30);
    let context = ctx();
    group.bench_function("continuous_mpc_96_candidates", |b| {
        let mut abr = ContinuousMpcAbr::default();
        b.iter(|| black_box(abr.decide(&context)))
    });
    group.bench_function("discrete_mpc_yuzu_ladder", |b| {
        let mut abr = DiscreteMpcAbr::yuzu_ladder(QoeParams::default());
        b.iter(|| black_box(abr.decide(&context)))
    });
    group.finish();
}

fn bench_session_simulation(c: &mut Criterion) {
    let sim = StreamingSimulator::new(SessionConfig::default());
    let video = VideoMeta::tiny(900, 100_000); // 30 s of content
    let trace = NetworkTrace::synthetic_lte(60.0, 20.0, 60.0, 3);
    let mut group = c.benchmark_group("session_simulation_30s");
    group.sample_size(10);
    for system in [
        SystemKind::VolutContinuous,
        SystemKind::YuzuSr,
        SystemKind::Vivo,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{system:?}")),
            &system,
            |b, &system| b.iter(|| black_box(sim.run(&video, &trace, system).unwrap().qoe.score)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_abr_decision, bench_session_simulation);
criterion_main!(benches);

//! Criterion bench: naive vs dilated interpolation across upsampling ratios
//! (the micro-benchmark behind Figure 11) plus a dilation-factor ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use volut_core::config::SrConfig;
use volut_core::interpolate::{dilated::dilated_interpolate, naive::naive_interpolate};
use volut_pointcloud::{sampling, synthetic};

fn bench_interpolation(c: &mut Criterion) {
    let gt = synthetic::humanoid(8_000, 0.3, 1);
    let mut group = c.benchmark_group("interpolation");
    group.sample_size(10);
    for ratio in [2.0f64, 4.0, 8.0] {
        let low = sampling::random_downsample(&gt, 1.0 / ratio, 3).unwrap();
        group.bench_with_input(
            BenchmarkId::new("naive", format!("x{ratio}")),
            &low,
            |b, low| {
                b.iter(|| naive_interpolate(black_box(low), &SrConfig::k4d1(), ratio).unwrap())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("dilated", format!("x{ratio}")),
            &low,
            |b, low| {
                b.iter(|| dilated_interpolate(black_box(low), &SrConfig::k4d2(), ratio).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_dilation_ablation(c: &mut Criterion) {
    let gt = synthetic::humanoid(8_000, 0.3, 2);
    let low = sampling::random_downsample(&gt, 0.5, 5).unwrap();
    let mut group = c.benchmark_group("dilation_factor");
    group.sample_size(10);
    for d in [1usize, 2, 3] {
        let cfg = SrConfig {
            dilation: d,
            ..SrConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(d), &low, |b, low| {
            b.iter(|| dilated_interpolate(black_box(low), &cfg, 2.0).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_interpolation, bench_dilation_ablation);
criterion_main!(benches);

//! Chaos bench: fault injection × churn sweep over the resilient delta
//! streaming protocol, plus the deadline-aware degradation controller.
//!
//! For every (burst-loss rate × churn) cell a [`ResilientSession`] streams a
//! churned frame sequence over a [`FaultyLink`] while an always-clean
//! session runs the same frames; the bench records recovery counters, the
//! wall-clock cost of recovery, per-frame deadline misses (33 ms frame
//! budget at 30 FPS) and — the invariant the whole layer exists for — that
//! every delivered frame is bit-identical to the clean run. A separate
//! poison probe feeds deliberately wrong delta declarations straight into
//! the SR session and checks they are always detected and never change any
//! output. Finally the degradation controller runs inside the streaming
//! simulator on an overloaded device to record its miss rate and level
//! residency. Outside `--test` quick mode the full report is committed to
//! `results/robustness.json`.

use criterion::{criterion_group, criterion_main, is_quick_mode, Criterion};
use serde::Serialize;
use std::hint::black_box;
use volut_core::device::DeviceProfile;
use volut_core::refine::IdentityRefiner;
use volut_core::{SrConfig, SrPipeline};
use volut_pointcloud::delta::FrameDelta;
use volut_pointcloud::synthetic::{self, DeltaStreamConfig};
use volut_pointcloud::PointCloud;
use volut_stream::client::SrSession;
use volut_stream::faults::{FaultConfig, FaultyLink};
use volut_stream::link::SimulatedLink;
use volut_stream::resilience::{DegradationConfig, DeltaServer, ResilientSession, RetryPolicy};
use volut_stream::simulator::{SessionConfig, StreamingSimulator};
use volut_stream::systems::SystemKind;
use volut_stream::trace::NetworkTrace;
use volut_stream::video::VideoMeta;

/// Frame budget: 30 FPS playback.
const FRAME_BUDGET_S: f64 = 1.0 / 30.0;

#[derive(Serialize)]
struct CellReport {
    loss_rate: f64,
    churn: f64,
    frames: u64,
    bit_identical_frames: u64,
    clean_frames: u64,
    recovered_compose: u64,
    recovered_retransmit: u64,
    recovered_keyframe: u64,
    retries: u64,
    drops_seen: u64,
    integrity_failures: u64,
    poisonings_detected: u64,
    session_time_s: f64,
    recovery_overhead_s: f64,
    deadline_misses: u64,
    deadline_miss_rate: f64,
}

#[derive(Serialize)]
struct PoisonProbe {
    churn: f64,
    injected: u64,
    detected: u64,
    served_wrong_output: u64,
}

#[derive(Serialize)]
struct DegradationReport {
    system: String,
    device: String,
    managed: bool,
    deadline_misses: u64,
    deadline_miss_rate: f64,
    residency: [u64; 5],
    stall_s: f64,
    qoe_normalized: f64,
}

#[derive(Serialize)]
struct Report {
    description: String,
    recorded: String,
    pr: u64,
    workload: String,
    sweep: Vec<CellReport>,
    poison_probes: Vec<PoisonProbe>,
    degradation: Vec<DegradationReport>,
    note: String,
}

fn churned_frames(n: usize, frames: usize, churn: f64, seed: u64) -> Vec<PointCloud> {
    let base = synthetic::humanoid(n, 0.4, seed);
    synthetic::delta_frame_sequence(
        &base,
        frames,
        DeltaStreamConfig {
            churn,
            drift: 0.05,
            jitter: 0.01,
            seed,
        },
    )
}

fn make_session() -> SrSession {
    SrSession::new(SrPipeline::new(
        SrConfig::default(),
        Box::new(IdentityRefiner),
    ))
}

/// Streams one (loss, churn) cell through faulty and clean links in
/// lockstep, accounting recoveries, bit-identity and per-frame deadlines.
fn run_cell(n: usize, frames: usize, loss: f64, churn: f64, seed: u64) -> CellReport {
    let sequence = churned_frames(n, frames, churn, seed);
    let server = DeltaServer::new(sequence.clone());
    let trace = NetworkTrace::from_samples("chaos-60mbps", vec![60.0; 600], 0.005).unwrap();
    let config = if loss > 0.0 {
        FaultConfig::bursty_loss(loss)
    } else {
        FaultConfig::lossless()
    };
    let mut link = FaultyLink::new(SimulatedLink::new(&trace), config, seed ^ 0xFA17);
    // Deep retry budget: the sweep measures recovery cost, not give-up
    // behavior, so no cell may abort on a long burst.
    let mut lossy = ResilientSession::with_policy(
        make_session(),
        RetryPolicy {
            max_retries: 12,
            ..RetryPolicy::default()
        },
    );
    let mut clean = make_session();
    let mut identical = 0u64;
    let mut misses = 0u64;
    for (i, frame) in sequence.iter().enumerate() {
        let before_s = lossy.clock_s();
        let a = lossy
            .advance(&server, &mut link, i as u64, 2.0)
            .expect("retry budget must outlast any injected burst");
        let link_s = lossy.clock_s() - before_s;
        let compute_s = a.timings.total().as_secs_f64();
        if link_s + compute_s > FRAME_BUDGET_S {
            misses += 1;
        }
        let b = clean.upsample_frame(frame, 2.0).unwrap();
        if a.cloud == b.cloud {
            identical += 1;
        }
    }
    let stats = lossy.stats();
    // The clean reference pays no link time; compare against what a
    // lossless protocol session would have spent on the same wire.
    let mut clean_link = FaultyLink::new(
        SimulatedLink::new(&trace),
        FaultConfig::lossless(),
        seed ^ 0xFA17,
    );
    let mut baseline = ResilientSession::new(make_session());
    for i in 0..sequence.len() as u64 {
        baseline.advance(&server, &mut clean_link, i, 2.0).unwrap();
    }
    CellReport {
        loss_rate: loss,
        churn,
        frames: stats.frames,
        bit_identical_frames: identical,
        clean_frames: stats.clean_frames,
        recovered_compose: stats.recovered_compose,
        recovered_retransmit: stats.recovered_retransmit,
        recovered_keyframe: stats.recovered_keyframe,
        retries: stats.retries,
        drops_seen: stats.drops_seen,
        integrity_failures: stats.integrity_failures,
        poisonings_detected: stats.poisonings_detected,
        session_time_s: lossy.clock_s(),
        recovery_overhead_s: lossy.clock_s() - baseline.clock_s(),
        deadline_misses: misses,
        deadline_miss_rate: misses as f64 / stats.frames.max(1) as f64,
    }
}

/// Injects stale delta declarations and checks detection + bit-identity.
fn run_poison_probe(n: usize, churn: f64, seed: u64) -> PoisonProbe {
    let frames = churned_frames(n, 6, churn, seed);
    let mut poisoned = make_session();
    let mut clean = make_session();
    poisoned.upsample_frame(&frames[0], 2.0).unwrap();
    clean.upsample_frame(&frames[0], 2.0).unwrap();
    let mut injected = 0u64;
    let mut detected = 0u64;
    let mut served = 0u64;
    for i in 1..frames.len() - 1 {
        // Declare the *previous* step's delta for the next frame: a stale
        // survivor map that would poison the kNN row cache if trusted.
        let wrong = FrameDelta::diff(frames[i - 1].positions(), frames[i].positions());
        let a = poisoned
            .upsample_frame_delta(&frames[i + 1], 2.0, wrong)
            .unwrap();
        injected += 1;
        if poisoned.last_delta_error().is_some() {
            detected += 1;
        }
        clean.upsample_frame(&frames[i], 2.0).unwrap();
        let b = clean.upsample_frame(&frames[i + 1], 2.0).unwrap();
        if a.cloud != b.cloud {
            served += 1;
        }
        // Re-align the poisoned session's temporal state for the next round.
        poisoned.flush_caches();
        poisoned.upsample_frame(&frames[i + 1], 2.0).unwrap();
        clean.flush_caches();
    }
    PoisonProbe {
        churn,
        injected,
        detected,
        served_wrong_output: served,
    }
}

/// Runs the degradation controller inside the streaming simulator on an
/// overloaded embedded device, plus the unmanaged baseline.
fn run_degradation(video: &VideoMeta) -> Vec<DegradationReport> {
    let trace = NetworkTrace::stable(50.0, video.duration_s() + 60.0);
    let mut reports = Vec::new();
    let cases = [
        (SystemKind::DiscreteYuzuSr, "discrete-yuzu-sr", true),
        (SystemKind::DiscreteYuzuSr, "discrete-yuzu-sr", false),
        (SystemKind::VolutContinuous, "volut-continuous", true),
    ];
    for (system, label, managed) in cases {
        let sim = StreamingSimulator::new(SessionConfig {
            device: DeviceProfile::orange_pi(),
            degradation: managed.then(DegradationConfig::default),
            ..SessionConfig::default()
        });
        let r = sim.run(video, &trace, system).unwrap();
        let stats = r.robustness.unwrap_or_default();
        reports.push(DegradationReport {
            system: label.into(),
            device: "orange-pi-5".into(),
            managed,
            deadline_misses: stats.deadline_misses,
            deadline_miss_rate: stats.deadline_miss_rate(),
            residency: stats.degradation_residency,
            stall_s: r.stall_s,
            qoe_normalized: r.qoe.normalized,
        });
    }
    reports
}

fn bench_chaos(c: &mut Criterion) {
    let (n, frames) = if is_quick_mode() {
        (2_000, 10)
    } else {
        (8_000, 90)
    };

    println!("chaos/{n}pts_{frames}frames (bursty loss x churn sweep):");
    println!(
        "  {:>6} {:>6} | {:>5} {:>9} {:>8} {:>8} {:>7} | {:>9} {:>10}",
        "loss", "churn", "ident", "recovered", "retries", "drops", "keyfr", "miss rate", "overhead"
    );
    let mut sweep = Vec::new();
    for (li, &loss) in [0.0f64, 0.02, 0.05, 0.10].iter().enumerate() {
        for (ci, &churn) in [0.01f64, 0.10, 0.30].iter().enumerate() {
            let cell = run_cell(n, frames, loss, churn, 1000 + (li * 10 + ci) as u64);
            println!(
                "  {:>5.0}% {:>5.0}% | {:>2}/{:<2} {:>9} {:>8} {:>8} {:>7} | {:>8.1}% {:>9.2}s",
                loss * 100.0,
                churn * 100.0,
                cell.bit_identical_frames,
                cell.frames,
                cell.recovered_compose + cell.recovered_retransmit + cell.recovered_keyframe,
                cell.retries,
                cell.drops_seen,
                cell.recovered_keyframe,
                cell.deadline_miss_rate * 100.0,
                cell.recovery_overhead_s,
            );
            assert_eq!(
                cell.bit_identical_frames, cell.frames,
                "faults must never change output (loss {loss}, churn {churn})"
            );
            sweep.push(cell);
        }
    }

    let mut poison_probes = Vec::new();
    for &churn in &[0.05f64, 0.2, 0.6] {
        let probe = run_poison_probe(n, churn, 77);
        println!(
            "  poison probe churn {:>3.0}%: {}/{} detected, {} served wrong",
            churn * 100.0,
            probe.detected,
            probe.injected,
            probe.served_wrong_output
        );
        assert_eq!(probe.detected, probe.injected, "poisoning went undetected");
        assert_eq!(probe.served_wrong_output, 0, "poisoned output was served");
        poison_probes.push(probe);
    }

    let mut video = VideoMeta::long_dress();
    video.frame_count = if is_quick_mode() { 900 } else { 3600 };
    let degradation = run_degradation(&video);
    for d in &degradation {
        println!(
            "  degradation {} managed={}: miss rate {:.1}%, residency {:?}, stall {:.1}s",
            d.system,
            d.managed,
            d.deadline_miss_rate * 100.0,
            d.residency,
            d.stall_s
        );
    }

    if !is_quick_mode() {
        let acceptance = sweep
            .iter()
            .find(|cell| cell.loss_rate == 0.02 && cell.churn == 0.10)
            .expect("sweep contains the acceptance cell");
        assert!(
            acceptance.deadline_miss_rate <= 0.05,
            "acceptance: miss rate at 2% loss / 10% churn must be <= 5%, got {}",
            acceptance.deadline_miss_rate
        );
        let report = Report {
            description: "Fault-injection robustness of the resilient delta streaming \
                          protocol: bursty loss x churn sweep (bit-identity, recovery \
                          counters, 30 FPS deadline misses), cache-poisoning probes, and \
                          the deadline-aware degradation controller on an overloaded \
                          device. Regenerate with `cargo bench -p volut-bench --bench \
                          chaos`."
                .into(),
            recorded: "2026-08-09".into(),
            pr: 7,
            workload: format!(
                "{n}-point humanoid delta stream, {frames} frames per cell, x2 SR \
                 (IdentityRefiner), 60 Mbps / 5 ms RTT link, Gilbert-Elliott bursts \
                 (mean burst 4 messages), retry policy: 12 retries, 20 ms base backoff, \
                 150 ms timeout"
            ),
            sweep,
            poison_probes,
            degradation,
            note: "bit_identical_frames == frames in every cell: recovery restores \
                   byte-exact output within one keyframe resync. Deadline misses come \
                   from recovery stalls (timeout + backoff), so the miss rate tracks \
                   the loss rate; the acceptance cell (2% loss, 10% churn) stays under \
                   the 5% bar. Poison probes: every stale delta declaration was \
                   rejected by the engine's verify pass and outputs matched the clean \
                   session bitwise. The degradation controller sheds pipeline stages \
                   instead of stalling: identical content on the same device stalls \
                   for minutes unmanaged but plays in real time degraded."
                .into(),
        };
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../results/robustness.json");
        match serde_json::to_string_pretty(&report) {
            Ok(json) => {
                if let Err(e) = std::fs::write(path, json + "\n") {
                    println!("  warning: could not write {path}: {e}");
                } else {
                    println!("  wrote {path}");
                }
            }
            Err(e) => println!("  warning: could not serialize robustness report: {e}"),
        }
    }

    // Criterion hook: one advance() step under 2% burst loss vs lossless,
    // so the harness lists/runs this like any bench (and the CI smoke mode
    // exercises the protocol path).
    let sequence = churned_frames(n.min(4_000), 16, 0.1, 5);
    let server = DeltaServer::new(sequence);
    let trace = NetworkTrace::stable(60.0, 600.0);
    let mut group = c.benchmark_group("chaos_advance_10pct_churn");
    group.sample_size(10);
    for (name, config) in [
        ("lossless", FaultConfig::lossless()),
        ("burst_2pct", FaultConfig::bursty_loss(0.02)),
    ] {
        group.bench_function(name, |b| {
            let mut link = FaultyLink::new(SimulatedLink::new(&trace), config.clone(), 9);
            let mut session = ResilientSession::with_policy(
                make_session(),
                RetryPolicy {
                    max_retries: 12,
                    ..RetryPolicy::default()
                },
            );
            let mut seq = 0u64;
            b.iter(|| {
                let r = session
                    .advance(&server, &mut link, seq, 2.0)
                    .expect("advance");
                seq += 1;
                if seq == server.frame_count() as u64 {
                    session = ResilientSession::with_policy(
                        make_session(),
                        RetryPolicy {
                            max_retries: 12,
                            ..RetryPolicy::default()
                        },
                    );
                    seq = 0;
                }
                black_box(r.cloud.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_chaos);
criterion_main!(benches);

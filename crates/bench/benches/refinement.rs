//! Criterion bench: LUT refinement vs direct neural-network refinement —
//! the core speedup behind Figure 17 ("sub-milliseconds vs seconds").

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use volut_core::config::SrConfig;
use volut_core::encoding::{KeyScheme, PositionEncoder};
use volut_core::lut::{sparse::SparseLut, Lut};
use volut_core::nn::mlp::Mlp;
use volut_core::refine::{LutRefiner, NnRefiner, Refiner};
use volut_pointcloud::Point3;

fn neighborhoods(n: usize) -> Vec<(Point3, Vec<Point3>)> {
    (0..n)
        .map(|i| {
            let f = (i % 97) as f32 * 0.013;
            (
                Point3::new(f, 1.0 - f, f * 0.3),
                vec![
                    Point3::new(f + 0.05, 1.0 - f, f * 0.3),
                    Point3::new(f, 1.05 - f, f * 0.3),
                    Point3::new(f, 1.0 - f, f * 0.3 + 0.05),
                ],
            )
        })
        .collect()
}

fn bench_refiners(c: &mut Criterion) {
    let config = SrConfig::default();
    let encoder = PositionEncoder::new(&config, KeyScheme::Full).unwrap();
    let hoods = neighborhoods(2_000);

    // Populate the LUT with every key the benchmark will touch so hit rate is 100%.
    let mut lut = SparseLut::new();
    for (center, neighbors) in &hoods {
        let key = encoder.encode(*center, neighbors).unwrap().key;
        lut.set(key, [0.01, 0.0, -0.01]).unwrap();
    }
    let lut_refiner = LutRefiner::new(encoder.clone(), Box::new(lut));
    // The refinement network at GradPU scale (256-wide) and at the small
    // distillation scale (64-wide).
    let nn_small = NnRefiner::new(encoder.clone(), Mlp::new(&[12, 64, 64, 3], 1));
    let nn_large = NnRefiner::new(encoder, Mlp::new(&[12, 256, 256, 3], 2));

    let mut group = c.benchmark_group("refinement_2000_points");
    group.sample_size(20);
    let run = |refiner: &dyn Refiner| {
        let mut acc = Point3::ZERO;
        for (center, neighbors) in &hoods {
            acc += refiner.refine(*center, neighbors);
        }
        acc
    };
    group.bench_function("lut_lookup", |b| b.iter(|| black_box(run(&lut_refiner))));
    group.bench_function("nn_64x64", |b| b.iter(|| black_box(run(&nn_small))));
    group.bench_function("nn_256x256", |b| b.iter(|| black_box(run(&nn_large))));
    group.finish();
}

criterion_group!(benches, bench_refiners);
criterion_main!(benches);

//! Criterion bench: LUT refinement vs direct neural-network refinement —
//! the core speedup behind Figure 17 ("sub-milliseconds vs seconds").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use volut_core::config::SrConfig;
use volut_core::encoding::{KeyScheme, PositionEncoder};
use volut_core::lut::{sparse::SparseLut, Lut};
use volut_core::nn::mlp::Mlp;
use volut_core::refine::{refine_in_place, LutRefiner, NnRefiner, Refiner};
use volut_pointcloud::{Neighborhoods, Point3, PointCloud};

fn neighborhoods(n: usize) -> Vec<(Point3, Vec<Point3>)> {
    (0..n)
        .map(|i| {
            let f = (i % 97) as f32 * 0.013;
            (
                Point3::new(f, 1.0 - f, f * 0.3),
                vec![
                    Point3::new(f + 0.05, 1.0 - f, f * 0.3),
                    Point3::new(f, 1.05 - f, f * 0.3),
                    Point3::new(f, 1.0 - f, f * 0.3 + 0.05),
                ],
            )
        })
        .collect()
}

fn bench_refiners(c: &mut Criterion) {
    let config = SrConfig::default();
    let encoder = PositionEncoder::new(&config, KeyScheme::Full).unwrap();
    let hoods = neighborhoods(2_000);

    // Populate the LUT with every key the benchmark will touch so hit rate is 100%.
    let mut lut = SparseLut::new();
    for (center, neighbors) in &hoods {
        let key = encoder.encode(*center, neighbors).unwrap().key;
        lut.set(key, [0.01, 0.0, -0.01]).unwrap();
    }
    let lut_refiner = LutRefiner::new(encoder.clone(), Box::new(lut));
    // The refinement network at GradPU scale (256-wide) and at the small
    // distillation scale (64-wide).
    let nn_small = NnRefiner::new(encoder.clone(), Mlp::new(&[12, 64, 64, 3], 1));
    let nn_large = NnRefiner::new(encoder, Mlp::new(&[12, 256, 256, 3], 2));

    let mut group = c.benchmark_group("refinement_2000_points");
    group.sample_size(20);
    let run = |refiner: &dyn Refiner| {
        let mut acc = Point3::ZERO;
        for (center, neighbors) in &hoods {
            acc += refiner.refine(*center, neighbors);
        }
        acc
    };
    group.bench_function("lut_lookup", |b| b.iter(|| black_box(run(&lut_refiner))));
    group.bench_function("nn_64x64", |b| b.iter(|| black_box(run(&nn_small))));
    group.bench_function("nn_256x256", |b| b.iter(|| black_box(run(&nn_large))));
    group.finish();
}

/// The seed's LUT backend, reproduced for the before/after comparison: a
/// std `HashMap` with its default SipHash hasher, probed one key at a time.
struct LegacyLut {
    entries: std::collections::HashMap<u128, [f32; 3]>,
}

impl LegacyLut {
    fn get(&self, key: u128) -> Option<[f32; 3]> {
        self.entries.get(&key).copied()
    }
}

/// Synthetic batch of `n` generated points over a shared source cloud,
/// mirroring what dilated interpolation hands to the refinement stage.
fn batch_input(n: usize) -> (Vec<Point3>, Neighborhoods, Vec<Point3>) {
    let source: Vec<Point3> = (0..(n / 2).max(8))
        .map(|i| {
            let f = i as f32 * 0.37;
            Point3::new(f.sin(), f.cos(), (f * 0.5).sin() * 0.5)
        })
        .collect();
    let mut centers = Vec::with_capacity(n);
    let mut hoods = Neighborhoods::with_capacity(n, n * 3);
    for i in 0..n {
        let a = i % source.len();
        let b = (i * 7 + 1) % source.len();
        let c = (i * 13 + 2) % source.len();
        centers.push(source[a].midpoint(source[b]));
        hoods.push_row([a, b, c]);
    }
    (centers, hoods, source)
}

/// The structural comparison behind this repo's batch refactor: the legacy
/// per-point path (fresh neighbor-gather `Vec` + `refine` call per point)
/// versus one `refine_batch` over flat slices, versus the parallel driver
/// `refine_in_place` used by `SrPipeline`.
fn bench_per_point_vs_batched(c: &mut Criterion) {
    let config = SrConfig::default();
    for &n in &[10_000usize, 100_000] {
        let (centers, hoods, source) = batch_input(n);
        // Fully populated LUTs (new and legacy backend) so every point
        // takes the hit path.
        let encoder = PositionEncoder::new(&config, KeyScheme::Full).unwrap();
        let mut lut = SparseLut::new();
        let mut legacy = LegacyLut {
            entries: std::collections::HashMap::new(),
        };
        let mut gather = Vec::new();
        for (i, &center) in centers.iter().enumerate() {
            gather.clear();
            gather.extend(hoods.row(i).iter().map(|&j| source[j as usize]));
            let (key, _) = encoder.encode_key(center, &gather).unwrap();
            lut.set(key, [0.01, 0.0, -0.01]).unwrap();
            legacy.entries.insert(key, [0.01, 0.0, -0.01]);
        }
        let refiner = LutRefiner::new(encoder, Box::new(lut));

        let mut group = c.benchmark_group("refinement_paths");
        group.sample_size(10);
        group.bench_with_input(
            BenchmarkId::new("per_point", n),
            &(&centers, &hoods, &source),
            |b, (centers, hoods, source)| {
                // Faithful reproduction of the pre-refactor refinement
                // stage: a heap-allocated neighbor gather per generated
                // point, the allocating `encode` (normalize + index
                // buffers), a SipHash `HashMap` probe, and a mutex-guarded
                // stats bump per lookup.
                let encoder = PositionEncoder::new(&config, KeyScheme::Full).unwrap();
                let stats = std::sync::Mutex::new((0u64, 0u64));
                let mut cloud = PointCloud::from_positions((*source).clone());
                let original_len = cloud.len();
                for &center in centers.iter() {
                    cloud.push(center, None);
                }
                b.iter(|| {
                    // Fresh interpolation output for this frame.
                    cloud.positions_mut()[original_len..].copy_from_slice(centers);
                    // Per-point refinement, collected then written back —
                    // the seed pipeline's exact shape.
                    let refined: Vec<Point3> = centers
                        .iter()
                        .enumerate()
                        .map(|(i, &center)| {
                            let neighbors: Vec<Point3> =
                                hoods.row(i).iter().map(|&j| source[j as usize]).collect();
                            let Ok(encoded) = encoder.encode(center, &neighbors) else {
                                return center;
                            };
                            match legacy.get(encoded.key) {
                                Some(offset) => {
                                    stats.lock().unwrap().0 += 1;
                                    center
                                        + Point3::new(offset[0], offset[1], offset[2])
                                            * encoded.radius
                                }
                                None => {
                                    stats.lock().unwrap().1 += 1;
                                    center
                                }
                            }
                        })
                        .collect();
                    let positions = cloud.positions_mut();
                    for (ordinal, p) in refined.into_iter().enumerate() {
                        positions[original_len + ordinal] = p;
                    }
                    black_box(positions[original_len])
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batched", n),
            &(&centers, &hoods, &source),
            |b, (centers, hoods, source)| {
                let mut out = vec![Point3::ZERO; centers.len()];
                b.iter(|| {
                    refiner.refine_batch(centers, hoods.view(), source, &mut out);
                    black_box(out[0])
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("batched_parallel", n),
            &(&centers, &hoods, &source),
            |b, (centers, hoods, source)| {
                let mut cloud = PointCloud::from_positions((*source).clone());
                let original_len = cloud.len();
                for &center in centers.iter() {
                    cloud.push(center, None);
                }
                let mut scratch = Vec::new();
                b.iter(|| {
                    // Reset the tail: each frame refines freshly
                    // interpolated centers, not last iteration's output.
                    cloud.positions_mut()[original_len..].copy_from_slice(centers);
                    refine_in_place(
                        &refiner,
                        &mut cloud,
                        original_len,
                        hoods,
                        source,
                        &mut scratch,
                    );
                    black_box(cloud.position(original_len))
                })
            },
        );
        group.finish();
    }
}

criterion_group!(benches, bench_refiners, bench_per_point_vs_batched);
criterion_main!(benches);

//! Server chaos bench: burst loss × tenant count sweep over the
//! multi-tenant server's resilient ingest plane.
//!
//! Every cell runs the same tenant population twice — once over lossless
//! ingest links, once over Gilbert–Elliott burst-loss links — and compares
//! per-tenant output digests: the recovery ladder inside the tick loop must
//! make every non-quarantined tenant bit-identical to its clean-link twin
//! (zero poisoned frames served, by construction of the comparison). On top
//! of the sweep two probes pin the tentpole's failure semantics: an
//! *isolation* probe forces one tenant's link permanently dead and checks
//! it is quarantined with a typed cause while every healthy neighbor's
//! digest stays untouched, and an *overload* probe strangles the deadline
//! to verify admission shedding and explicit degradation escalation are
//! counted, never silent. The acceptance cell (N = 64, 2% burst loss, 10%
//! churn) is asserted in every mode, including CI's quick `--test` runs;
//! outside quick mode the full sweep is committed to
//! `results/server_robustness.json`.
//!
//! `CHAOS_SEED=<n>` rotates the session/fault seed base (CI passes the run
//! id); unset it falls back to 0 so local runs reproduce the committed
//! numbers.

use criterion::{criterion_group, criterion_main, is_quick_mode, Criterion};
use serde::Serialize;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;
use volut_bench::memory::{serving_registry, SERVING_CONTENT};
use volut_core::registry::ModelRegistry;
use volut_stream::faults::FaultConfig;
use volut_stream::resilience::{DegradationConfig, RetryPolicy};
use volut_stream::server::{
    IngestConfig, IngestSource, OverloadPolicy, ServerConfig, ServerReport, SessionSpec, SrServer,
};

const CHURN: f64 = 0.10;

/// Extra seed rotated by CI (`CHAOS_SEED=<run id>`); 0 when unset so local
/// runs and the pinned CI seeds stay reproducible.
fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

#[derive(Serialize)]
struct CellReport {
    loss_rate: f64,
    sessions: usize,
    churn: f64,
    frames_total: u64,
    sessions_retired: u64,
    sessions_quarantined: u64,
    digest_identical_sessions: usize,
    clean_frames: u64,
    recovered_compose: u64,
    recovered_retransmit: u64,
    recovered_keyframe: u64,
    retries: u64,
    drops_seen: u64,
    integrity_failures: u64,
    poisonings_detected: u64,
    resync_grants: u64,
    resync_deferrals: u64,
    mean_qoe: f64,
    wall_s: f64,
}

#[derive(Serialize)]
struct IsolationProbe {
    sessions: usize,
    loss_rate: f64,
    quarantined: u64,
    quarantine_cause: String,
    dead_tenant_frames: u64,
    healthy_digest_changes: usize,
}

#[derive(Serialize)]
struct OverloadProbe {
    offered_sessions: usize,
    sessions_shed: u64,
    overload_escalations: u64,
    peak_overload_level: u32,
    sessions_retired: u64,
}

#[derive(Serialize)]
struct Report {
    description: String,
    recorded: String,
    pr: u64,
    chaos_seed: u64,
    workload: String,
    sweep: Vec<CellReport>,
    isolation: IsolationProbe,
    overload: OverloadProbe,
    note: String,
}

/// Deep retry budget, like the single-session chaos sweep: these cells
/// measure recovery cost, not give-up behavior, so no tenant may be
/// quarantined by a long burst inside the sweep itself.
fn sweep_ingest(faults: FaultConfig) -> IngestConfig {
    IngestConfig {
        faults,
        retry: RetryPolicy {
            max_retries: 12,
            jitter: 0.25,
            ..RetryPolicy::default()
        },
        ..IngestConfig::default()
    }
}

fn specs(n: usize, frames: u64, faults: &FaultConfig, seed_base: u64) -> Vec<SessionSpec> {
    (0..n as u64)
        .map(|i| SessionSpec {
            content: SERVING_CONTENT.into(),
            seed: seed_base.wrapping_add(i),
            points: 300 + (i as usize % 4) * 100,
            churn: CHURN,
            frames,
            ingest: IngestSource::Resilient(sweep_ingest(faults.clone())),
        })
        .collect()
}

/// Digest comparisons isolate the transport path: degradation is pinned
/// off so ingest-charged planning cannot shift levels between the clean
/// and faulted runs.
fn digest_config(n: usize) -> ServerConfig {
    ServerConfig {
        capacity: n,
        queue_limit: n.max(1),
        degradation: None,
        ..ServerConfig::default()
    }
}

fn run_population(specs: Vec<SessionSpec>, config: ServerConfig) -> ServerReport {
    let n = specs.len();
    let registry = REGISTRY.with(Arc::clone);
    let mut server = SrServer::new(registry, config);
    for spec in specs {
        assert!(server.enqueue(spec));
    }
    let report = server.run(4_096);
    assert_eq!(
        report.telemetry.sessions_retired as usize, n,
        "every tenant must retire (served or quarantined)"
    );
    report
}

thread_local! {
    /// One serving registry for the whole bench (the ~2 MiB table is
    /// shared state; rebuilding it per cell would dominate the wall time).
    static REGISTRY: Arc<ModelRegistry> = serving_registry(24);
}

fn digests(report: &ServerReport) -> Vec<(u64, u64)> {
    let mut rows: Vec<(u64, u64)> = report
        .sessions
        .iter()
        .filter(|s| s.failure.is_none())
        .map(|s| (s.seed, s.digest))
        .collect();
    rows.sort_unstable();
    rows
}

fn run_cell(n: usize, frames: u64, loss: f64, seed_base: u64) -> CellReport {
    let faults = if loss > 0.0 {
        FaultConfig::bursty_loss(loss)
    } else {
        FaultConfig::lossless()
    };
    let started = Instant::now();
    let clean = run_population(
        specs(n, frames, &FaultConfig::lossless(), seed_base),
        digest_config(n),
    );
    let faulted = run_population(specs(n, frames, &faults, seed_base), digest_config(n));
    let wall_s = started.elapsed().as_secs_f64();
    let clean_rows = digests(&clean);
    let faulted_rows = digests(&faulted);
    let identical = faulted_rows
        .iter()
        .filter(|row| clean_rows.binary_search(row).is_ok())
        .count();
    let t = &faulted.telemetry;
    let mean_qoe = faulted
        .sessions
        .iter()
        .map(|s| s.qoe.normalized)
        .sum::<f64>()
        / faulted.sessions.len().max(1) as f64;
    CellReport {
        loss_rate: loss,
        sessions: n,
        churn: CHURN,
        frames_total: t.frames_total,
        sessions_retired: t.sessions_retired,
        sessions_quarantined: t.sessions_quarantined,
        digest_identical_sessions: identical,
        clean_frames: t.ingest.clean_frames,
        recovered_compose: t.ingest.recovered_compose,
        recovered_retransmit: t.ingest.recovered_retransmit,
        recovered_keyframe: t.ingest.recovered_keyframe,
        retries: t.ingest.retries,
        drops_seen: t.ingest.drops_seen,
        integrity_failures: t.ingest.integrity_failures,
        poisonings_detected: t.ingest.poisonings_detected,
        resync_grants: t.resync_grants,
        resync_deferrals: t.resync_deferrals,
        mean_qoe,
        wall_s,
    }
}

/// One permanently dead link among healthy 2%-loss tenants: the dead
/// tenant must be quarantined with a typed cause and zero frames, and no
/// healthy tenant's digest may move relative to a run without it.
fn run_isolation(n: usize, frames: u64, seed_base: u64) -> IsolationProbe {
    let faults = FaultConfig::bursty_loss(0.02);
    let without = run_population(specs(n, frames, &faults, seed_base), digest_config(n));
    let mut with_dead = specs(n, frames, &faults, seed_base);
    with_dead.insert(
        n / 2,
        SessionSpec {
            content: SERVING_CONTENT.into(),
            seed: seed_base.wrapping_add(1_000_000),
            points: 500,
            churn: CHURN,
            frames,
            ingest: IngestSource::Resilient(IngestConfig {
                faults: FaultConfig {
                    drop: 1.0,
                    ..FaultConfig::default()
                },
                ..IngestConfig::default()
            }),
        },
    );
    let chaotic = run_population(with_dead, digest_config(n + 1));
    let dead = chaotic
        .sessions
        .iter()
        .find(|s| s.seed == seed_base.wrapping_add(1_000_000))
        .expect("quarantined tenants are still reported");
    let base_rows = digests(&without);
    let changed = digests(&chaotic)
        .iter()
        .filter(|row| row.0 != seed_base.wrapping_add(1_000_000))
        .filter(|row| base_rows.binary_search(row).is_err())
        .count();
    IsolationProbe {
        sessions: n,
        loss_rate: 0.02,
        quarantined: chaotic.telemetry.sessions_quarantined,
        quarantine_cause: format!("{:?}", dead.failure),
        dead_tenant_frames: dead.frames,
        healthy_digest_changes: changed,
    }
}

/// Strangled deadline + overload policy: escalation and shedding must be
/// explicit, counted events.
fn run_overload(offered: usize, frames: u64, seed_base: u64) -> OverloadProbe {
    let config = ServerConfig {
        capacity: offered / 4,
        queue_limit: offered / 2,
        deadline_s: 1e-9,
        degradation: Some(DegradationConfig {
            degrade_after: 1,
            recover_after: 1_000,
            ..DegradationConfig::default()
        }),
        overload: Some(OverloadPolicy {
            escalate_after: 1,
            relax_after: 1_000,
            ..OverloadPolicy::default()
        }),
        ..ServerConfig::default()
    };
    let registry = REGISTRY.with(Arc::clone);
    let mut server = SrServer::new(registry, config);
    let mut peak_level = 0u32;
    let mut offered_iter = (0..offered as u64).map(|i| SessionSpec {
        content: SERVING_CONTENT.into(),
        seed: seed_base.wrapping_add(i),
        points: 300 + (i as usize % 4) * 100,
        churn: CHURN,
        frames,
        ingest: IngestSource::Local,
    });
    // Trickle admissions across ticks so escalation (which needs sustained
    // pressure) is active while requests still arrive — shed requests are
    // counted by the server, not retried here.
    for _ in 0..8 {
        for spec in offered_iter.by_ref().take(offered / 8) {
            let _ = server.enqueue(spec);
        }
        server.tick();
        peak_level = peak_level.max(server.telemetry().overload_level);
    }
    for spec in offered_iter {
        let _ = server.enqueue(spec);
    }
    let report = server.run(4_096);
    OverloadProbe {
        offered_sessions: offered,
        sessions_shed: report.telemetry.sessions_shed,
        overload_escalations: report.telemetry.overload_escalations,
        peak_overload_level: peak_level.max(report.telemetry.overload_level),
        sessions_retired: report.telemetry.sessions_retired,
    }
}

fn bench_server_chaos(c: &mut Criterion) {
    let quick = is_quick_mode();
    let frames = if quick { 4 } else { 6 };
    let seed_base = 10_000 + chaos_seed().wrapping_mul(0x9E37_79B9);
    println!(
        "server_chaos (burst loss x tenants, churn {:.0}%, CHAOS_SEED {}):",
        CHURN * 100.0,
        chaos_seed()
    );
    println!(
        "  {:>6} {:>5} | {:>9} {:>6} {:>9} {:>8} {:>7} {:>7} {:>7} | {:>8}",
        "loss", "N", "identical", "quar", "recovered", "retries", "keyfr", "grants", "defer", "QoE"
    );

    let losses: &[f64] = if quick {
        &[0.02]
    } else {
        &[0.0, 0.02, 0.05, 0.10]
    };
    let tenant_counts: &[usize] = if quick { &[64] } else { &[16, 64, 256] };
    let mut sweep = Vec::new();
    for (li, &loss) in losses.iter().enumerate() {
        for (ni, &n) in tenant_counts.iter().enumerate() {
            let cell = run_cell(n, frames, loss, seed_base + (li * 16 + ni) as u64);
            println!(
                "  {:>5.0}% {:>5} | {:>4}/{:<4} {:>6} {:>9} {:>8} {:>7} {:>7} {:>7} | {:>7.2}",
                loss * 100.0,
                n,
                cell.digest_identical_sessions,
                cell.sessions_retired - cell.sessions_quarantined,
                cell.sessions_quarantined,
                cell.recovered_compose + cell.recovered_retransmit + cell.recovered_keyframe,
                cell.retries,
                cell.recovered_keyframe,
                cell.resync_grants,
                cell.resync_deferrals,
                cell.mean_qoe,
            );
            assert_eq!(
                cell.digest_identical_sessions as u64,
                cell.sessions_retired - cell.sessions_quarantined,
                "every non-quarantined tenant must be bit-identical to its \
                 clean-link twin (loss {loss}, N {n})"
            );
            if loss == 0.02 {
                // The acceptance cell additionally forbids quarantine: 2%
                // burst loss is a recoverable link, not a dead one.
                assert_eq!(
                    cell.sessions_quarantined, 0,
                    "acceptance: no tenant may be quarantined at 2% loss"
                );
            }
            sweep.push(cell);
        }
    }

    let isolation = run_isolation(if quick { 16 } else { 64 }, frames, seed_base + 777);
    println!(
        "  isolation: {} quarantined ({}, {} frames), {} healthy digest changes",
        isolation.quarantined,
        isolation.quarantine_cause,
        isolation.dead_tenant_frames,
        isolation.healthy_digest_changes
    );
    assert_eq!(
        isolation.quarantined, 1,
        "the dead link must be quarantined"
    );
    assert_eq!(
        isolation.dead_tenant_frames, 0,
        "a dead link never serves a frame"
    );
    assert_eq!(
        isolation.healthy_digest_changes, 0,
        "one tenant's permanent failure must not move any neighbor's bits"
    );

    let overload = run_overload(if quick { 32 } else { 128 }, frames, seed_base + 999);
    println!(
        "  overload: {} shed, {} escalations (peak level {}), {} retired",
        overload.sessions_shed,
        overload.overload_escalations,
        overload.peak_overload_level,
        overload.sessions_retired
    );
    assert!(
        overload.overload_escalations >= 1,
        "a strangled deadline must escalate the overload level"
    );
    assert!(
        overload.sessions_shed >= 1,
        "overload must tighten admission and count the shed requests"
    );

    if !quick {
        let report = Report {
            description: "Chaos sweep over the multi-tenant server's resilient ingest \
                          plane: Gilbert-Elliott burst loss x tenant count at 10% churn, \
                          with per-tenant digest comparison against a clean-link twin \
                          run, plus isolation (one permanently dead link) and overload \
                          (strangled deadline) probes. Regenerate with `cargo bench -p \
                          volut-bench --bench server_chaos`."
                .into(),
            recorded: "2026-08-09".into(),
            pr: 10,
            chaos_seed: chaos_seed(),
            workload: format!(
                "{frames} frames/session, 300-600 point frames, 10% churn, x2 SR over \
                 the 24-bin Compact serving LUT; ingest: 80 Mbps links, GE bursts (mean \
                 burst 4 messages), retry policy 12 retries / 20 ms backoff / 25% \
                 seeded jitter, resync budget 8/tick, degradation pinned off for \
                 digest comparability"
            ),
            sweep,
            isolation,
            overload,
            note: "digest_identical_sessions == non-quarantined sessions in every \
                   cell: the recovery ladder inside the tick loop restores bit-exact \
                   output at every loss rate and tenant count, so zero poisoned frames \
                   were ever served. The isolation probe pins the blast radius: the \
                   dead tenant retires as RetryExhausted with zero frames and zero \
                   neighbor digests move. The overload probe shows shedding and \
                   escalation as counted, explicit events."
                .into(),
        };
        let path = concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../results/server_robustness.json"
        );
        match serde_json::to_string_pretty(&report) {
            Ok(json) => {
                if let Err(e) = std::fs::write(path, json + "\n") {
                    println!("  warning: could not write {path}: {e}");
                } else {
                    println!("  wrote {path}");
                }
            }
            Err(e) => println!("  warning: could not serialize server robustness report: {e}"),
        }
    }

    // Criterion hook: one full server tick at N=16 under lossless vs 2%
    // burst-loss ingest, so the harness lists/runs this like any bench and
    // CI's smoke mode exercises the ingest plane end to end.
    let mut group = c.benchmark_group("server_tick_16_tenants");
    group.sample_size(10);
    for (name, faults) in [
        ("lossless_ingest", FaultConfig::lossless()),
        ("burst_2pct_ingest", FaultConfig::bursty_loss(0.02)),
    ] {
        group.bench_function(name, |b| {
            let registry = REGISTRY.with(Arc::clone);
            let mut server = SrServer::new(registry, digest_config(16));
            for spec in specs(16, u64::MAX / 2, &faults, 42) {
                assert!(server.enqueue(spec));
            }
            b.iter(|| {
                server.tick();
                black_box(server.telemetry().frames_total)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_server_chaos);
criterion_main!(benches);

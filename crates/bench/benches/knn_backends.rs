//! Criterion bench: neighbor-search backends (brute force, k-d tree,
//! two-layer octree, voxel grid) — the ablation behind VoLUT's octree choice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use volut_pointcloud::kdtree::KdTree;
use volut_pointcloud::knn::{BruteForce, NeighborSearch};
use volut_pointcloud::octree::TwoLayerOctree;
use volut_pointcloud::synthetic;
use volut_pointcloud::voxelgrid::VoxelGrid;

fn bench_knn_query(c: &mut Criterion) {
    let cloud = synthetic::humanoid(20_000, 0.5, 1);
    let queries = synthetic::humanoid(200, 0.5, 2);
    let brute = BruteForce::new(cloud.positions());
    let kdtree = KdTree::build(cloud.positions());
    let octree = TwoLayerOctree::build(cloud.positions());
    let grid = VoxelGrid::build_auto(cloud.positions(), 8);

    let mut group = c.benchmark_group("knn_k8");
    group.sample_size(10);
    let run = |backend: &dyn NeighborSearch| {
        let mut total = 0usize;
        for &q in queries.positions() {
            total += backend.knn(q, 8).len();
        }
        total
    };
    group.bench_function(BenchmarkId::new("backend", "brute_force"), |b| {
        b.iter(|| black_box(run(&brute)))
    });
    group.bench_function(BenchmarkId::new("backend", "kdtree"), |b| {
        b.iter(|| black_box(run(&kdtree)))
    });
    group.bench_function(BenchmarkId::new("backend", "two_layer_octree"), |b| {
        b.iter(|| black_box(run(&octree)))
    });
    group.bench_function(BenchmarkId::new("backend", "voxel_grid"), |b| {
        b.iter(|| black_box(run(&grid)))
    });
    group.finish();
}

fn bench_index_build(c: &mut Criterion) {
    let cloud = synthetic::humanoid(20_000, 0.5, 3);
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    group.bench_function("kdtree", |b| {
        b.iter(|| KdTree::build(black_box(cloud.positions())))
    });
    group.bench_function("two_layer_octree", |b| {
        b.iter(|| TwoLayerOctree::build(black_box(cloud.positions())))
    });
    group.bench_function("voxel_grid", |b| {
        b.iter(|| VoxelGrid::build_auto(black_box(cloud.positions()), 8))
    });
    group.finish();
}

criterion_group!(benches, bench_knn_query, bench_index_build);
criterion_main!(benches);

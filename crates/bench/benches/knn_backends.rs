//! Criterion bench: neighbor-search backends (brute force, k-d tree,
//! two-layer octree, voxel grid) — the ablation behind VoLUT's octree
//! choice — plus the per-query vs `knn_batch` comparison behind the
//! batch-first SR hot path, at 10k and 100k points for every backend.

use criterion::{criterion_group, criterion_main, is_quick_mode, BenchmarkId, Criterion};
use std::hint::black_box;
use volut_pointcloud::dualtree::{BatchStrategy, DualTreeScratch};
use volut_pointcloud::kdtree::KdTree;
use volut_pointcloud::knn::{BruteForce, NeighborSearch};
use volut_pointcloud::octree::TwoLayerOctree;
use volut_pointcloud::synthetic;
use volut_pointcloud::voxelgrid::VoxelGrid;
use volut_pointcloud::Neighborhoods;

fn bench_knn_query(c: &mut Criterion) {
    let cloud = synthetic::humanoid(20_000, 0.5, 1);
    let queries = synthetic::humanoid(200, 0.5, 2);
    let brute = BruteForce::new(cloud.positions());
    let kdtree = KdTree::build(cloud.positions());
    let octree = TwoLayerOctree::build(cloud.positions());
    let grid = VoxelGrid::build_auto(cloud.positions(), 8);

    let mut group = c.benchmark_group("knn_k8");
    group.sample_size(10);
    let run = |backend: &dyn NeighborSearch| {
        let mut total = 0usize;
        for &q in queries.positions() {
            total += backend.knn(q, 8).len();
        }
        total
    };
    group.bench_function(BenchmarkId::new("backend", "brute_force"), |b| {
        b.iter(|| black_box(run(&brute)))
    });
    group.bench_function(BenchmarkId::new("backend", "kdtree"), |b| {
        b.iter(|| black_box(run(&kdtree)))
    });
    group.bench_function(BenchmarkId::new("backend", "two_layer_octree"), |b| {
        b.iter(|| black_box(run(&octree)))
    });
    group.bench_function(BenchmarkId::new("backend", "voxel_grid"), |b| {
        b.iter(|| black_box(run(&grid)))
    });
    group.finish();
}

/// The tentpole comparison: one allocating `knn()` call per point (the
/// seed's hot path) vs one `knn_batch` sweep writing into a flat CSR with
/// shared traversal scratch. Two workload shapes, both self-queries over
/// the indexed cloud exactly as the interpolators issue them: `k = 5`
/// mirrors the naive stage (`k + 1` with the default `k = 4`) and `k = 9`
/// the dilated stage (`k × d + 1`).
fn bench_per_query_vs_batch(c: &mut Criterion) {
    let sizes: &[usize] = if is_quick_mode() {
        &[2_000]
    } else {
        &[10_000, 100_000]
    };
    for &n in sizes {
        let cloud = synthetic::humanoid(n, 0.5, 3);
        let queries = cloud.positions();
        let kdtree = KdTree::build(queries);
        let octree = TwoLayerOctree::build(queries);
        let grid = VoxelGrid::build_auto(queries, 8);

        for k in [5usize, 9] {
            let mut group = c.benchmark_group(format!("knn_batch_{n}_k{k}"));
            group.sample_size(10);

            let per_query = |backend: &dyn NeighborSearch, out: &mut Neighborhoods| {
                out.clear();
                for &q in queries {
                    let nn = backend.knn(q, k);
                    out.push_row(nn.into_iter().map(|n| n.index));
                }
                out.total_indices()
            };
            let batched = |backend: &dyn NeighborSearch, out: &mut Neighborhoods| {
                out.clear();
                backend.knn_batch(queries, k, out);
                out.total_indices()
            };

            let mut out = Neighborhoods::with_capacity(n, n * k);
            for (name, backend) in [
                ("kdtree", &kdtree as &dyn NeighborSearch),
                ("two_layer_octree", &octree),
                ("voxel_grid", &grid),
            ] {
                group.bench_function(BenchmarkId::new("per_query", name), |b| {
                    b.iter(|| black_box(per_query(backend, &mut out)))
                });
                group.bench_function(BenchmarkId::new("batch", name), |b| {
                    b.iter(|| black_box(batched(backend, &mut out)))
                });
            }
            group.finish();
        }
    }
}

/// The all-kNN *self-join* — every point of the indexed cloud queries that
/// same cloud, exactly the shape that dominates SR frame time (§4.1) — on
/// the k-d tree, across its three algorithms:
/// * `per_query` — one allocating `knn()` call per point (the seed's path);
/// * `single_tree_batch` — the warm-started, Morton-ordered batch sweep
///   (forced via `BatchStrategy::SingleTree`);
/// * `dual_tree_batch` — the leaf-pair traversal (what `knn_batch` selects
///   automatically for self-joins at these sizes).
fn bench_self_join(c: &mut Criterion) {
    let sizes: &[usize] = if is_quick_mode() {
        &[2_000]
    } else {
        &[10_000, 100_000]
    };
    for &n in sizes {
        let cloud = synthetic::humanoid(n, 0.5, 3);
        let queries = cloud.positions();
        let kdtree = KdTree::build(queries);
        for k in [5usize, 9] {
            let mut group = c.benchmark_group(format!("self_join_{n}_k{k}"));
            group.sample_size(10);
            let mut out = Neighborhoods::with_capacity(n, n * k);
            let mut scratch = DualTreeScratch::new();
            group.bench_function("per_query", |b| {
                b.iter(|| {
                    out.clear();
                    for &q in queries {
                        let nn = kdtree.knn(q, k);
                        out.push_row(nn.into_iter().map(|n| n.index));
                    }
                    black_box(out.total_indices())
                })
            });
            let forced = |strategy: BatchStrategy,
                          out: &mut Neighborhoods,
                          scratch: &mut DualTreeScratch| {
                out.clear();
                kdtree.knn_batch_with(queries, k, out, strategy, scratch);
                out.total_indices()
            };
            group.bench_function("single_tree_batch", |b| {
                b.iter(|| black_box(forced(BatchStrategy::SingleTree, &mut out, &mut scratch)))
            });
            group.bench_function("dual_tree_batch", |b| {
                b.iter(|| black_box(forced(BatchStrategy::DualTree, &mut out, &mut scratch)))
            });
            group.finish();
        }
    }
}

/// Index (re)construction: fresh `build` (allocates) vs scratch-resident
/// `build_in` (reuses node/order/point storage), the rebuild path behind
/// the `FrameScratch` index cache.
fn bench_index_build(c: &mut Criterion) {
    let n = if is_quick_mode() { 2_000 } else { 20_000 };
    let cloud = synthetic::humanoid(n, 0.5, 3);
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    group.bench_function("kdtree", |b| {
        b.iter(|| KdTree::build(black_box(cloud.positions())))
    });
    group.bench_function("kdtree_build_in", |b| {
        let mut tree = KdTree::default();
        b.iter(|| {
            tree.build_in(black_box(cloud.positions()));
            tree.points().len()
        })
    });
    group.bench_function("two_layer_octree", |b| {
        b.iter(|| TwoLayerOctree::build(black_box(cloud.positions())))
    });
    group.bench_function("voxel_grid", |b| {
        b.iter(|| VoxelGrid::build_auto(black_box(cloud.positions()), 8))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_knn_query,
    bench_per_query_vs_batch,
    bench_self_join,
    bench_index_build
);
criterion_main!(benches);

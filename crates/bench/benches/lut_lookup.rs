//! Criterion bench: position encoding and LUT lookup (dense vs sparse),
//! plus the LUT-bins ablation called out in DESIGN.md.

use criterion::{criterion_group, criterion_main, is_quick_mode, BenchmarkId, Criterion};
use std::hint::black_box;
use volut_core::config::SrConfig;
use volut_core::encoding::{KeyScheme, PositionEncoder};
use volut_core::lut::{dense::DenseLut, sparse::SparseLut, Lut};
use volut_pointcloud::Point3;

fn neighborhoods(n: usize) -> Vec<(Point3, Vec<Point3>)> {
    (0..n)
        .map(|i| {
            let f = i as f32 * 0.01;
            (
                Point3::new(f, f * 0.5, -f),
                vec![
                    Point3::new(f + 0.1, f * 0.5, -f),
                    Point3::new(f, f * 0.5 + 0.1, -f),
                    Point3::new(f, f * 0.5, -f + 0.1),
                ],
            )
        })
        .collect()
}

fn bench_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("position_encoding");
    group.sample_size(20);
    let hoods = neighborhoods(1000);
    for bins in [16usize, 32, 64, 128] {
        let cfg = SrConfig {
            bins,
            ..SrConfig::default()
        };
        let enc = PositionEncoder::new(&cfg, KeyScheme::Full).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(bins), &hoods, |b, hoods| {
            b.iter(|| {
                let mut acc = 0u128;
                for (center, neighbors) in hoods {
                    acc ^= enc.encode(*center, neighbors).unwrap().key;
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let cfg = SrConfig {
        bins: 16,
        ..SrConfig::default()
    };
    let enc_full = PositionEncoder::new(&cfg, KeyScheme::Full).unwrap();
    let enc_compact = PositionEncoder::new(&cfg, KeyScheme::Compact).unwrap();
    let hoods = neighborhoods(1000);

    let mut sparse = SparseLut::new();
    let mut dense = DenseLut::new(enc_compact.key_space()).unwrap();
    for (center, neighbors) in &hoods {
        let kf = enc_full.encode(*center, neighbors).unwrap().key;
        sparse.set(kf, [0.01, -0.01, 0.02]).unwrap();
        let kc = enc_compact.encode(*center, neighbors).unwrap().key;
        dense.set(kc, [0.01, -0.01, 0.02]).unwrap();
    }

    let mut group = c.benchmark_group("lut_lookup");
    group.sample_size(20);
    group.bench_function("sparse_full_key", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for (center, neighbors) in &hoods {
                let key = enc_full.encode(*center, neighbors).unwrap().key;
                if sparse.get(key).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.bench_function("dense_compact_key", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for (center, neighbors) in &hoods {
                let key = enc_compact.encode(*center, neighbors).unwrap().key;
                if dense.get(key).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

/// Dense LUT probe shapes over a table far larger than L2: one `get` per
/// key vs the prefetched `get_batch` block probe (mirrors the
/// sparse-vs-batched comparison PR 1 added for refinement).
fn bench_dense_probe(c: &mut Criterion) {
    let quick = is_quick_mode();
    // 2^22 entries * 6 bytes = 24 MiB of offset storage.
    let key_space: u128 = if quick { 1 << 16 } else { 1 << 22 };
    let mut dense = DenseLut::with_budget(key_space, 64 * 1024 * 1024).unwrap();
    for key in (0..key_space).step_by(3) {
        dense.set(key, [0.01, -0.01, 0.02]).unwrap();
    }
    // Pseudo-random keys spread over the whole table so every probe is a
    // fresh cache line (the refinement stage's access pattern).
    let n_keys = if quick { 4_096 } else { 100_000 };
    let keys: Vec<u128> = (0..n_keys as u128)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % key_space)
        .collect();
    let mut out = vec![None; keys.len()];

    let mut group = c.benchmark_group("dense_probe");
    group.sample_size(20);
    group.bench_function("per_key_get", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for (slot, &key) in out.iter_mut().zip(keys.iter()) {
                *slot = dense.get(key);
                hits += usize::from(slot.is_some());
            }
            black_box(hits)
        })
    });
    group.bench_function("batched_prefetch", |b| {
        b.iter(|| {
            dense.get_batch(&keys, &mut out);
            black_box(out.iter().filter(|o| o.is_some()).count())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_encoding, bench_lookup, bench_dense_probe);
criterion_main!(benches);

//! Criterion bench: per-point MLP inference (`forward_into`) vs the
//! GEMM-style micro-batched `forward_batch_into` behind the NN refiner and
//! the Yuzu/GradPU baselines.
//!
//! Per-point inference streams every weight row from memory once per point;
//! the batched path reads each row once per 32-point micro-batch and lets
//! the compiler vectorize the broadcast-multiply-accumulate over the batch
//! lane. The two paths are bit-identical (asserted in unit tests), so this
//! bench measures pure throughput.

use criterion::{criterion_group, criterion_main, is_quick_mode, BenchmarkId, Criterion};
use std::hint::black_box;
use volut_core::nn::mlp::{BatchScratch, ForwardScratch, Mlp};

fn bench_mlp_forward(c: &mut Criterion) {
    let n: usize = if is_quick_mode() { 256 } else { 8_192 };
    // The network shapes this workspace actually runs: the refinement MLP
    // distilled into the LUT, the GradPU baseline and Yuzu's per-ratio nets.
    for (label, dims) in [
        ("refiner_12x64x64x3", &[12usize, 64, 64, 3][..]),
        ("gradpu_12x256x256x3", &[12, 256, 256, 3]),
        ("yuzu_12x512x512x3", &[12, 512, 512, 3]),
    ] {
        let mlp = Mlp::new(dims, 7);
        let in_dim = mlp.input_dim();
        let out_dim = mlp.output_dim();
        let inputs: Vec<f32> = (0..n * in_dim).map(|i| ((i as f32) * 0.13).sin()).collect();
        let mut group = c.benchmark_group(format!("mlp_forward_{label}"));
        group.sample_size(10);
        group.bench_function(BenchmarkId::new("per_point", n), |b| {
            let mut scratch = ForwardScratch::default();
            b.iter(|| {
                let mut acc = 0.0f32;
                for p in 0..n {
                    let o = mlp.forward_into(&inputs[p * in_dim..(p + 1) * in_dim], &mut scratch);
                    acc += o[0];
                }
                black_box(acc)
            })
        });
        group.bench_function(BenchmarkId::new("batched", n), |b| {
            let mut scratch = BatchScratch::default();
            let mut out = Vec::new();
            b.iter(|| {
                mlp.forward_batch_into(&inputs, n, &mut out, &mut scratch);
                black_box(out[(n - 1) * out_dim])
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench_mlp_forward);
criterion_main!(benches);

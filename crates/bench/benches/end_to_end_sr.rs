//! Criterion bench: the full two-stage SR pipeline (interpolate + colorize +
//! refine) against the GradPU and Yuzu baselines on one frame, plus the
//! per-stage frame-time breakdown tracking the paper's §4.1 claim that
//! interpolation (≈ the kNN self-join) dominates upsampling time.

use criterion::{criterion_group, criterion_main, is_quick_mode, BenchmarkId, Criterion};
use std::hint::black_box;
use volut_bench::setup::TrainedArtifacts;
use volut_pointcloud::{sampling, synthetic};

fn bench_end_to_end(c: &mut Criterion) {
    let artifacts = TrainedArtifacts::train(4_000, 2);
    let gt = synthetic::humanoid(6_000, 0.7, 5);
    let low = sampling::random_downsample(&gt, 0.5, 7).unwrap();

    let volut = artifacts.pipeline_k4d2_lut();
    let gradpu = artifacts.gradpu();
    let yuzu = artifacts.yuzu();

    let mut group = c.benchmark_group("end_to_end_sr_x2");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("method", "volut_lut"), &low, |b, low| {
        b.iter(|| black_box(volut.upsample(low, 2.0).unwrap().cloud.len()))
    });
    group.bench_with_input(BenchmarkId::new("method", "yuzu_sr"), &low, |b, low| {
        b.iter(|| black_box(yuzu.upsample(low, 2.0).unwrap().cloud.len()))
    });
    group.bench_with_input(BenchmarkId::new("method", "gradpu"), &low, |b, low| {
        b.iter(|| black_box(gradpu.upsample(low, 2.0).unwrap().cloud.len()))
    });
    group.finish();
}

/// Per-stage frame-time breakdown of the VoLUT pipeline (index_build / knn /
/// interpolate / colorize / refine), reported as per-stage medians over
/// repeated frames through one streaming session. This is the
/// release-over-release tracker for the §4.1 "interpolation dominates"
/// profile: the `knn` row is the self-join the dual-tree kernel accelerates,
/// and `index_build` collapses after frame 1 thanks to the scratch-resident
/// index cache. Runs (with one sample) under CI's `--test` smoke mode too.
fn bench_stage_breakdown(c: &mut Criterion) {
    // Keep a criterion hook so the harness lists/runs this like any bench.
    let mut group = c.benchmark_group("sr_stage_breakdown");
    group.sample_size(10);
    let (n, samples) = if is_quick_mode() {
        (4_000, 1)
    } else {
        (50_000, 9)
    };
    let artifacts = TrainedArtifacts::train(4_000, 2);
    let gt = synthetic::humanoid(2 * n, 0.5, 5);
    let low = sampling::random_downsample(&gt, 0.5, 7).unwrap();
    let volut = artifacts.pipeline_k4d2_lut();
    let mut scratch = volut_core::interpolate::FrameScratch::new();
    // This tracker measures the *cold-frame* kNN kernel profile, so the
    // temporal row-reuse layer is disabled — with it on (the default),
    // repeated identical frames collapse to a wholesale row copy and the
    // knn row would read ~zero (that path is measured by the
    // `temporal_coherence` bench instead).
    scratch.set_incremental(false);
    // Warm-up frame: builds the index and grows the scratch to steady state.
    let warm = volut.upsample_with(&low, 2.0, &mut scratch).unwrap();
    let mut stages: Vec<[f64; 6]> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let r = volut.upsample_with(&low, 2.0, &mut scratch).unwrap();
        let t = r.timings;
        stages.push([
            t.index_build.as_secs_f64() * 1e3,
            t.knn.as_secs_f64() * 1e3,
            t.interpolation.as_secs_f64() * 1e3,
            t.colorization.as_secs_f64() * 1e3,
            t.refinement.as_secs_f64() * 1e3,
            t.total().as_secs_f64() * 1e3,
        ]);
    }
    let median = |idx: usize| -> f64 {
        let mut v: Vec<f64> = stages.iter().map(|s| s[idx]).collect();
        v.sort_by(f64::total_cmp);
        v[v.len() / 2]
    };
    let total = median(5).max(1e-9);
    println!(
        "sr_stage_breakdown/{n}pts_x2 (median of {samples} steady-state frames, ms; \
         first-frame index_build {:.2} ms):",
        warm.timings.index_build.as_secs_f64() * 1e3
    );
    for (idx, name) in [
        (0, "index_build"),
        (1, "knn"),
        (2, "interpolate"),
        (3, "colorize"),
        (4, "refine"),
    ] {
        let ms = median(idx);
        println!("  {name:<12} {ms:>9.3} ms  ({:>5.1}%)", 100.0 * ms / total);
    }
    println!("  {:<12} {total:>9.3} ms", "total");
    group.bench_function("frame", |b| {
        b.iter(|| {
            black_box(
                volut
                    .upsample_with(&low, 2.0, &mut scratch)
                    .unwrap()
                    .cloud
                    .len(),
            )
        })
    });
    group.finish();
}

fn bench_ratio_sweep(c: &mut Criterion) {
    // Figure 18's shape: VoLUT's frame time stays roughly stable as the
    // ratio grows because kNN over the (shrinking) input dominates.
    let artifacts = TrainedArtifacts::train(4_000, 2);
    let gt = synthetic::humanoid(8_000, 0.2, 9);
    let volut = artifacts.pipeline_k4d2_lut();
    let mut group = c.benchmark_group("volut_sr_ratio_sweep");
    group.sample_size(10);
    for ratio in [2.0f64, 4.0, 8.0] {
        let low = sampling::random_downsample(&gt, 1.0 / ratio, 11).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("x{ratio}")),
            &low,
            |b, low| b.iter(|| black_box(volut.upsample(low, ratio).unwrap().cloud.len())),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_end_to_end,
    bench_stage_breakdown,
    bench_ratio_sweep
);
criterion_main!(benches);

//! Criterion bench: the full two-stage SR pipeline (interpolate + colorize +
//! refine) against the GradPU and Yuzu baselines on one frame.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use volut_bench::setup::TrainedArtifacts;
use volut_pointcloud::{sampling, synthetic};

fn bench_end_to_end(c: &mut Criterion) {
    let artifacts = TrainedArtifacts::train(4_000, 2);
    let gt = synthetic::humanoid(6_000, 0.7, 5);
    let low = sampling::random_downsample(&gt, 0.5, 7).unwrap();

    let volut = artifacts.pipeline_k4d2_lut();
    let gradpu = artifacts.gradpu();
    let yuzu = artifacts.yuzu();

    let mut group = c.benchmark_group("end_to_end_sr_x2");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("method", "volut_lut"), &low, |b, low| {
        b.iter(|| black_box(volut.upsample(low, 2.0).unwrap().cloud.len()))
    });
    group.bench_with_input(BenchmarkId::new("method", "yuzu_sr"), &low, |b, low| {
        b.iter(|| black_box(yuzu.upsample(low, 2.0).unwrap().cloud.len()))
    });
    group.bench_with_input(BenchmarkId::new("method", "gradpu"), &low, |b, low| {
        b.iter(|| black_box(gradpu.upsample(low, 2.0).unwrap().cloud.len()))
    });
    group.finish();
}

fn bench_ratio_sweep(c: &mut Criterion) {
    // Figure 18's shape: VoLUT's frame time stays roughly stable as the
    // ratio grows because kNN over the (shrinking) input dominates.
    let artifacts = TrainedArtifacts::train(4_000, 2);
    let gt = synthetic::humanoid(8_000, 0.2, 9);
    let volut = artifacts.pipeline_k4d2_lut();
    let mut group = c.benchmark_group("volut_sr_ratio_sweep");
    group.sample_size(10);
    for ratio in [2.0f64, 4.0, 8.0] {
        let low = sampling::random_downsample(&gt, 1.0 / ratio, 11).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("x{ratio}")),
            &low,
            |b, low| b.iter(|| black_box(volut.upsample(low, ratio).unwrap().cloud.len())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end, bench_ratio_sweep);
criterion_main!(benches);

//! # volut-bench
//!
//! Benchmark harness that regenerates every table and figure of the VoLUT
//! paper's evaluation (§7) on synthetic stand-ins for its videos, traces and
//! devices. Each experiment produces a [`report::Report`] that is printed as
//! a table (same rows/series as the paper) and optionally dumped as JSON
//! into `results/`.
//!
//! Run everything with:
//!
//! ```text
//! cargo run -p volut-bench --release --bin experiments -- all
//! ```
//!
//! or a single experiment with e.g. `-- table1`, `-- fig12`, `-- fig17`.
//! Criterion micro-benchmarks for the individual pipeline stages live in
//! `benches/`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod memory;
pub mod quality;
pub mod report;
pub mod setup;
pub mod speed;
pub mod streaming;
pub mod table1;

pub use report::Report;

//! Streaming figures: normalized QoE (Figure 12), data usage (Figure 13) and
//! the QoE-vs-data ablation over LTE traces (Figure 14 / Table 2).

use crate::report::Report;
use volut_stream::chunk::chunk_video;
use volut_stream::simulator::{SessionConfig, StreamingSimulator};
use volut_stream::systems::SystemKind;
use volut_stream::trace::NetworkTrace;
use volut_stream::video::VideoMeta;

/// Evaluation videos trimmed to `seconds` of content so the harness finishes
/// quickly while keeping the paper's per-frame density.
fn evaluation_videos(seconds: f64) -> Vec<VideoMeta> {
    VideoMeta::evaluation_set()
        .into_iter()
        .map(|mut v| {
            v.frame_count = (v.fps * seconds) as usize;
            v
        })
        .collect()
}

/// The network conditions of §7.4: one stable wired trace and one LTE trace.
fn evaluation_traces(seconds: f64) -> Vec<NetworkTrace> {
    vec![
        NetworkTrace::stable(50.0, seconds),
        NetworkTrace::synthetic_lte(32.5, 13.5, seconds, 101),
    ]
}

/// Mean session results per (trace, system), averaged over the videos.
#[derive(Debug, Clone)]
pub struct StreamingPoint {
    /// Trace name.
    pub trace: String,
    /// System label.
    pub system: SystemKind,
    /// Mean normalized QoE.
    pub normalized_qoe: f64,
    /// Mean data usage as a fraction of full-density streaming.
    pub data_fraction: f64,
    /// Mean stall seconds per session.
    pub stall_s: f64,
}

/// Runs the streaming sweep for the given systems.
pub fn streaming_sweep(systems: &[SystemKind], session_seconds: f64) -> Vec<StreamingPoint> {
    let sim = StreamingSimulator::new(SessionConfig::default());
    let videos = evaluation_videos(session_seconds);
    let mut out = Vec::new();
    for trace in evaluation_traces(session_seconds) {
        for &system in systems {
            let mut qoe = 0.0;
            let mut data = 0.0;
            let mut stall = 0.0;
            for video in &videos {
                let r = sim.run(video, &trace, system).expect("session runs");
                qoe += r.qoe.normalized;
                data += r.data_fraction_of_full(video, sim.config().chunk_duration_s);
                stall += r.stall_s;
            }
            let n = videos.len() as f64;
            out.push(StreamingPoint {
                trace: trace.name.clone(),
                system,
                normalized_qoe: qoe / n,
                data_fraction: data / n,
                stall_s: stall / n,
            });
        }
    }
    out
}

/// Figure 12: normalized QoE per system under stable and LTE conditions.
pub fn fig12_qoe(points: &[StreamingPoint]) -> Report {
    let mut report = Report::new(
        "fig12",
        "Normalized QoE under stable (50 Mbps) and LTE bandwidth",
        &["Trace", "System", "Normalized QoE", "Stall (s)"],
    );
    for p in points {
        report.push_row(vec![
            p.trace.clone(),
            p.system.label().to_string(),
            format!("{:.1}", p.normalized_qoe),
            format!("{:.1}", p.stall_s),
        ]);
    }
    report.push_note("paper (stable 50 Mbps): VoLUT 100, Yuzu-SR 75.8, ViVo 43.2");
    report
}

/// Figure 13: data usage per system (fraction of full-density streaming).
pub fn fig13_data_usage(points: &[StreamingPoint]) -> Report {
    let mut report = Report::new(
        "fig13",
        "Data usage (fraction of full-density streaming)",
        &["Trace", "System", "Data fraction"],
    );
    for p in points {
        report.push_row(vec![
            p.trace.clone(),
            p.system.label().to_string(),
            format!("{:.3}", p.data_fraction),
        ]);
    }
    report.push_note("paper: VoLUT reduces data by 23% vs Yuzu-SR and 31% vs ViVo (stable); 17% vs 31% of data under LTE");
    report
}

/// Figure 14 / Table 2: QoE vs data usage for the H1/H2/H3 ablation under
/// fluctuating (LTE) bandwidth.
pub fn fig14_ablation(session_seconds: f64) -> Report {
    let sim = StreamingSimulator::new(SessionConfig::default());
    let videos = evaluation_videos(session_seconds);
    let traces = NetworkTrace::lte_evaluation_set(session_seconds);
    let mut report = Report::new(
        "fig14",
        "Ablation (Table 2 variants) over LTE traces: QoE vs data usage",
        &["Variant", "Normalized QoE", "Data fraction", "Stall (s)"],
    );
    for system in SystemKind::ablation_variants() {
        let mut qoe = 0.0;
        let mut data = 0.0;
        let mut stall = 0.0;
        let mut sessions = 0.0;
        for trace in &traces {
            for video in &videos {
                let r = sim.run(video, trace, system).expect("session runs");
                qoe += r.qoe.normalized;
                data += r.data_fraction_of_full(video, sim.config().chunk_duration_s);
                stall += r.stall_s;
                sessions += 1.0;
            }
        }
        report.push_row(vec![
            system.label().to_string(),
            format!("{:.1}", qoe / sessions),
            format!("{:.3}", data / sessions),
            format!("{:.1}", stall / sessions),
        ]);
    }
    report.push_note(
        "paper: H1 QoE 98 at 31% data; H2 -15.3% QoE / +14% data; H3 -36.7% QoE at 48% data",
    );
    report
}

/// Runs Figures 12, 13 and 14.
pub fn run_all(session_seconds: f64) -> Vec<Report> {
    let systems = [
        SystemKind::VolutContinuous,
        SystemKind::YuzuSr,
        SystemKind::Vivo,
    ];
    let points = streaming_sweep(&systems, session_seconds);
    vec![
        fig12_qoe(&points),
        fig13_data_usage(&points),
        fig14_ablation(session_seconds),
    ]
}

/// Convenience: the bandwidth-saving headline number (VoLUT data fraction vs
/// raw full-density streaming under the stable trace).
pub fn bandwidth_saving(points: &[StreamingPoint]) -> Option<f64> {
    points
        .iter()
        .find(|p| p.system == SystemKind::VolutContinuous && p.trace.starts_with("stable"))
        .map(|p| 1.0 - p.data_fraction)
}

/// Raw full-density bytes of a video, used by callers that want absolute numbers.
pub fn full_density_bytes(video: &VideoMeta, chunk_duration_s: f64) -> u64 {
    chunk_video(video, chunk_duration_s)
        .iter()
        .map(|c| c.encoded_bytes(1.0))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_sweep_reproduces_paper_ordering() {
        let systems = [
            SystemKind::VolutContinuous,
            SystemKind::YuzuSr,
            SystemKind::Vivo,
        ];
        let points = streaming_sweep(&systems, 30.0);
        assert_eq!(points.len(), 6);
        for trace in ["stable-50", "lte-32.5"] {
            let get = |s: SystemKind| {
                points
                    .iter()
                    .find(|p| p.system == s && p.trace == trace)
                    .expect("point exists")
            };
            let volut = get(SystemKind::VolutContinuous);
            let yuzu = get(SystemKind::YuzuSr);
            let vivo = get(SystemKind::Vivo);
            assert!(
                volut.normalized_qoe > yuzu.normalized_qoe,
                "{trace}: volut vs yuzu"
            );
            assert!(
                yuzu.normalized_qoe > vivo.normalized_qoe,
                "{trace}: yuzu vs vivo"
            );
            assert!(
                volut.data_fraction < yuzu.data_fraction,
                "{trace}: volut data < yuzu data"
            );
        }
        // Headline: >= 50% bandwidth saving vs raw streaming on the stable trace.
        let saving = bandwidth_saving(&points).unwrap();
        assert!(saving > 0.5, "saving {saving}");
        let reports = [fig12_qoe(&points), fig13_data_usage(&points)];
        assert!(reports.iter().all(|r| r.rows.len() == 6));
    }

    #[test]
    fn ablation_report_has_three_variants() {
        let r = fig14_ablation(20.0);
        assert_eq!(r.rows.len(), 3);
        let qoe: Vec<f64> = r.rows.iter().map(|row| row[1].parse().unwrap()).collect();
        // H1 >= H2 > H3 (allowing a small tolerance between H1 and H2).
        assert!(qoe[0] >= qoe[1] - 3.0, "H1 {} vs H2 {}", qoe[0], qoe[1]);
        assert!(qoe[1] > qoe[2], "H2 {} vs H3 {}", qoe[1], qoe[2]);
    }
}

//! Experiment report formatting and persistence.

use serde::{Deserialize, Serialize};
use std::fs;
use std::path::Path;

/// A table of results corresponding to one paper table or figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Report {
    /// Experiment identifier, e.g. "table1" or "fig12".
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted as strings).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (substitutions, caveats, paper-reported values).
    pub notes: Vec<String>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a data row.
    pub fn push_row(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Appends a note.
    pub fn push_note(&mut self, note: &str) {
        self.notes.push(note.to_string());
    }

    /// Renders the report as an aligned plain-text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let header_line: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{:width$}", h, width = widths[i]))
            .collect();
        out.push_str(&header_line.join(" | "));
        out.push('\n');
        out.push_str(&"-".repeat(header_line.join(" | ").len()));
        out.push('\n');
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect();
            out.push_str(&cells.join(" | "));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// Writes the report as JSON to `dir/<id>.json`, creating `dir` if needed.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn write_json<P: AsRef<Path>>(&self, dir: P) -> std::io::Result<()> {
        fs::create_dir_all(&dir)?;
        let path = dir.as_ref().join(format!("{}.json", self.id));
        let json = serde_json::to_string_pretty(self).expect("report serializes");
        fs::write(path, json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_headers_rows_and_notes() {
        let mut r = Report::new("figX", "Example", &["a", "bb"]);
        r.push_row(vec!["1".into(), "2".into()]);
        r.push_row(vec!["333".into(), "4".into()]);
        r.push_note("synthetic data");
        let text = r.render();
        assert!(text.contains("figX"));
        assert!(text.contains("a "));
        assert!(text.contains("333"));
        assert!(text.contains("note: synthetic data"));
    }

    #[test]
    fn json_roundtrip() {
        let mut r = Report::new("t", "T", &["x"]);
        r.push_row(vec!["y".into()]);
        let dir = std::env::temp_dir().join("volut_bench_report_test");
        r.write_json(&dir).unwrap();
        let text = std::fs::read_to_string(dir.join("t.json")).unwrap();
        let back: Report = serde_json::from_str(&text).unwrap();
        assert_eq!(back.id, "t");
        assert_eq!(back.rows.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}

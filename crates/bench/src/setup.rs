//! Shared experiment setup: synthetic evaluation videos, LUT training and
//! the pipelines under comparison.
//!
//! The paper trains GradPU on the Long Dress video only and applies the
//! distilled LUT to all four videos; [`TrainedArtifacts::train`] mirrors
//! that: it trains on humanoid frames and the resulting LUT is reused for
//! every evaluation video.

use volut_core::baselines::{GradPuUpsampler, YuzuUpsampler};
use volut_core::encoding::KeyScheme;
use volut_core::lut::builder::LutBuilder;
use volut_core::lut::sparse::SparseLut;
use volut_core::nn::mlp::Mlp;
use volut_core::nn::train::{build_training_set, RefinementTrainer, TrainConfig};
use volut_core::pipeline::InterpolationMode;
use volut_core::refine::{IdentityRefiner, LutRefiner};
use volut_core::{SrConfig, SrPipeline};
use volut_pointcloud::{synthetic, PointCloud};

/// Size of the per-frame point clouds used by the quality/runtime
/// experiments. Scaled down from the paper's 100K so the full harness runs
/// in minutes on a CI host; override with `VOLUT_EXPERIMENT_POINTS`.
pub fn experiment_points() -> usize {
    log_runtime_once();
    std::env::var("VOLUT_EXPERIMENT_POINTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12_000)
}

/// Logs the resolved worker-pool configuration (count and whether it came
/// from `VOLUT_WORKERS` or hardware detection) once per process, so every
/// recorded measurement names the parallelism it ran under. Called from
/// [`experiment_points`] and the thread-scaling bench; safe to call from
/// anywhere else that wants the line earlier.
pub fn log_runtime_once() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let cores = detected_cores();
        eprintln!(
            "host: {cores} detected core(s) (std::thread::available_parallelism); {}",
            volut_pointcloud::runtime::describe()
        );
        if cores > 1 {
            eprintln!(
                "host: multicore detected — re-run `cargo bench -p volut-bench --bench \
                 thread_scaling` and re-check the dual-tree crossover note in BENCH_knn.json \
                 (VOLUT_DUAL_MIN_QUERIES), which was last recorded on a 1-core host"
            );
        }
    });
}

/// The host's detected core count (1 when detection fails). The committed
/// `thread_scaling` numbers in `BENCH_knn.json` were recorded on a 1-core
/// host; [`log_runtime_once`] prints a re-measure reminder whenever this
/// exceeds 1.
pub fn detected_cores() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// The four evaluation "videos" (stand-ins) as single representative frames.
pub fn evaluation_frames(points: usize) -> Vec<(&'static str, PointCloud)> {
    vec![
        ("long-dress", synthetic::humanoid(points, 0.3, 11)),
        ("loot", synthetic::humanoid(points, 1.2, 29)),
        ("haggle", synthetic::room_scene(points, 0.5, 37)),
        ("lab", synthetic::room_scene(points, 1.7, 53)),
    ]
}

/// Everything trained offline once and reused across experiments.
pub struct TrainedArtifacts {
    /// The SR configuration (paper defaults: k=4, d=2, n=4, b=128).
    pub config: SrConfig,
    /// The trained refinement network.
    pub network: Mlp,
    /// The LUT distilled from the network.
    pub lut: SparseLut,
    /// Final training loss.
    pub final_loss: f32,
    /// Number of LUT entries populated during distillation.
    pub lut_entries: usize,
}

impl TrainedArtifacts {
    /// Trains the refinement network on humanoid ("Long Dress") frames and
    /// distills it into a sparse LUT, mirroring §7.1.
    ///
    /// The sparse LUT uses 32 quantization bins so that entries distilled
    /// from the training video are actually hit on the other evaluation
    /// videos; the paper's b = 128 setting belongs to the dense compact-key
    /// table whose footprint Table 1 analyzes.
    pub fn train(points: usize, epochs: usize) -> Self {
        let config = SrConfig {
            bins: 32,
            ..SrConfig::default()
        };
        let mut set = build_training_set(
            &synthetic::humanoid(points, 0.0, 11),
            0.5,
            &config,
            KeyScheme::Full,
            1,
        )
        .expect("training set");
        for (i, phase) in [0.7f32, 1.4].iter().enumerate() {
            if let Ok(more) = build_training_set(
                &synthetic::humanoid(points, *phase, 11),
                0.25,
                &config,
                KeyScheme::Full,
                2 + i as u64,
            ) {
                set.extend(more);
            }
        }
        let mut trainer = RefinementTrainer::new(
            &config,
            TrainConfig {
                epochs,
                ..TrainConfig::default()
            },
        )
        .expect("trainer");
        let report = trainer.train(&set).expect("training succeeds");
        let network = trainer.into_network();
        let builder = LutBuilder::new(&config, KeyScheme::Full).expect("builder");
        let lut = builder
            .distill_sparse(&network, &set)
            .expect("distillation");
        let lut_entries = {
            use volut_core::lut::Lut as _;
            lut.populated()
        };
        Self {
            config,
            network,
            lut,
            final_loss: report.final_loss().unwrap_or(f32::NAN),
            lut_entries,
        }
    }

    /// The paper's `K4d1` baseline: naive interpolation, no refinement.
    pub fn pipeline_k4d1(&self) -> SrPipeline {
        SrPipeline::with_mode(
            SrConfig::k4d1(),
            InterpolationMode::Naive,
            Box::new(IdentityRefiner),
        )
    }

    /// The paper's `K4d2` configuration: dilated interpolation, no refinement.
    pub fn pipeline_k4d2(&self) -> SrPipeline {
        SrPipeline::new(self.config, Box::new(IdentityRefiner))
    }

    /// The full VoLUT pipeline: dilated interpolation + LUT refinement
    /// (`K4d2-lut` in Figures 7–10).
    pub fn pipeline_k4d2_lut(&self) -> SrPipeline {
        let refiner =
            LutRefiner::from_config(&self.config, KeyScheme::Full, Box::new(self.lut.clone()))
                .expect("valid config");
        SrPipeline::new(self.config, Box::new(refiner))
    }

    /// The GradPU baseline sharing the trained network, applied at full
    /// neural inference cost.
    pub fn gradpu(&self) -> GradPuUpsampler {
        GradPuUpsampler::from_network(self.config, self.network.clone(), 3).expect("valid config")
    }

    /// The Yuzu baseline (untrained paper-scale networks; used for runtime
    /// and memory comparisons).
    pub fn yuzu(&self) -> YuzuUpsampler {
        YuzuUpsampler::new(self.config, 7).expect("valid config")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn training_produces_usable_artifacts() {
        let artifacts = TrainedArtifacts::train(2_000, 2);
        assert!(artifacts.lut_entries > 0);
        assert!(artifacts.final_loss.is_finite());
        // All pipelines build and run on a small cloud.
        let low = synthetic::sphere(500, 1.0, 3);
        for pipeline in [
            artifacts.pipeline_k4d1(),
            artifacts.pipeline_k4d2(),
            artifacts.pipeline_k4d2_lut(),
        ] {
            let out = pipeline.upsample(&low, 2.0).unwrap();
            assert_eq!(out.cloud.len(), 1000);
        }
        assert!(artifacts.gradpu().upsample(&low, 2.0).is_ok());
        assert!(artifacts.yuzu().upsample(&low, 2.0).is_ok());
    }

    #[test]
    fn evaluation_frames_cover_four_videos() {
        let frames = evaluation_frames(1000);
        assert_eq!(frames.len(), 4);
        assert!(frames.iter().all(|(_, c)| c.len() == 1000));
        assert!(experiment_points() >= 1000);
    }
}

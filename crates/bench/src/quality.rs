//! Figures 7–10: SR quality (PSNR and Chamfer distance) for ×2 and ×4
//! upsampling across the four evaluation videos and four methods
//! (K4d1, K4d2, K4d2-lut, GradPU).

use crate::report::Report;
use crate::setup::{evaluation_frames, TrainedArtifacts};
use volut_pointcloud::{metrics, sampling, PointCloud};

/// Quality of one method on one video at one ratio.
#[derive(Debug, Clone)]
pub struct QualityPoint {
    /// Video name.
    pub video: String,
    /// Method label (K4d1 / K4d2 / K4d2-lut / GradPU).
    pub method: String,
    /// Geometric PSNR in dB.
    pub psnr_db: f64,
    /// Symmetric Chamfer distance.
    pub chamfer: f64,
}

/// Runs the quality sweep for a single upsampling ratio and returns the
/// per-(video, method) results.
pub fn quality_sweep(artifacts: &TrainedArtifacts, points: usize, ratio: f64) -> Vec<QualityPoint> {
    let mut out = Vec::new();
    for (video, gt) in evaluation_frames(points) {
        let keep = 1.0 / ratio;
        let low = sampling::random_downsample(&gt, keep, 7).expect("valid ratio");
        let evaluate = |name: &str, cloud: &PointCloud, out: &mut Vec<QualityPoint>| {
            out.push(QualityPoint {
                video: video.to_string(),
                method: name.to_string(),
                psnr_db: metrics::geometric_psnr(cloud, &gt),
                chamfer: metrics::chamfer_distance(cloud, &gt),
            });
        };
        let k4d1 = artifacts
            .pipeline_k4d1()
            .upsample(&low, ratio)
            .expect("k4d1");
        evaluate("K4d1", &k4d1.cloud, &mut out);
        let k4d2 = artifacts
            .pipeline_k4d2()
            .upsample(&low, ratio)
            .expect("k4d2");
        evaluate("K4d2", &k4d2.cloud, &mut out);
        let lut = artifacts
            .pipeline_k4d2_lut()
            .upsample(&low, ratio)
            .expect("k4d2-lut");
        evaluate("K4d2-lut", &lut.cloud, &mut out);
        let gradpu = artifacts.gradpu().upsample(&low, ratio).expect("gradpu");
        evaluate("GradPU", &gradpu.cloud, &mut out);
    }
    out
}

/// Builds the PSNR report (Figure 7 for ×2, Figure 9 for ×4).
pub fn psnr_report(id: &str, ratio: f64, points: &[QualityPoint]) -> Report {
    let mut report = Report::new(
        id,
        &format!("PSNR (dB) for x{ratio:.0} super-resolution"),
        &["Video", "K4d1", "K4d2", "K4d2-lut", "GradPU"],
    );
    fill_rows(&mut report, points, |p| format!("{:.2}", p.psnr_db));
    report.push_note("paper reports >30 dB across settings; higher is better");
    report
}

/// Builds the Chamfer-distance report (Figure 8 for ×2, Figure 10 for ×4).
pub fn chamfer_report(id: &str, ratio: f64, points: &[QualityPoint]) -> Report {
    let mut report = Report::new(
        id,
        &format!("Chamfer distance for x{ratio:.0} super-resolution"),
        &["Video", "K4d1", "K4d2", "K4d2-lut", "GradPU"],
    );
    fill_rows(&mut report, points, |p| format!("{:.6}", p.chamfer));
    report.push_note("lower is better; K4d2-lut should match or beat K4d1");
    report
}

fn fill_rows(report: &mut Report, points: &[QualityPoint], fmt: impl Fn(&QualityPoint) -> String) {
    let videos: Vec<String> = {
        let mut v: Vec<String> = points.iter().map(|p| p.video.clone()).collect();
        v.dedup();
        v
    };
    for video in videos {
        let mut row = vec![video.clone()];
        for method in ["K4d1", "K4d2", "K4d2-lut", "GradPU"] {
            let cell = points
                .iter()
                .find(|p| p.video == video && p.method == method)
                .map(&fmt)
                .unwrap_or_else(|| "-".to_string());
            row.push(cell);
        }
        report.push_row(row);
    }
}

/// Runs Figures 7–10 end to end.
pub fn run_all(artifacts: &TrainedArtifacts, points: usize) -> Vec<Report> {
    let x2 = quality_sweep(artifacts, points, 2.0);
    let x4 = quality_sweep(artifacts, points, 4.0);
    vec![
        psnr_report("fig7", 2.0, &x2),
        chamfer_report("fig8", 2.0, &x2),
        psnr_report("fig9", 4.0, &x4),
        chamfer_report("fig10", 4.0, &x4),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::TrainedArtifacts;

    #[test]
    fn quality_sweep_produces_expected_shape() {
        let artifacts = TrainedArtifacts::train(2_000, 2);
        let points = quality_sweep(&artifacts, 2_000, 2.0);
        // 4 videos x 4 methods.
        assert_eq!(points.len(), 16);
        assert!(points.iter().all(|p| p.psnr_db > 0.0 && p.chamfer >= 0.0));
        // Dilated interpolation should not be worse than naive on average.
        let mean = |method: &str| {
            let sel: Vec<f64> = points
                .iter()
                .filter(|p| p.method == method)
                .map(|p| p.chamfer)
                .collect();
            sel.iter().sum::<f64>() / sel.len() as f64
        };
        assert!(mean("K4d2") <= mean("K4d1") * 1.15);
        let reports = vec![
            psnr_report("fig7", 2.0, &points),
            chamfer_report("fig8", 2.0, &points),
        ];
        for r in reports {
            assert_eq!(r.rows.len(), 4);
            assert_eq!(r.headers.len(), 5);
        }
    }
}

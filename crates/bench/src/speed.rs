//! Runtime figures: interpolation FPS (Figure 11), the end-to-end SR runtime
//! breakdown (Figure 16), SR runtime on the commodity GPU (Figure 17) and SR
//! FPS across upsampling ratios on the Orange Pi (Figure 18).
//!
//! Host wall-clock measurements from the actual Rust pipelines are converted
//! to per-device numbers with the [`DeviceProfile`] cost models (see
//! DESIGN.md §2 for the substitution rationale).

use crate::report::Report;
use crate::setup::TrainedArtifacts;
use std::time::Duration;
use volut_core::device::{DeviceProfile, StageKind};
use volut_core::pipeline::StageTimings;
use volut_pointcloud::{sampling, synthetic};

/// Converts host stage timings into a device total using per-stage scaling.
/// `nn_refinement` selects whether the refinement stage scales like NN
/// inference or like a table lookup.
pub fn device_total(
    timings: &StageTimings,
    device: &DeviceProfile,
    nn_refinement: bool,
) -> Duration {
    let refine_kind = if nn_refinement {
        StageKind::NnInference
    } else {
        StageKind::LutLookup
    };
    device.scale_duration(StageKind::Knn, timings.index_build + timings.knn)
        + device.scale_duration(StageKind::Interpolation, timings.interpolation)
        + device.scale_duration(StageKind::Colorization, timings.colorization)
        + device.scale_duration(refine_kind, timings.refinement)
}

/// Figure 11: interpolation FPS, vanilla vs VoLUT, on the Orange Pi and the
/// RTX 3080Ti desktop, for ×2 / ×4 / ×8 upsampling.
pub fn fig11_interpolation_fps(artifacts: &TrainedArtifacts, points: usize) -> Report {
    let mut report = Report::new(
        "fig11",
        "Interpolation FPS (vanilla kNN vs VoLUT dilated+octree+reuse)",
        &["Device", "Ratio", "Vanilla FPS", "VoLUT FPS", "Speedup"],
    );
    let gt = synthetic::humanoid(points, 0.4, 3);
    let devices = [DeviceProfile::orange_pi(), DeviceProfile::desktop_3080ti()];
    for device in &devices {
        for ratio in [2.0, 4.0, 8.0] {
            let low = sampling::random_downsample(&gt, 1.0 / ratio, 5).expect("ratio");
            let naive = artifacts
                .pipeline_k4d1()
                .upsample(&low, ratio)
                .expect("naive");
            let dilated = artifacts
                .pipeline_k4d2()
                .upsample(&low, ratio)
                .expect("dilated");
            let naive_t = device_total(&naive.timings, device, false);
            let volut_t = device_total(&dilated.timings, device, false);
            let naive_fps = DeviceProfile::fps(naive_t);
            let volut_fps = DeviceProfile::fps(volut_t);
            report.push_row(vec![
                device.name.clone(),
                format!("x{ratio:.0}"),
                format!("{naive_fps:.1}"),
                format!("{volut_fps:.1}"),
                format!("{:.1}x", volut_fps / naive_fps.max(1e-9)),
            ]);
        }
    }
    report.push_note("paper: 3.7-3.9x speedup on Orange Pi, 7.5-8.1x on the 3080Ti");
    report
}

/// Figure 16: end-to-end SR runtime breakdown per stage on desktop and
/// Orange Pi.
pub fn fig16_runtime_breakdown(artifacts: &TrainedArtifacts, points: usize) -> Report {
    let mut report = Report::new(
        "fig16",
        "End-to-end SR runtime breakdown (fraction of frame time per stage)",
        &[
            "Device",
            "kNN",
            "Interpolation",
            "Colorization",
            "LUT refinement",
        ],
    );
    let gt = synthetic::humanoid(points, 0.8, 5);
    let low = sampling::random_downsample(&gt, 0.25, 9).expect("ratio");
    let result = artifacts
        .pipeline_k4d2_lut()
        .upsample(&low, 4.0)
        .expect("sr");
    for device in [DeviceProfile::desktop_3080ti(), DeviceProfile::orange_pi()] {
        let knn = device.scale_duration(
            StageKind::Knn,
            result.timings.index_build + result.timings.knn,
        );
        let interp = device.scale_duration(StageKind::Interpolation, result.timings.interpolation);
        let colorize = device.scale_duration(StageKind::Colorization, result.timings.colorization);
        let refine = device.scale_duration(StageKind::LutLookup, result.timings.refinement);
        let total = (knn + interp + colorize + refine).as_secs_f64().max(1e-12);
        let pct = |d: Duration| format!("{:.1}%", d.as_secs_f64() / total * 100.0);
        report.push_row(vec![
            device.name.clone(),
            pct(knn),
            pct(interp),
            pct(colorize),
            pct(refine),
        ]);
    }
    report.push_note("paper: kNN search dominates, LUT refinement consumes the least time");
    report
}

/// Figure 17: single-frame SR runtime on the commodity GPU (desktop) for
/// VoLUT, Yuzu and GradPU, plus the implied speedups.
pub fn fig17_sr_runtime_desktop(artifacts: &TrainedArtifacts, points: usize) -> Report {
    let mut report = Report::new(
        "fig17",
        "SR runtime on commodity GPU (per frame)",
        &["Method", "Frame time (ms)", "FPS", "Slowdown vs VoLUT"],
    );
    let gt = synthetic::humanoid(points, 1.1, 7);
    let low = sampling::random_downsample(&gt, 0.5, 11).expect("ratio");
    let device = DeviceProfile::desktop_3080ti();

    let volut = artifacts
        .pipeline_k4d2_lut()
        .upsample(&low, 2.0)
        .expect("volut");
    let yuzu = artifacts.yuzu().upsample(&low, 2.0).expect("yuzu");
    let gradpu = artifacts.gradpu().upsample(&low, 2.0).expect("gradpu");

    let volut_t = device_total(&volut.timings, &device, false).as_secs_f64();
    let yuzu_t = device_total(&yuzu.timings, &device, true).as_secs_f64();
    let gradpu_t = device_total(&gradpu.timings, &device, true).as_secs_f64();

    for (name, t) in [
        ("VoLUT (LUT)", volut_t),
        ("Yuzu-SR (neural)", yuzu_t),
        ("GradPU (neural)", gradpu_t),
    ] {
        report.push_row(vec![
            name.to_string(),
            format!("{:.2}", t * 1e3),
            format!("{:.1}", 1.0 / t.max(1e-12)),
            format!("{:.1}x", t / volut_t.max(1e-12)),
        ]);
    }
    report.push_note("paper: VoLUT outperforms Yuzu by 8.4x and GradPU by 46400x on the 3080Ti");
    report.push_note(
        "GradPU's published slowdown includes unoptimized PyTorch inference; the Rust \
         re-implementation narrows the absolute gap but preserves the ordering",
    );
    report
}

/// Figure 18: SR runtime (FPS) on the Orange Pi across upsampling ratios —
/// the paper's point is that it stays roughly stable because kNN on the
/// input points dominates.
pub fn fig18_sr_fps_orange_pi(artifacts: &TrainedArtifacts, points: usize) -> Report {
    let mut report = Report::new(
        "fig18",
        "SR FPS on Orange Pi across upsampling ratios",
        &["Ratio", "Input points", "Output points", "FPS"],
    );
    let device = DeviceProfile::orange_pi();
    let gt = synthetic::humanoid(points, 0.2, 13);
    for ratio in [2.0, 4.0, 6.0, 8.0] {
        let low = sampling::random_downsample(&gt, 1.0 / ratio, 17).expect("ratio");
        let result = artifacts
            .pipeline_k4d2_lut()
            .upsample(&low, ratio)
            .expect("sr");
        let t = device_total(&result.timings, &device, false);
        report.push_row(vec![
            format!("x{ratio:.0}"),
            low.len().to_string(),
            result.cloud.len().to_string(),
            format!("{:.1}", DeviceProfile::fps(t)),
        ]);
    }
    report.push_note("paper: FPS stays relatively stable as the ratio increases (kNN-bound)");
    report
}

/// Runs all runtime figures.
pub fn run_all(artifacts: &TrainedArtifacts, points: usize) -> Vec<Report> {
    vec![
        fig11_interpolation_fps(artifacts, points),
        fig16_runtime_breakdown(artifacts, points),
        fig17_sr_runtime_desktop(artifacts, points),
        fig18_sr_fps_orange_pi(artifacts, points),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_reports_have_expected_shape() {
        let artifacts = TrainedArtifacts::train(1_500, 1);
        let fig11 = fig11_interpolation_fps(&artifacts, 6_000);
        assert_eq!(fig11.rows.len(), 6);
        // At the small cloud sizes used by unit tests (and in unoptimized
        // builds) the end-to-end FPS of the two methods is comparable; the
        // figure-level speedup shows up at experiment scale in release mode.
        for row in fig11.rows.iter().filter(|r| r[1] == "x8") {
            let vanilla: f64 = row[2].parse().unwrap();
            let volut: f64 = row[3].parse().unwrap();
            assert!(volut >= vanilla * 0.5, "row {row:?}");
        }
        // The stage the optimization actually targets — neighbor search — must
        // be cheaper for the dilated pipeline at a high upsampling ratio.
        {
            use volut_core::config::SrConfig;
            use volut_core::interpolate::{dilated::dilated_interpolate, naive::naive_interpolate};
            use volut_pointcloud::{sampling, synthetic};
            let gt = synthetic::humanoid(6_000, 0.4, 3);
            let low = sampling::random_downsample(&gt, 1.0 / 8.0, 5).unwrap();
            let naive = naive_interpolate(&low, &SrConfig::k4d1(), 8.0).unwrap();
            let dilated = dilated_interpolate(&low, &SrConfig::k4d2(), 8.0).unwrap();
            assert!(
                dilated.timings.knn < naive.timings.knn,
                "dilated knn {:?} should be below naive knn {:?}",
                dilated.timings.knn,
                naive.timings.knn
            );
            assert!(dilated.ops.knn_queries < naive.ops.knn_queries);
        }
        let fig17 = fig17_sr_runtime_desktop(&artifacts, 2_000);
        assert_eq!(fig17.rows.len(), 3);
        let volut_ms: f64 = fig17.rows[0][1].parse().unwrap();
        let gradpu_ms: f64 = fig17.rows[2][1].parse().unwrap();
        assert!(
            gradpu_ms > volut_ms,
            "gradpu {gradpu_ms} should be slower than volut {volut_ms}"
        );
        let fig18 = fig18_sr_fps_orange_pi(&artifacts, 2_000);
        assert_eq!(fig18.rows.len(), 4);
        let fig16 = fig16_runtime_breakdown(&artifacts, 2_000);
        assert_eq!(fig16.rows.len(), 2);
    }
}

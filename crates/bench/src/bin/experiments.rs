//! Experiment runner: regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p volut-bench --release --bin experiments -- all
//! cargo run -p volut-bench --release --bin experiments -- table1 fig12 fig17
//! ```
//!
//! Reports are printed to stdout and written as JSON to `results/`.

use volut_bench::setup::{experiment_points, TrainedArtifacts};
use volut_bench::{memory, quality, report::Report, speed, streaming, table1};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selected: Vec<String> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "table1", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
            "fig16", "fig17", "fig18",
        ]
        .into_iter()
        .map(String::from)
        .collect()
    } else {
        args
    };
    let wants = |id: &str| selected.iter().any(|s| s == id);
    let points = experiment_points();
    let streaming_seconds: f64 = std::env::var("VOLUT_SESSION_SECONDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60.0);

    let mut reports: Vec<Report> = Vec::new();

    if wants("table1") {
        reports.push(table1::run());
    }

    let needs_artifacts = [
        "fig7", "fig8", "fig9", "fig10", "fig11", "fig15", "fig16", "fig17", "fig18",
    ]
    .iter()
    .any(|id| wants(id));
    let artifacts = if needs_artifacts {
        eprintln!("[experiments] training refinement network and distilling LUT ({points} points per frame)...");
        Some(TrainedArtifacts::train(points, 8))
    } else {
        None
    };

    if let Some(artifacts) = &artifacts {
        if ["fig7", "fig8", "fig9", "fig10"].iter().any(|id| wants(id)) {
            eprintln!("[experiments] running SR quality sweep (figures 7-10)...");
            for report in quality::run_all(artifacts, points) {
                if wants(&report.id) {
                    reports.push(report);
                }
            }
        }
        if ["fig11", "fig16", "fig17", "fig18"]
            .iter()
            .any(|id| wants(id))
        {
            eprintln!("[experiments] running runtime experiments (figures 11, 16, 17, 18)...");
            for report in speed::run_all(artifacts, points) {
                if wants(&report.id) {
                    reports.push(report);
                }
            }
        }
        if wants("fig15") {
            reports.push(memory::fig15_memory(artifacts));
        }
    }

    if ["fig12", "fig13", "fig14"].iter().any(|id| wants(id)) {
        eprintln!("[experiments] running streaming simulations (figures 12-14, {streaming_seconds} s sessions)...");
        for report in streaming::run_all(streaming_seconds) {
            if wants(&report.id) {
                reports.push(report);
            }
        }
    }

    for report in &reports {
        report.print();
        if let Err(e) = report.write_json("results") {
            eprintln!(
                "[experiments] warning: could not write results/{}.json: {e}",
                report.id
            );
        }
    }
    eprintln!(
        "[experiments] wrote {} report(s) to results/",
        reports.len()
    );
}

//! Table 1: LUT memory analysis for different receptive-field sizes and bin
//! counts.

use crate::report::Report;
use volut_core::lut::memory::{table1_rows, MemoryModel};

/// Regenerates Table 1.
pub fn run() -> Report {
    let mut report = Report::new(
        "table1",
        "Memory analysis for different LUT configurations (float16 offsets)",
        &["RF size (n)", "Bins (b)", "Entries", "Size", "Paper"],
    );
    let paper = ["12 MB", "1.5 MB", "1.61 GB", "100 MB", "201 GB", "6.25 GB"];
    for (row, paper_size) in table1_rows().iter().zip(paper.iter()) {
        report.push_row(vec![
            row.receptive_field.to_string(),
            row.bins.to_string(),
            row.entries.to_string(),
            row.formatted.clone(),
            (*paper_size).to_string(),
        ]);
    }
    report.push_note(
        "entry count follows the byte figures of the paper's Table 1 (b^n entries x 6 bytes); \
         the prose formula b^(3n) is exposed as MemoryModel::full_entries",
    );
    report.push_note(&format!(
        "deployed configuration (n=4, b=128) = {}",
        MemoryModel::format_bytes(MemoryModel::new(4, 128).compact_bytes())
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_six_rows_matching_paper_sizes() {
        let r = run();
        assert_eq!(r.rows.len(), 6);
        assert!(r.rows[2][3].contains("GB")); // n=4, b=128 ~ 1.5 GB
        assert!(r.rows[0][3].contains("MB")); // n=3, b=128 ~ 12 MB
        assert!(!r.notes.is_empty());
    }
}

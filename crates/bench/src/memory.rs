//! Figure 15: GPU/client memory usage of the SR back-ends, plus the
//! multi-tenant server's bytes/session accounting (shared registry vs
//! per-session table clones).

use std::sync::Arc;

use crate::report::Report;
use crate::setup::TrainedArtifacts;
use volut_core::device::DeviceProfile;
use volut_core::encoding::KeyScheme;
use volut_core::lut::dense::DenseLut;
use volut_core::lut::memory::MemoryModel;
use volut_core::lut::Lut as _;
use volut_core::registry::{ContentModel, ModelRegistry};
use volut_core::SrConfig;
use volut_stream::server::{ServerConfig, ServerMemoryStats, SessionSpec, SrServer};

/// Name of the content item published by [`serving_registry`].
pub const SERVING_CONTENT: &str = "serving-demo";

/// One deployment-scale content item: a Compact-scheme dense LUT (the
/// paper's runtime-table configuration) sized by `bins^receptive_field`,
/// one-third populated so probes exercise both hit and miss paths. At the
/// default `bins = 24` the table is ~2 MiB — the quantity a per-session
/// clone multiplies by the session count.
pub fn serving_registry(bins: usize) -> Arc<ModelRegistry> {
    let config = SrConfig {
        bins,
        ..SrConfig::default()
    };
    let key_space = (bins as u128).pow(config.receptive_field as u32);
    let mut lut = DenseLut::new(key_space).expect("serving table within budget");
    for key in (0..key_space).step_by(3) {
        lut.set(key, [0.01, -0.004, 0.002]).expect("in-range key");
    }
    let mut registry = ModelRegistry::new();
    registry.publish(ContentModel::from_dense(
        SERVING_CONTENT,
        config,
        KeyScheme::Compact,
        lut,
        None,
    ));
    Arc::new(registry)
}

/// Admits `sessions` churned sessions against the serving registry, runs
/// `warm_frames` ticks so every scratch arena reaches its steady-state
/// high-water mark, and returns the measured memory split. `share = false`
/// is the pre-registry baseline: every session deep-copies the table.
pub fn measure_server_memory(
    registry: &Arc<ModelRegistry>,
    sessions: usize,
    share: bool,
    points: usize,
    warm_frames: u64,
) -> ServerMemoryStats {
    let config = ServerConfig {
        capacity: sessions,
        queue_limit: sessions,
        share_registry: share,
        ..ServerConfig::default()
    };
    let mut server = SrServer::new(Arc::clone(registry), config);
    for seed in 0..sessions as u64 {
        assert!(server.enqueue(SessionSpec {
            content: SERVING_CONTENT.into(),
            seed,
            points,
            churn: 0.1,
            frames: warm_frames + 1, // stay active through every warm tick
            ingest: volut_stream::server::IngestSource::Local,
        }));
    }
    for _ in 0..warm_frames.max(1) {
        server.tick();
    }
    server.memory_stats()
}

/// Server bytes/session at each requested session count, shared registry vs
/// per-session clones. The cloned baseline is materialized only while its
/// total table cost stays under `clone_materialize_cap` bytes; beyond that
/// it is derived exactly (a clone adds exactly the table size per session —
/// [`SrServer::memory_stats`] counts it from the live refiner either way).
pub fn server_memory_report(
    session_counts: &[usize],
    points: usize,
    clone_materialize_cap: usize,
) -> Report {
    let mut report = Report::new(
        "server_memory",
        "Multi-tenant server bytes/session: shared registry vs per-session clones",
        &[
            "Sessions",
            "Mode",
            "Bytes/session",
            "Human readable",
            "Registry bytes (held once)",
            "Shared/clone ratio",
        ],
    );
    let registry = serving_registry(24);
    let table_bytes = registry.shared_bytes();
    for &n in session_counts {
        let shared = measure_server_memory(&registry, n, true, points, 2);
        let cloned_per_session = if n.saturating_mul(table_bytes) <= clone_materialize_cap {
            measure_server_memory(&registry, n, false, points, 2).bytes_per_session
        } else {
            // Exact arithmetic, not an estimate: the only difference between
            // the modes is one table copy per session.
            shared.bytes_per_session + table_bytes as f64
        };
        let ratio = shared.bytes_per_session / cloned_per_session.max(1.0);
        for (mode, per_session) in [
            ("shared", shared.bytes_per_session),
            ("cloned", cloned_per_session),
        ] {
            report.push_row(vec![
                n.to_string(),
                mode.to_string(),
                format!("{per_session:.0}"),
                MemoryModel::format_bytes(per_session as u128),
                table_bytes.to_string(),
                format!("{ratio:.3}"),
            ]);
        }
    }
    report.push_note(
        "shared mode maps the registry's one dense LUT read-only into every session; \
         cloned mode is the pre-registry behavior (one table copy per session). \
         Acceptance: shared bytes/session at N=1k must be <= 25% of the cloned baseline.",
    );
    report
}

/// Regenerates Figure 15: resident memory of GradPU, Yuzu (frozen models)
/// and VoLUT's single LUT for a 100K-point frame workload.
pub fn fig15_memory(artifacts: &TrainedArtifacts) -> Report {
    let mut report = Report::new(
        "fig15",
        "Client SR memory usage (100K-point frames)",
        &[
            "Method",
            "Resident bytes",
            "Human readable",
            "Fits Quest-3-class device (8 GiB, 50% headroom)",
        ],
    );
    let points_per_frame = 100_000;
    let device = DeviceProfile::orange_pi();

    let gradpu_bytes = artifacts.gradpu().memory_bytes(points_per_frame) as u128;
    let yuzu_bytes = artifacts.yuzu().memory_bytes(points_per_frame) as u128;
    // VoLUT ships the dense deployed LUT (n=4, b=128) in the paper; the
    // distilled sparse LUT used by this reproduction is far smaller. Report
    // both so the comparison against the paper's 1.6 GB figure is explicit.
    let dense_bytes = MemoryModel::new(4, 128).compact_bytes();
    let sparse_bytes = artifacts.lut.memory_bytes() as u128;

    for (name, bytes) in [
        ("GradPU (activations + weights)", gradpu_bytes),
        ("Yuzu-SR (frozen per-ratio models)", yuzu_bytes),
        ("VoLUT dense LUT (paper config n=4, b=128)", dense_bytes),
        ("VoLUT sparse LUT (this reproduction)", sparse_bytes),
    ] {
        report.push_row(vec![
            name.to_string(),
            bytes.to_string(),
            MemoryModel::format_bytes(bytes),
            if device.fits_in_memory(bytes, 0.5) {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    report.push_note("paper: VoLUT improves GPU memory usage by 86% vs GradPU and is comparable to Yuzu's frozen models");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_ordering_matches_paper_claims() {
        let artifacts = TrainedArtifacts::train(1_500, 1);
        let r = fig15_memory(&artifacts);
        assert_eq!(r.rows.len(), 4);
        let bytes: Vec<u128> = r.rows.iter().map(|row| row[1].parse().unwrap()).collect();
        // GradPU (activations for the whole batch) uses the most memory of
        // the neural back-ends.
        assert!(
            bytes[0] > bytes[1],
            "gradpu {} should exceed yuzu {}",
            bytes[0],
            bytes[1]
        );
        // The sparse reproduction LUT is far smaller than the dense paper LUT
        // and far smaller than GradPU's working set.
        assert!(bytes[3] < bytes[2]);
        assert!(
            bytes[3] * 10 < bytes[0],
            "sparse lut should be well below gradpu"
        );
        // Everything the client actually deploys fits a Quest-3-class device.
        assert_eq!(r.rows[3][3], "yes");
    }

    #[test]
    fn server_sharing_beats_cloning_by_4x() {
        // Small-N stand-in for the committed N=1k/10k rows (the bench
        // records those); the invariant is identical: a session's marginal
        // bytes are scratch-scale, so the shared mode must undercut the
        // cloned baseline by at least the acceptance factor.
        let registry = serving_registry(24);
        let table = registry.shared_bytes();
        assert!(table > 1_000_000, "deployment-scale table, got {table}");
        let shared = measure_server_memory(&registry, 6, true, 400, 2);
        let cloned = measure_server_memory(&registry, 6, false, 400, 2);
        assert_eq!(shared.sessions, 6);
        assert_eq!(cloned.sessions, 6);
        assert!(
            shared.bytes_per_session <= 0.25 * cloned.bytes_per_session,
            "shared {} must be <= 25% of cloned {}",
            shared.bytes_per_session,
            cloned.bytes_per_session
        );
        // The derived-clone arithmetic matches the materialized measurement.
        let derived = shared.bytes_per_session + table as f64;
        let rel = (derived - cloned.bytes_per_session).abs() / cloned.bytes_per_session;
        assert!(
            rel < 0.05,
            "derived {derived} vs measured {}",
            cloned.bytes_per_session
        );
    }

    #[test]
    fn server_memory_report_has_both_modes() {
        let r = server_memory_report(&[4], 300, usize::MAX);
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][1], "shared");
        assert_eq!(r.rows[1][1], "cloned");
        let shared: f64 = r.rows[0][2].parse().unwrap();
        let cloned: f64 = r.rows[1][2].parse().unwrap();
        assert!(shared < cloned);
    }
}

//! Figure 15: GPU/client memory usage of the SR back-ends.

use crate::report::Report;
use crate::setup::TrainedArtifacts;
use volut_core::device::DeviceProfile;
use volut_core::lut::memory::MemoryModel;
use volut_core::lut::Lut as _;

/// Regenerates Figure 15: resident memory of GradPU, Yuzu (frozen models)
/// and VoLUT's single LUT for a 100K-point frame workload.
pub fn fig15_memory(artifacts: &TrainedArtifacts) -> Report {
    let mut report = Report::new(
        "fig15",
        "Client SR memory usage (100K-point frames)",
        &[
            "Method",
            "Resident bytes",
            "Human readable",
            "Fits Quest-3-class device (8 GiB, 50% headroom)",
        ],
    );
    let points_per_frame = 100_000;
    let device = DeviceProfile::orange_pi();

    let gradpu_bytes = artifacts.gradpu().memory_bytes(points_per_frame) as u128;
    let yuzu_bytes = artifacts.yuzu().memory_bytes(points_per_frame) as u128;
    // VoLUT ships the dense deployed LUT (n=4, b=128) in the paper; the
    // distilled sparse LUT used by this reproduction is far smaller. Report
    // both so the comparison against the paper's 1.6 GB figure is explicit.
    let dense_bytes = MemoryModel::new(4, 128).compact_bytes();
    let sparse_bytes = artifacts.lut.memory_bytes() as u128;

    for (name, bytes) in [
        ("GradPU (activations + weights)", gradpu_bytes),
        ("Yuzu-SR (frozen per-ratio models)", yuzu_bytes),
        ("VoLUT dense LUT (paper config n=4, b=128)", dense_bytes),
        ("VoLUT sparse LUT (this reproduction)", sparse_bytes),
    ] {
        report.push_row(vec![
            name.to_string(),
            bytes.to_string(),
            MemoryModel::format_bytes(bytes),
            if device.fits_in_memory(bytes, 0.5) {
                "yes".into()
            } else {
                "no".into()
            },
        ]);
    }
    report.push_note("paper: VoLUT improves GPU memory usage by 86% vs GradPU and is comparable to Yuzu's frozen models");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_ordering_matches_paper_claims() {
        let artifacts = TrainedArtifacts::train(1_500, 1);
        let r = fig15_memory(&artifacts);
        assert_eq!(r.rows.len(), 4);
        let bytes: Vec<u128> = r.rows.iter().map(|row| row[1].parse().unwrap()).collect();
        // GradPU (activations for the whole batch) uses the most memory of
        // the neural back-ends.
        assert!(
            bytes[0] > bytes[1],
            "gradpu {} should exceed yuzu {}",
            bytes[0],
            bytes[1]
        );
        // The sparse reproduction LUT is far smaller than the dense paper LUT
        // and far smaller than GradPU's working set.
        assert!(bytes[3] < bytes[2]);
        assert!(
            bytes[3] * 10 < bytes[0],
            "sparse lut should be well below gradpu"
        );
        // Everything the client actually deploys fits a Quest-3-class device.
        assert_eq!(r.rows[3][3], "yes");
    }
}

//! Position encoding for LUT indexing (§4.2.1).
//!
//! The refinement stage must turn a *continuous* 3D neighborhood into a
//! *discrete* table index. The paper's pipeline (Figure 6) does this in
//! three steps: take the receptive field's raw coordinates (a), normalize
//! them relative to the center point and neighborhood radius (b, Eq. 3), and
//! quantize each normalized value into `b` bins (c, Eq. 4).
//!
//! Two key layouts are supported, matching the two ways the paper counts
//! LUT entries:
//! * [`KeyScheme::Full`] — every coordinate of every receptive-field point
//!   contributes `log2(b)` bits, giving `b^(3n)` possible keys (the text's
//!   Eq. 5). This space is far too large to materialize densely and is used
//!   with the sparse LUT.
//! * [`KeyScheme::Compact`] — each receptive-field point is encoded as a
//!   single `b`-bin code (octant + quantized radial distance), giving `b^n`
//!   possible keys. This matches the byte counts of Table 1 and is what the
//!   dense LUT uses.

use crate::config::SrConfig;
use crate::error::Error;
use crate::Result;
use serde::{Deserialize, Serialize};
use volut_pointcloud::{NeighborhoodsView, Point3};

/// How receptive-field points are mapped to table keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KeyScheme {
    /// Per-coordinate quantization: `b^(3n)` possible keys (paper Eq. 5).
    Full,
    /// Per-point scalar code (octant ⊕ radial bin): `b^n` possible keys
    /// (matches the sizes reported in Table 1).
    Compact,
}

/// A quantized neighborhood ready for LUT lookup.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodedNeighborhood {
    /// The packed lookup key.
    pub key: u128,
    /// Quantized per-coordinate indices (row-major: point, then x/y/z),
    /// kept for NN dequantization and debugging.
    pub indices: Vec<u16>,
    /// Neighborhood radius `R` used for normalization; refinement offsets
    /// are expressed in this normalized scale and must be multiplied back.
    pub radius: f32,
}

/// Reusable gather lanes for [`PositionEncoder::encode_keys_block`]: the
/// center-relative neighbor offsets of one block of CSR rows, stored SoA so
/// the radius reduction runs through the vector-width squared-norm kernel.
#[derive(Debug, Clone, Default)]
pub struct EncodeScratch {
    dx: Vec<f32>,
    dy: Vec<f32>,
    dz: Vec<f32>,
    d2: Vec<f32>,
    /// Per-row exclusive end offsets into the lanes.
    seg: Vec<u32>,
}

/// Encoder turning `(center, neighbors)` into quantized LUT keys.
///
/// # Example
///
/// ```
/// use volut_core::encoding::{PositionEncoder, KeyScheme};
/// use volut_core::config::SrConfig;
/// use volut_pointcloud::Point3;
///
/// let enc = PositionEncoder::new(&SrConfig::default(), KeyScheme::Compact).unwrap();
/// let center = Point3::new(0.0, 0.0, 0.0);
/// let neighbors = [Point3::new(1.0, 0.0, 0.0), Point3::new(0.0, 1.0, 0.0), Point3::new(0.0, 0.0, 1.0)];
/// let e = enc.encode(center, &neighbors).unwrap();
/// assert!(e.radius > 0.0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PositionEncoder {
    /// Receptive field size `n` (center + `n-1` neighbors).
    receptive_field: usize,
    /// Number of quantization bins `b`.
    bins: u16,
    /// Key layout.
    scheme: KeyScheme,
}

impl PositionEncoder {
    /// Creates an encoder from an [`SrConfig`].
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] when the configuration is invalid or
    /// when the resulting key would not fit in 128 bits.
    pub fn new(config: &SrConfig, scheme: KeyScheme) -> Result<Self> {
        config.validate()?;
        let bits_per_value = bits_for(config.bins);
        let values = match scheme {
            KeyScheme::Full => config.receptive_field * 3,
            KeyScheme::Compact => config.receptive_field,
        };
        if bits_per_value * values > 128 {
            return Err(Error::InvalidConfig(format!(
                "key of {} values x {} bits does not fit in 128 bits",
                values, bits_per_value
            )));
        }
        Ok(Self {
            receptive_field: config.receptive_field,
            bins: config.bins as u16,
            scheme,
        })
    }

    /// Receptive field size `n`.
    pub fn receptive_field(&self) -> usize {
        self.receptive_field
    }

    /// Number of quantization bins `b`.
    pub fn bins(&self) -> u16 {
        self.bins
    }

    /// Key scheme in use.
    pub fn scheme(&self) -> KeyScheme {
        self.scheme
    }

    /// Total number of addressable keys of the packed representation:
    /// `(2^ceil(log2 b))^n` per value (equal to `b^n` / `b^(3n)` when `b` is
    /// a power of two, as in all paper configurations). Saturates at
    /// `u128::MAX`.
    pub fn key_space(&self) -> u128 {
        let values = match self.scheme {
            KeyScheme::Full => self.receptive_field * 3,
            KeyScheme::Compact => self.receptive_field,
        };
        let per_value = 1u128 << bits_for(usize::from(self.bins));
        let mut total: u128 = 1;
        for _ in 0..values {
            total = total.saturating_mul(per_value);
        }
        total
    }

    /// Normalizes the neighborhood relative to the center (Eq. 3): returns
    /// the normalized points (center first) and the neighborhood radius `R`.
    /// All returned coordinates lie inside `[-1, 1]`.
    ///
    /// Normalization multiplies by the reciprocal radius (one `sqrt`, one
    /// divide per neighborhood) — every encode path in this module uses the
    /// exact same arithmetic so packed keys agree bit-for-bit between the
    /// offline distillation and the batched runtime lookups.
    pub fn normalize(&self, center: Point3, neighbors: &[Point3]) -> (Vec<Point3>, f32) {
        let radius = Self::radius_of(center, neighbors);
        let inv_radius = 1.0 / radius;
        let mut out = Vec::with_capacity(neighbors.len() + 1);
        out.push(Point3::ZERO);
        for &p in neighbors {
            out.push((p - center) * inv_radius);
        }
        (out, radius)
    }

    /// Quantizes a normalized value in `[-1, 1]` into a bin index (Eq. 4).
    pub fn quantize_value(&self, v: f32) -> u16 {
        let b = f32::from(self.bins);
        // The scaled operand is non-negative, so the `as u16` truncation IS
        // the floor of Eq. 4 — and unlike `.floor()` it compiles to a single
        // cvttss2si instead of a libm call on baseline x86-64.
        let q = ((v.clamp(-1.0, 1.0) + 1.0) / 2.0 * (b - 1.0)) as u16;
        q.min(self.bins - 1)
    }

    /// Inverse of [`Self::quantize_value`]: the center of bin `q` in `[-1, 1]`.
    pub fn dequantize_value(&self, q: u16) -> f32 {
        let b = f32::from(self.bins);
        (f32::from(q.min(self.bins - 1)) + 0.5) / (b - 1.0) * 2.0 - 1.0
    }

    /// Neighborhood radius `R` (Eq. 3) without allocating: the largest
    /// center-to-neighbor distance, floored at `f32::EPSILON`. One `sqrt`
    /// over the max *squared* distance (`sqrt` is monotone and correctly
    /// rounded, so this equals the max of the individual distances).
    #[inline]
    fn radius_of(center: Point3, neighbors: &[Point3]) -> f32 {
        let max_sq = neighbors
            .iter()
            .map(|p| p.distance_squared(center))
            .fold(0.0f32, f32::max);
        max_sq.sqrt().max(f32::EPSILON)
    }

    /// Normalized receptive-field slot `i` (center first, then neighbors,
    /// padded with the center's zero when the neighborhood is short).
    #[inline]
    fn normalized_slot(
        center: Point3,
        neighbors: &[Point3],
        inv_radius: f32,
        slot: usize,
    ) -> Point3 {
        if slot == 0 {
            Point3::ZERO
        } else {
            match neighbors.get(slot - 1) {
                Some(&p) => (p - center) * inv_radius,
                None => Point3::ZERO,
            }
        }
    }

    /// Allocation-free variant of [`Self::encode`]: returns only the packed
    /// key and the neighborhood radius. This is the hot path of batched LUT
    /// refinement — it must not touch the heap.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] when `neighbors` is empty.
    pub fn encode_key(&self, center: Point3, neighbors: &[Point3]) -> Result<(u128, f32)> {
        if neighbors.is_empty() {
            return Err(Error::InvalidConfig(
                "cannot encode a neighborhood with no neighbors".into(),
            ));
        }
        let radius = Self::radius_of(center, neighbors);
        let inv_radius = 1.0 / radius;
        let bits = bits_for(usize::from(self.bins)) as u32;
        let mut key: u128 = 0;
        for slot in 0..self.receptive_field {
            let p = Self::normalized_slot(center, neighbors, inv_radius, slot);
            match self.scheme {
                KeyScheme::Full => {
                    key = (key << bits) | u128::from(self.quantize_value(p.x));
                    key = (key << bits) | u128::from(self.quantize_value(p.y));
                    key = (key << bits) | u128::from(self.quantize_value(p.z));
                }
                KeyScheme::Compact => {
                    key = (key << bits) | u128::from(self.compact_code(p));
                }
            }
        }
        Ok((key, radius))
    }

    /// Indexed variant of [`Self::encode_key`]: neighbors are given as CSR
    /// row indices into `source`, avoiding even the gather copy. This is
    /// the innermost loop of batched LUT refinement.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] when `row` is empty.
    ///
    /// # Panics
    /// Panics when an index in `row` is out of bounds for `source`.
    pub fn encode_key_indexed(
        &self,
        center: Point3,
        row: &[u32],
        source: &[Point3],
    ) -> Result<(u128, f32)> {
        if row.is_empty() {
            return Err(Error::InvalidConfig(
                "cannot encode a neighborhood with no neighbors".into(),
            ));
        }
        let mut max_sq = 0.0f32;
        for &j in row {
            max_sq = max_sq.max(source[j as usize].distance_squared(center));
        }
        let radius = max_sq.sqrt().max(f32::EPSILON);
        let inv_radius = 1.0 / radius;
        let bits = bits_for(usize::from(self.bins)) as u32;
        let mut key: u128 = 0;
        for slot in 0..self.receptive_field {
            let p = if slot == 0 {
                Point3::ZERO
            } else {
                match row.get(slot - 1) {
                    Some(&j) => (source[j as usize] - center) * inv_radius,
                    None => Point3::ZERO,
                }
            };
            match self.scheme {
                KeyScheme::Full => {
                    // Pack the slot's three values in a u64 word first: one
                    // wide (u128) shift per slot instead of three. u64 holds
                    // any valid slot word (bits <= 16, so 3*bits <= 48) and
                    // the resulting key is bit-identical to [`Self::encode`]'s.
                    let word = (u64::from(self.quantize_value(p.x)) << (2 * bits))
                        | (u64::from(self.quantize_value(p.y)) << bits)
                        | u64::from(self.quantize_value(p.z));
                    key = (key << (3 * bits)) | u128::from(word);
                }
                KeyScheme::Compact => {
                    key = (key << bits) | u128::from(self.compact_code(p));
                }
            }
        }
        Ok((key, radius))
    }

    /// Blocked, SoA-lane variant of [`Self::encode_key_indexed`]: encodes
    /// `centers.len()` consecutive CSR rows (`rows.row(row_base + b)` for
    /// center `b`) in one pass. The gather stage writes every neighbor's
    /// center-relative offset into three coordinate lanes, the squared norms
    /// come from one vector-width [`volut_pointcloud::kernels::
    /// norm_squared_lanes`] sweep (the per-row max of which is the
    /// neighborhood radius), and the pack stage quantizes straight from the
    /// gathered lanes — identical arithmetic to the per-row path, so keys
    /// and radii are bit-identical.
    ///
    /// `radii[b] < 0` marks a row that cannot be encoded (no neighbors);
    /// its key slot is set to 0 and should be ignored.
    ///
    /// # Panics
    /// Panics when `keys`/`radii` lengths differ from `centers.len()`, when
    /// the rows are out of range, or when a row indexes out of `source`.
    #[allow(clippy::too_many_arguments)] // mirrors the (keys, radii) output pair of the per-row API
    pub fn encode_keys_block(
        &self,
        centers: &[Point3],
        rows: NeighborhoodsView<'_>,
        row_base: usize,
        source: &[Point3],
        keys: &mut [u128],
        radii: &mut [f32],
        scratch: &mut EncodeScratch,
    ) {
        assert_eq!(centers.len(), keys.len(), "one key slot per center");
        assert_eq!(centers.len(), radii.len(), "one radius slot per center");
        scratch.dx.clear();
        scratch.dy.clear();
        scratch.dz.clear();
        scratch.seg.clear();
        for (b, &center) in centers.iter().enumerate() {
            for &j in rows.row(row_base + b) {
                let p = source[j as usize];
                scratch.dx.push(p.x - center.x);
                scratch.dy.push(p.y - center.y);
                scratch.dz.push(p.z - center.z);
            }
            scratch.seg.push(scratch.dx.len() as u32);
        }
        scratch.d2.clear();
        scratch.d2.resize(scratch.dx.len(), 0.0);
        volut_pointcloud::kernels::norm_squared_lanes(
            &scratch.dx,
            &scratch.dy,
            &scratch.dz,
            &mut scratch.d2,
        );
        let bits = bits_for(usize::from(self.bins)) as u32;
        let mut start = 0usize;
        for b in 0..centers.len() {
            let end = scratch.seg[b] as usize;
            if start == end {
                keys[b] = 0;
                radii[b] = -1.0;
                continue;
            }
            let max_sq = scratch.d2[start..end].iter().fold(0.0f32, |m, &v| m.max(v));
            let radius = max_sq.sqrt().max(f32::EPSILON);
            let inv_radius = 1.0 / radius;
            let mut key: u128 = 0;
            for slot in 0..self.receptive_field {
                let p = if slot == 0 || start + slot > end {
                    Point3::ZERO
                } else {
                    let i = start + slot - 1;
                    Point3::new(
                        scratch.dx[i] * inv_radius,
                        scratch.dy[i] * inv_radius,
                        scratch.dz[i] * inv_radius,
                    )
                };
                match self.scheme {
                    KeyScheme::Full => {
                        // Same u64 slot-word packing as `encode_key_indexed`.
                        let word = (u64::from(self.quantize_value(p.x)) << (2 * bits))
                            | (u64::from(self.quantize_value(p.y)) << bits)
                            | u64::from(self.quantize_value(p.z));
                        key = (key << (3 * bits)) | u128::from(word);
                    }
                    KeyScheme::Compact => {
                        key = (key << bits) | u128::from(self.compact_code(p));
                    }
                }
            }
            keys[b] = key;
            radii[b] = radius;
            start = end;
        }
    }

    /// Allocation-free variant of [`Self::encode`] + [`Self::features`]:
    /// writes the dequantized feature vector into `features` (cleared and
    /// reused) and returns the neighborhood radius. Used by the batched NN
    /// refinement path.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] when `neighbors` is empty.
    pub fn encode_features_into(
        &self,
        center: Point3,
        neighbors: &[Point3],
        features: &mut Vec<f32>,
    ) -> Result<f32> {
        if neighbors.is_empty() {
            return Err(Error::InvalidConfig(
                "cannot encode a neighborhood with no neighbors".into(),
            ));
        }
        let radius = Self::radius_of(center, neighbors);
        let inv_radius = 1.0 / radius;
        features.clear();
        features.reserve(self.receptive_field * 3);
        for slot in 0..self.receptive_field {
            let p = Self::normalized_slot(center, neighbors, inv_radius, slot);
            features.push(self.dequantize_value(self.quantize_value(p.x)));
            features.push(self.dequantize_value(self.quantize_value(p.y)));
            features.push(self.dequantize_value(self.quantize_value(p.z)));
        }
        Ok(radius)
    }

    /// Encodes a neighborhood into a lookup key.
    ///
    /// The interpolated (center) point occupies the first slot of the
    /// receptive field, as required by the paper ("the interpolated point
    /// will be placed at first in the index"). When fewer than `n - 1`
    /// neighbors are supplied the remaining slots are padded with the
    /// center; extra neighbors are ignored.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] when `neighbors` is empty.
    pub fn encode(&self, center: Point3, neighbors: &[Point3]) -> Result<EncodedNeighborhood> {
        if neighbors.is_empty() {
            return Err(Error::InvalidConfig(
                "cannot encode a neighborhood with no neighbors".into(),
            ));
        }
        let needed = self.receptive_field - 1;
        let (normalized, radius) = self.normalize(center, neighbors);
        // normalized[0] is the center; slots 1..n hold neighbors.
        let mut slots: Vec<Point3> = Vec::with_capacity(self.receptive_field);
        slots.push(normalized[0]);
        for i in 0..needed {
            slots.push(*normalized.get(i + 1).unwrap_or(&Point3::ZERO));
        }

        let mut indices = Vec::with_capacity(self.receptive_field * 3);
        for p in &slots {
            indices.push(self.quantize_value(p.x));
            indices.push(self.quantize_value(p.y));
            indices.push(self.quantize_value(p.z));
        }

        let key = match self.scheme {
            KeyScheme::Full => {
                let bits = bits_for(usize::from(self.bins)) as u32;
                let mut key: u128 = 0;
                for &q in &indices {
                    key = (key << bits) | u128::from(q);
                }
                key
            }
            KeyScheme::Compact => {
                let bits = bits_for(usize::from(self.bins)) as u32;
                let mut key: u128 = 0;
                for p in &slots {
                    key = (key << bits) | u128::from(self.compact_code(*p));
                }
                key
            }
        };

        Ok(EncodedNeighborhood {
            key,
            indices,
            radius,
        })
    }

    /// Dequantized feature vector (length `n × 3`, values in `[-1, 1]`) for a
    /// given encoded neighborhood — the input representation fed to the
    /// refinement network both at training and at distillation time, so that
    /// the network sees exactly what the LUT can index.
    pub fn features(&self, encoded: &EncodedNeighborhood) -> Vec<f32> {
        encoded
            .indices
            .iter()
            .map(|&q| self.dequantize_value(q))
            .collect()
    }

    /// Re-derives the lookup key from a dequantized feature vector (as
    /// returned by [`Self::features`]): values are re-quantized and packed
    /// exactly like [`Self::encode`] would. This is what the LUT builder
    /// uses to key distilled network outputs.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] when the feature length is not
    /// `receptive_field × 3`.
    pub fn key_from_features(&self, features: &[f32]) -> Result<u128> {
        if features.len() != self.receptive_field * 3 {
            return Err(Error::InvalidConfig(format!(
                "feature vector length {} does not match receptive field {} x 3",
                features.len(),
                self.receptive_field
            )));
        }
        let bits = bits_for(usize::from(self.bins)) as u32;
        match self.scheme {
            KeyScheme::Full => {
                let mut key: u128 = 0;
                for &v in features {
                    key = (key << bits) | u128::from(self.quantize_value(v));
                }
                Ok(key)
            }
            KeyScheme::Compact => {
                let mut key: u128 = 0;
                for chunk in features.chunks_exact(3) {
                    let p = Point3::new(chunk[0], chunk[1], chunk[2]);
                    key = (key << bits) | u128::from(self.compact_code(p));
                }
                Ok(key)
            }
        }
    }

    /// Inverse of [`Self::key_from_features`] for the [`KeyScheme::Full`]
    /// layout: unpacks a key into the dequantized feature vector at the bin
    /// centers. Used to enumerate small dense LUTs exhaustively.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] when called on a compact-scheme
    /// encoder (the compact code is lossy and cannot be inverted).
    pub fn features_from_key(&self, key: u128) -> Result<Vec<f32>> {
        if self.scheme != KeyScheme::Full {
            return Err(Error::InvalidConfig(
                "features_from_key is only defined for the full key scheme".into(),
            ));
        }
        let bits = bits_for(usize::from(self.bins)) as u32;
        let values = self.receptive_field * 3;
        let mask = (1u128 << bits) - 1;
        let mut out = vec![0.0f32; values];
        let mut k = key;
        for i in (0..values).rev() {
            let q = (k & mask) as u16;
            out[i] = self.dequantize_value(q.min(self.bins - 1));
            k >>= bits;
        }
        Ok(out)
    }

    /// Per-point compact code: 3 octant bits plus the remaining bits encode
    /// the quantized radial distance from the center.
    fn compact_code(&self, p: Point3) -> u16 {
        let bits = bits_for(usize::from(self.bins)) as u32;
        let octant =
            (u16::from(p.x >= 0.0) << 2) | (u16::from(p.y >= 0.0) << 1) | u16::from(p.z >= 0.0);
        if bits <= 3 {
            return octant & ((1 << bits) - 1);
        }
        let radial_bits = bits - 3;
        let radial_levels = (1u16 << radial_bits) - 1;
        // Radial distance in normalized space is in [0, sqrt(3)]; for surface
        // neighborhoods it is almost always <= 1.
        let r = (p.norm() / 3.0f32.sqrt()).clamp(0.0, 1.0);
        let radial = ((r * f32::from(radial_levels)).round() as u16).min(radial_levels);
        (octant << radial_bits) | radial
    }
}

/// Number of bits needed to represent values in `0..bins`.
fn bits_for(bins: usize) -> usize {
    (usize::BITS - (bins - 1).leading_zeros()) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn encoder(scheme: KeyScheme) -> PositionEncoder {
        PositionEncoder::new(&SrConfig::default(), scheme).unwrap()
    }

    #[test]
    fn bits_for_is_correct() {
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(64), 6);
        assert_eq!(bits_for(128), 7);
        assert_eq!(bits_for(100), 7);
    }

    #[test]
    fn normalization_puts_points_in_unit_cube() {
        let enc = encoder(KeyScheme::Full);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let center = Point3::new(
                rng.random_range(-10.0..10.0),
                rng.random_range(-10.0..10.0),
                rng.random_range(-10.0..10.0),
            );
            let neighbors: Vec<Point3> = (0..3)
                .map(|_| {
                    center
                        + Point3::new(
                            rng.random_range(-0.5..0.5),
                            rng.random_range(-0.5..0.5),
                            rng.random_range(-0.5..0.5),
                        )
                })
                .collect();
            let (norm, radius) = enc.normalize(center, &neighbors);
            assert!(radius > 0.0);
            for p in norm {
                assert!(p.x.abs() <= 1.0 + 1e-5);
                assert!(p.y.abs() <= 1.0 + 1e-5);
                assert!(p.z.abs() <= 1.0 + 1e-5);
            }
        }
    }

    #[test]
    fn quantization_roundtrip_stays_in_bin() {
        let enc = encoder(KeyScheme::Full);
        for q in [0u16, 1, 50, 126, 127] {
            let v = enc.dequantize_value(q);
            assert_eq!(enc.quantize_value(v), q);
        }
        assert_eq!(enc.quantize_value(-1.0), 0);
        assert_eq!(enc.quantize_value(1.0), 127);
        assert_eq!(enc.quantize_value(5.0), 127);
        assert_eq!(enc.quantize_value(-5.0), 0);
    }

    #[test]
    fn key_space_matches_paper_formulas() {
        let full = encoder(KeyScheme::Full);
        assert_eq!(full.key_space(), 128u128.pow(12));
        let compact = encoder(KeyScheme::Compact);
        assert_eq!(compact.key_space(), 128u128.pow(4));
    }

    #[test]
    fn rejects_configs_whose_keys_overflow() {
        // Full scheme with n = 8, b = 65536 would need 8*3*16 = 384 bits.
        let cfg = SrConfig {
            receptive_field: 8,
            bins: 65_536,
            ..SrConfig::default()
        };
        assert!(PositionEncoder::new(&cfg, KeyScheme::Full).is_err());
        // Compact scheme with the same config fits (8 * 16 = 128 bits).
        assert!(PositionEncoder::new(&cfg, KeyScheme::Compact).is_ok());
    }

    #[test]
    fn encode_is_deterministic_and_translation_invariant() {
        let enc = encoder(KeyScheme::Full);
        let center = Point3::new(1.0, 2.0, 3.0);
        let neighbors = vec![
            Point3::new(1.5, 2.0, 3.0),
            Point3::new(1.0, 2.5, 3.0),
            Point3::new(1.0, 2.0, 3.5),
        ];
        let a = enc.encode(center, &neighbors).unwrap();
        let b = enc.encode(center, &neighbors).unwrap();
        assert_eq!(a, b);
        // Translate everything: the key must not change (encoding is relative).
        let offset = Point3::new(-7.0, 4.0, 11.0);
        let moved: Vec<Point3> = neighbors.iter().map(|&p| p + offset).collect();
        let c = enc.encode(center + offset, &moved).unwrap();
        assert_eq!(a.key, c.key);
    }

    #[test]
    fn encode_scale_invariant_key_but_radius_tracks_scale() {
        let enc = encoder(KeyScheme::Full);
        let center = Point3::ZERO;
        let neighbors = vec![
            Point3::new(0.1, 0.0, 0.0),
            Point3::new(0.0, 0.1, 0.0),
            Point3::new(0.0, 0.0, 0.1),
        ];
        let small = enc.encode(center, &neighbors).unwrap();
        let scaled: Vec<Point3> = neighbors.iter().map(|&p| p * 10.0).collect();
        let big = enc.encode(center, &scaled).unwrap();
        assert_eq!(small.key, big.key);
        assert!((big.radius / small.radius - 10.0).abs() < 1e-4);
    }

    #[test]
    fn encode_pads_and_truncates_neighbors() {
        let enc = encoder(KeyScheme::Full);
        let center = Point3::ZERO;
        let one = enc.encode(center, &[Point3::new(1.0, 0.0, 0.0)]).unwrap();
        assert_eq!(one.indices.len(), 4 * 3);
        let many: Vec<Point3> = (0..10)
            .map(|i| Point3::new(i as f32 + 1.0, 0.0, 0.0))
            .collect();
        let truncated = enc.encode(center, &many).unwrap();
        assert_eq!(truncated.indices.len(), 4 * 3);
        assert!(enc.encode(center, &[]).is_err());
    }

    #[test]
    fn features_have_expected_length_and_range() {
        let enc = encoder(KeyScheme::Full);
        let e = enc
            .encode(
                Point3::ZERO,
                &[Point3::new(0.5, -0.25, 1.0), Point3::new(-1.0, 0.0, 0.3)],
            )
            .unwrap();
        let f = enc.features(&e);
        assert_eq!(f.len(), 12);
        assert!(f.iter().all(|v| v.abs() <= 1.0 + 1e-5));
    }

    #[test]
    fn alloc_free_paths_match_encode() {
        let mut rng = StdRng::seed_from_u64(5);
        for scheme in [KeyScheme::Full, KeyScheme::Compact] {
            let enc = encoder(scheme);
            let mut features = Vec::new();
            for neighbors_len in 1..6 {
                let center = Point3::new(
                    rng.random_range(-5.0f32..5.0),
                    rng.random_range(-5.0f32..5.0),
                    rng.random_range(-5.0f32..5.0),
                );
                let neighbors: Vec<Point3> = (0..neighbors_len)
                    .map(|_| {
                        center
                            + Point3::new(
                                rng.random_range(-0.4f32..0.4),
                                rng.random_range(-0.4f32..0.4),
                                rng.random_range(-0.4f32..0.4),
                            )
                    })
                    .collect();
                let reference = enc.encode(center, &neighbors).unwrap();
                let (key, radius) = enc.encode_key(center, &neighbors).unwrap();
                assert_eq!(key, reference.key);
                assert_eq!(radius, reference.radius);
                // Indexed path over an identity row must agree exactly.
                let row: Vec<u32> = (0..neighbors.len() as u32).collect();
                let (ikey, iradius) = enc.encode_key_indexed(center, &row, &neighbors).unwrap();
                assert_eq!(ikey, reference.key);
                assert_eq!(iradius, reference.radius);
                // Wide-bin configs exercise slot words beyond 32 bits (the
                // key would silently truncate if packed in u32).
                let wide = SrConfig {
                    receptive_field: 2,
                    bins: 4096,
                    ..SrConfig::default()
                };
                let wide_enc = PositionEncoder::new(&wide, scheme).unwrap();
                let wide_ref = wide_enc.encode(center, &neighbors).unwrap();
                let (wk, _) = wide_enc.encode_key(center, &neighbors).unwrap();
                let (wik, _) = wide_enc
                    .encode_key_indexed(center, &row, &neighbors)
                    .unwrap();
                assert_eq!(wk, wide_ref.key, "wide-bin encode_key diverged");
                assert_eq!(wik, wide_ref.key, "wide-bin encode_key_indexed diverged");
                let r2 = enc
                    .encode_features_into(center, &neighbors, &mut features)
                    .unwrap();
                assert_eq!(r2, reference.radius);
                assert_eq!(features, enc.features(&reference));
            }
            assert!(enc.encode_key(Point3::ZERO, &[]).is_err());
            assert!(enc
                .encode_features_into(Point3::ZERO, &[], &mut features)
                .is_err());
        }
    }

    /// The blocked SoA-lane encoder must agree bit-for-bit with the per-row
    /// indexed path — the parity the batched LUT refiner depends on.
    #[test]
    fn encode_keys_block_matches_indexed_path() {
        use volut_pointcloud::Neighborhoods;
        let mut rng = StdRng::seed_from_u64(77);
        let source: Vec<Point3> = (0..50)
            .map(|_| {
                Point3::new(
                    rng.random_range(-2.0f32..2.0),
                    rng.random_range(-2.0f32..2.0),
                    rng.random_range(-2.0f32..2.0),
                )
            })
            .collect();
        let centers: Vec<Point3> = (0..70)
            .map(|_| {
                Point3::new(
                    rng.random_range(-2.0f32..2.0),
                    rng.random_range(-2.0f32..2.0),
                    rng.random_range(-2.0f32..2.0),
                )
            })
            .collect();
        let mut hoods = Neighborhoods::new();
        for i in 0..centers.len() {
            // Rows of 0..=6 neighbors, including empty ones.
            let len = i % 7;
            hoods.push_row((0..len).map(|k| (i * 3 + k) % source.len()));
        }
        for scheme in [KeyScheme::Full, KeyScheme::Compact] {
            let enc = encoder(scheme);
            let mut keys = vec![0u128; centers.len()];
            let mut radii = vec![0.0f32; centers.len()];
            let mut scratch = EncodeScratch::default();
            // Encode in two blocks to exercise a non-zero row_base.
            let split = 33;
            enc.encode_keys_block(
                &centers[..split],
                hoods.view(),
                0,
                &source,
                &mut keys[..split],
                &mut radii[..split],
                &mut scratch,
            );
            enc.encode_keys_block(
                &centers[split..],
                hoods.view(),
                split,
                &source,
                &mut keys[split..],
                &mut radii[split..],
                &mut scratch,
            );
            for (i, &center) in centers.iter().enumerate() {
                match enc.encode_key_indexed(center, hoods.row(i), &source) {
                    Ok((key, radius)) => {
                        assert_eq!(keys[i], key, "{scheme:?} row {i}");
                        assert_eq!(radii[i], radius, "{scheme:?} row {i}");
                    }
                    Err(_) => assert!(radii[i] < 0.0, "{scheme:?} row {i} should be marked"),
                }
            }
        }
    }

    #[test]
    fn compact_scheme_produces_distinct_keys_for_distinct_shapes() {
        let enc = encoder(KeyScheme::Compact);
        let a = enc
            .encode(
                Point3::ZERO,
                &[
                    Point3::new(1.0, 0.0, 0.0),
                    Point3::new(0.0, 1.0, 0.0),
                    Point3::new(0.0, 0.0, 1.0),
                ],
            )
            .unwrap();
        let b = enc
            .encode(
                Point3::ZERO,
                &[
                    Point3::new(-1.0, 0.0, 0.0),
                    Point3::new(0.0, -1.0, 0.0),
                    Point3::new(0.0, 0.0, -1.0),
                ],
            )
            .unwrap();
        assert_ne!(a.key, b.key);
        assert!(a.key < enc.key_space());
        assert!(b.key < enc.key_space());
    }
}

//! Stage two of the VoLUT pipeline: per-point refinement.
//!
//! A [`Refiner`] takes an interpolated point plus its neighborhood and moves
//! the point onto (an estimate of) the true surface. Three implementations
//! are provided:
//! * [`LutRefiner`] — VoLUT's contribution: a table lookup keyed by the
//!   quantized neighborhood (§4.2);
//! * [`NnRefiner`] — runs the refinement network directly (the GradPU-style
//!   path the LUT replaces);
//! * [`IdentityRefiner`] — no refinement; isolates the interpolation stage
//!   in ablations.

use crate::encoding::{KeyScheme, PositionEncoder};
use crate::lut::{LookupStats, Lut};
use crate::nn::mlp::Mlp;
use crate::Result;
use parking_lot::Mutex;
use volut_pointcloud::Point3;

/// Per-point cost description used by the device cost models and the
/// runtime-breakdown experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefinerCost {
    /// Table lookups performed per refined point.
    pub lut_lookups_per_point: u64,
    /// Multiply-accumulate operations per refined point.
    pub nn_flops_per_point: u64,
}

/// A per-point refinement function.
pub trait Refiner: Send + Sync {
    /// Short human-readable name used in reports.
    fn name(&self) -> &str;

    /// Returns the refined position of `center` given its neighborhood
    /// (original low-resolution points, closest first).
    fn refine(&self, center: Point3, neighbors: &[Point3]) -> Point3;

    /// Per-point cost description.
    fn cost(&self) -> RefinerCost;

    /// Resident memory required by the refiner (model weights or LUT), in
    /// bytes. This is the quantity compared in Figure 15.
    fn memory_bytes(&self) -> usize;

    /// Lookup statistics, when the refiner is table-based.
    fn lookup_stats(&self) -> Option<LookupStats> {
        None
    }
}

/// No-op refiner: returns the interpolated position unchanged.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityRefiner;

impl Refiner for IdentityRefiner {
    fn name(&self) -> &str {
        "identity"
    }

    fn refine(&self, center: Point3, _neighbors: &[Point3]) -> Point3 {
        center
    }

    fn cost(&self) -> RefinerCost {
        RefinerCost::default()
    }

    fn memory_bytes(&self) -> usize {
        0
    }
}

/// LUT-based refiner (the paper's contribution).
pub struct LutRefiner {
    encoder: PositionEncoder,
    lut: Box<dyn Lut>,
    stats: Mutex<LookupStats>,
}

impl std::fmt::Debug for LutRefiner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LutRefiner")
            .field("encoder", &self.encoder)
            .field("populated", &self.lut.populated())
            .field("backend", &self.lut.backend_name())
            .finish()
    }
}

impl LutRefiner {
    /// Creates a refiner from a position encoder and a populated LUT.
    pub fn new(encoder: PositionEncoder, lut: Box<dyn Lut>) -> Self {
        Self { encoder, lut, stats: Mutex::new(LookupStats::default()) }
    }

    /// Convenience constructor from an [`crate::SrConfig`], key scheme and LUT.
    ///
    /// # Errors
    /// Returns an error when the configuration is invalid.
    pub fn from_config(
        config: &crate::SrConfig,
        scheme: KeyScheme,
        lut: Box<dyn Lut>,
    ) -> Result<Self> {
        Ok(Self::new(PositionEncoder::new(config, scheme)?, lut))
    }

    /// The underlying LUT.
    pub fn lut(&self) -> &dyn Lut {
        self.lut.as_ref()
    }
}

impl Refiner for LutRefiner {
    fn name(&self) -> &str {
        "volut-lut"
    }

    fn refine(&self, center: Point3, neighbors: &[Point3]) -> Point3 {
        if neighbors.is_empty() {
            return center;
        }
        let Ok(encoded) = self.encoder.encode(center, neighbors) else {
            return center;
        };
        match self.lut.get(encoded.key) {
            Some(offset) => {
                self.stats.lock().hits += 1;
                center
                    + Point3::new(offset[0], offset[1], offset[2]) * encoded.radius
            }
            None => {
                self.stats.lock().misses += 1;
                center
            }
        }
    }

    fn cost(&self) -> RefinerCost {
        RefinerCost { lut_lookups_per_point: 1, nn_flops_per_point: 0 }
    }

    fn memory_bytes(&self) -> usize {
        self.lut.memory_bytes()
    }

    fn lookup_stats(&self) -> Option<LookupStats> {
        Some(*self.stats.lock())
    }
}

/// Neural refiner: runs the refinement MLP directly for every point.
#[derive(Debug, Clone)]
pub struct NnRefiner {
    encoder: PositionEncoder,
    mlp: Mlp,
}

impl NnRefiner {
    /// Creates a refiner that evaluates `mlp` per point.
    pub fn new(encoder: PositionEncoder, mlp: Mlp) -> Self {
        Self { encoder, mlp }
    }

    /// Convenience constructor from an [`crate::SrConfig`] and key scheme.
    ///
    /// # Errors
    /// Returns an error when the configuration is invalid.
    pub fn from_config(config: &crate::SrConfig, scheme: KeyScheme, mlp: Mlp) -> Result<Self> {
        Ok(Self::new(PositionEncoder::new(config, scheme)?, mlp))
    }

    /// The wrapped network.
    pub fn network(&self) -> &Mlp {
        &self.mlp
    }
}

impl Refiner for NnRefiner {
    fn name(&self) -> &str {
        "nn-refiner"
    }

    fn refine(&self, center: Point3, neighbors: &[Point3]) -> Point3 {
        if neighbors.is_empty() {
            return center;
        }
        let Ok(encoded) = self.encoder.encode(center, neighbors) else {
            return center;
        };
        let features = self.encoder.features(&encoded);
        let out = self.mlp.forward(&features);
        center + Point3::new(out[0], out[1], out[2]) * encoded.radius
    }

    fn cost(&self) -> RefinerCost {
        RefinerCost { lut_lookups_per_point: 0, nn_flops_per_point: self.mlp.flops_per_inference() }
    }

    fn memory_bytes(&self) -> usize {
        // f32 weights resident in memory.
        self.mlp.parameter_count() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lut::sparse::SparseLut;
    use crate::SrConfig;

    fn encoder() -> PositionEncoder {
        PositionEncoder::new(&SrConfig::default(), KeyScheme::Full).unwrap()
    }

    fn neighborhood() -> (Point3, Vec<Point3>) {
        (
            Point3::new(0.0, 0.0, 0.0),
            vec![
                Point3::new(0.2, 0.0, 0.0),
                Point3::new(0.0, 0.2, 0.0),
                Point3::new(0.0, 0.0, 0.2),
            ],
        )
    }

    #[test]
    fn identity_refiner_is_a_noop() {
        let (c, n) = neighborhood();
        assert_eq!(IdentityRefiner.refine(c, &n), c);
        assert_eq!(IdentityRefiner.memory_bytes(), 0);
        assert_eq!(IdentityRefiner.cost(), RefinerCost::default());
        assert!(IdentityRefiner.lookup_stats().is_none());
    }

    #[test]
    fn lut_refiner_applies_stored_offset() {
        let (c, n) = neighborhood();
        let enc = encoder();
        let key = enc.encode(c, &n).unwrap().key;
        let radius = enc.encode(c, &n).unwrap().radius;
        let mut lut = SparseLut::new();
        lut.set(key, [0.5, 0.0, 0.0]).unwrap();
        let refiner = LutRefiner::new(enc, Box::new(lut));
        let refined = refiner.refine(c, &n);
        assert!((refined.x - 0.5 * radius).abs() < 1e-3);
        let stats = refiner.lookup_stats().unwrap();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 0);
    }

    #[test]
    fn lut_refiner_miss_returns_center_and_counts() {
        let (c, n) = neighborhood();
        let refiner = LutRefiner::new(encoder(), Box::new(SparseLut::new()));
        assert_eq!(refiner.refine(c, &n), c);
        assert_eq!(refiner.refine(c, &[]), c);
        let stats = refiner.lookup_stats().unwrap();
        assert_eq!(stats.misses, 1);
        assert_eq!(refiner.cost().lut_lookups_per_point, 1);
    }

    #[test]
    fn nn_refiner_moves_points_and_reports_cost() {
        let (c, n) = neighborhood();
        let mlp = Mlp::new(&[12, 16, 3], 5);
        let refiner = NnRefiner::new(encoder(), mlp);
        let refined = refiner.refine(c, &n);
        // A randomly initialized network almost surely produces a non-zero offset.
        assert_ne!(refined, c);
        assert_eq!(refiner.refine(c, &[]), c);
        assert!(refiner.cost().nn_flops_per_point > 0);
        assert!(refiner.memory_bytes() > 0);
    }

    #[test]
    fn refiners_are_object_safe_and_sync() {
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn Refiner>();
        let boxed: Vec<Box<dyn Refiner>> = vec![
            Box::new(IdentityRefiner),
            Box::new(LutRefiner::new(encoder(), Box::new(SparseLut::new()))),
        ];
        assert_eq!(boxed.len(), 2);
    }
}

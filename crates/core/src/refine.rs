//! Stage two of the VoLUT pipeline: refinement.
//!
//! A [`Refiner`] moves interpolated points onto (an estimate of) the true
//! surface. The trait is **batch-first**: the primary entry point
//! [`Refiner::refine_batch`] processes a whole slice of generated points
//! against a flat CSR [`NeighborhoodsView`], so implementations gather
//! neighbor positions into reusable buffers instead of allocating a
//! `Vec<Point3>` per point, and statistics are accumulated once per batch
//! instead of behind a per-point lock. The per-point [`Refiner::refine`]
//! survives as a convenience shim implemented in terms of the batch path.
//!
//! Three implementations are provided:
//! * [`LutRefiner`] — VoLUT's contribution: a table lookup keyed by the
//!   quantized neighborhood (§4.2);
//! * [`NnRefiner`] — runs the refinement network directly (the GradPU-style
//!   path the LUT replaces);
//! * [`IdentityRefiner`] — no refinement; isolates the interpolation stage
//!   in ablations.
//!
//! [`refine_in_place`] is the shared driver used by [`crate::SrPipeline`]
//! and both baselines: it splits the generated tail of a cloud into chunks,
//! fans the chunks out across threads (with the `parallel` feature), and
//! runs `refine_batch` on zero-copy row windows.

use crate::encoding::{KeyScheme, PositionEncoder};
use crate::lut::{LookupStats, Lut};
use crate::nn::mlp::Mlp;
use crate::Result;
use std::sync::atomic::{AtomicU64, Ordering};
use volut_pointcloud::{par, Neighborhoods, NeighborhoodsView, Point3, PointCloud};

/// Per-point cost description used by the device cost models and the
/// runtime-breakdown experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefinerCost {
    /// Table lookups performed per refined point.
    pub lut_lookups_per_point: u64,
    /// Multiply-accumulate operations per refined point.
    pub nn_flops_per_point: u64,
}

/// A refinement function over batches of generated points.
pub trait Refiner: Send + Sync {
    /// Short human-readable name used in reports.
    fn name(&self) -> &str;

    /// Refines `centers[i]` given neighborhood row `i` (indices into
    /// `source`, closest first) and writes the result to `out[i]`. Rows may
    /// be empty, in which case the center passes through unchanged.
    ///
    /// Implementations must not allocate per point: gather and feature
    /// buffers are amortized per batch call, which is what makes the
    /// pipeline's refinement stage allocation-free per generated point.
    ///
    /// # Panics
    /// Implementations may panic when `centers`, `neighborhoods` and `out`
    /// disagree in length.
    fn refine_batch(
        &self,
        centers: &[Point3],
        neighborhoods: NeighborhoodsView<'_>,
        source: &[Point3],
        out: &mut [Point3],
    );

    /// Per-point convenience shim over [`Self::refine_batch`]: refines one
    /// center whose neighborhood is given directly as positions.
    fn refine(&self, center: Point3, neighbors: &[Point3]) -> Point3 {
        let indices: Vec<u32> = (0..neighbors.len() as u32).collect();
        let offsets = [0u32, neighbors.len() as u32];
        let view = NeighborhoodsView::from_raw(&indices, &offsets);
        let mut out = [center];
        self.refine_batch(&[center], view, neighbors, &mut out);
        out[0]
    }

    /// Per-point cost description.
    fn cost(&self) -> RefinerCost;

    /// Resident memory required by the refiner (model weights or LUT), in
    /// bytes. This is the quantity compared in Figure 15.
    fn memory_bytes(&self) -> usize;

    /// Lookup statistics, when the refiner is table-based.
    fn lookup_stats(&self) -> Option<LookupStats> {
        None
    }
}

/// Refines the generated tail of `cloud` (points `original_len..`) in place
/// using `refiner`, reading neighbor positions from `source`.
///
/// `centers_scratch` receives a copy of the pre-refinement tail so the
/// batch kernel can read stable centers while writing results; reusing the
/// same buffer across frames (see `FrameScratch` in the pipeline) means
/// steady-state refinement performs no per-frame allocation either. Chunks
/// of the tail are processed in parallel when the `parallel` feature is on.
///
/// # Panics
/// Panics when `neighborhoods.len()` differs from the generated tail length.
pub fn refine_in_place(
    refiner: &dyn Refiner,
    cloud: &mut PointCloud,
    original_len: usize,
    neighborhoods: &Neighborhoods,
    source: &[Point3],
    centers_scratch: &mut Vec<Point3>,
) {
    let positions = cloud.positions_mut();
    let tail = &mut positions[original_len..];
    assert_eq!(
        neighborhoods.len(),
        tail.len(),
        "one neighborhood row per generated point"
    );
    if tail.is_empty() {
        return;
    }
    centers_scratch.clear();
    centers_scratch.extend_from_slice(tail);
    let centers: &[Point3] = centers_scratch;
    let view = neighborhoods.view();

    let workers = par::worker_count(tail.len(), 4_096);
    let chunk = tail.len().div_ceil(workers).max(1);
    par::for_each_chunk_mut(tail, chunk, |_, start, out_chunk| {
        let end = start + out_chunk.len();
        refiner.refine_batch(
            &centers[start..end],
            view.slice_rows(start, end),
            source,
            out_chunk,
        );
    });
}

/// [`refine_in_place`] restricted to a subset of generated-point ordinals.
///
/// Only tail points `original_len + ordinals[i]` are refined — every other
/// tail position is left untouched (the temporal layer has already copied
/// those forward from the previous frame's refined output). The subset is
/// compacted into `subset_hoods` / `centers_scratch`, refined as one dense
/// batch, and scattered back, so a frame's refinement cost is proportional
/// to its churn rather than its size. Because every refiner's batch kernel
/// is row-independent (and batching is bit-identical to the per-point
/// path), the refined subset matches what a full [`refine_in_place`] pass
/// would have produced for those rows, bit for bit.
///
/// All three scratch buffers are caller-owned and reused across frames
/// (see `FrameScratch`), keeping the steady state allocation-free.
///
/// # Panics
/// Panics when `neighborhoods.len()` differs from the generated tail length
/// or an ordinal is out of range.
#[allow(clippy::too_many_arguments)]
pub fn refine_rows_in_place(
    refiner: &dyn Refiner,
    cloud: &mut PointCloud,
    original_len: usize,
    neighborhoods: &Neighborhoods,
    source: &[Point3],
    ordinals: &[u32],
    centers_scratch: &mut Vec<Point3>,
    subset_hoods: &mut Neighborhoods,
    subset_out: &mut Vec<Point3>,
) {
    let positions = cloud.positions_mut();
    let tail = &mut positions[original_len..];
    assert_eq!(
        neighborhoods.len(),
        tail.len(),
        "one neighborhood row per generated point"
    );
    if ordinals.is_empty() {
        return;
    }
    centers_scratch.clear();
    centers_scratch.reserve(ordinals.len());
    subset_hoods.clear();
    subset_hoods.reserve_rows(ordinals.len(), 0);
    for &ord in ordinals {
        let i = ord as usize;
        centers_scratch.push(tail[i]);
        subset_hoods.push_row_u32(neighborhoods.row(i));
    }
    let centers: &[Point3] = centers_scratch;
    let view = subset_hoods.view();
    subset_out.clear();
    subset_out.resize(ordinals.len(), Point3::ZERO);

    let workers = par::worker_count(ordinals.len(), 4_096);
    let chunk = ordinals.len().div_ceil(workers).max(1);
    par::for_each_chunk_mut(subset_out.as_mut_slice(), chunk, |_, start, out_chunk| {
        let end = start + out_chunk.len();
        refiner.refine_batch(
            &centers[start..end],
            view.slice_rows(start, end),
            source,
            out_chunk,
        );
    });
    for (slot, &ord) in ordinals.iter().enumerate() {
        tail[ord as usize] = subset_out[slot];
    }
}

/// No-op refiner: returns the interpolated position unchanged.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityRefiner;

impl Refiner for IdentityRefiner {
    fn name(&self) -> &str {
        "identity"
    }

    fn refine_batch(
        &self,
        centers: &[Point3],
        _neighborhoods: NeighborhoodsView<'_>,
        _source: &[Point3],
        out: &mut [Point3],
    ) {
        out.copy_from_slice(centers);
    }

    fn cost(&self) -> RefinerCost {
        RefinerCost::default()
    }

    fn memory_bytes(&self) -> usize {
        0
    }
}

/// Lock-free hit/miss counters shared across refinement workers.
#[derive(Debug, Default)]
struct AtomicLookupStats {
    hits: AtomicU64,
    misses: AtomicU64,
}

impl AtomicLookupStats {
    fn add(&self, hits: u64, misses: u64) {
        if hits > 0 {
            self.hits.fetch_add(hits, Ordering::Relaxed);
        }
        if misses > 0 {
            self.misses.fetch_add(misses, Ordering::Relaxed);
        }
    }

    fn snapshot(&self) -> LookupStats {
        LookupStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

/// LUT-based refiner (the paper's contribution).
pub struct LutRefiner {
    encoder: PositionEncoder,
    lut: Box<dyn Lut>,
    stats: AtomicLookupStats,
}

impl std::fmt::Debug for LutRefiner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LutRefiner")
            .field("encoder", &self.encoder)
            .field("populated", &self.lut.populated())
            .field("backend", &self.lut.backend_name())
            .finish()
    }
}

impl LutRefiner {
    /// Creates a refiner from a position encoder and a populated LUT.
    pub fn new(encoder: PositionEncoder, lut: Box<dyn Lut>) -> Self {
        Self {
            encoder,
            lut,
            stats: AtomicLookupStats::default(),
        }
    }

    /// Convenience constructor from an [`crate::SrConfig`], key scheme and LUT.
    ///
    /// # Errors
    /// Returns an error when the configuration is invalid.
    pub fn from_config(
        config: &crate::SrConfig,
        scheme: KeyScheme,
        lut: Box<dyn Lut>,
    ) -> Result<Self> {
        Ok(Self::new(PositionEncoder::new(config, scheme)?, lut))
    }

    /// The underlying LUT.
    pub fn lut(&self) -> &dyn Lut {
        self.lut.as_ref()
    }
}

impl Refiner for LutRefiner {
    fn name(&self) -> &str {
        "volut-lut"
    }

    fn refine_batch(
        &self,
        centers: &[Point3],
        neighborhoods: NeighborhoodsView<'_>,
        source: &[Point3],
        out: &mut [Point3],
    ) {
        debug_assert_eq!(centers.len(), neighborhoods.len());
        debug_assert_eq!(centers.len(), out.len());
        // Block-structured: the SoA-lane encoder turns a block of CSR rows
        // into keys and radii in one vectorized pass (gather → lane-wide
        // squared norms → quantize), every probe target is prefetched, then
        // one `get_batch` resolves the block before the offsets are applied.
        const BLOCK: usize = 64;
        let mut keys = [0u128; BLOCK];
        // radius < 0 marks rows that skip refinement (empty / unencodable).
        let mut radii = [-1.0f32; BLOCK];
        let mut results: [Option<crate::lut::Offset>; BLOCK] = [None; BLOCK];
        let mut encode_scratch = crate::encoding::EncodeScratch::default();
        let (mut hits, mut misses) = (0u64, 0u64);
        for block_start in (0..centers.len()).step_by(BLOCK) {
            let block_len = BLOCK.min(centers.len() - block_start);
            self.encoder.encode_keys_block(
                &centers[block_start..block_start + block_len],
                neighborhoods,
                block_start,
                source,
                &mut keys[..block_len],
                &mut radii[..block_len],
                &mut encode_scratch,
            );
            // Start pulling every probe target in before the batch probe.
            for b in 0..block_len {
                if radii[b] >= 0.0 {
                    self.lut.prefetch(keys[b]);
                }
            }
            self.lut
                .get_batch(&keys[..block_len], &mut results[..block_len]);
            for b in 0..block_len {
                let i = block_start + b;
                let center = centers[i];
                if radii[b] < 0.0 {
                    out[i] = center;
                    continue;
                }
                match results[b] {
                    Some(offset) => {
                        hits += 1;
                        out[i] = center + Point3::new(offset[0], offset[1], offset[2]) * radii[b];
                    }
                    None => {
                        misses += 1;
                        out[i] = center;
                    }
                }
            }
        }
        self.stats.add(hits, misses);
    }

    fn cost(&self) -> RefinerCost {
        RefinerCost {
            lut_lookups_per_point: 1,
            nn_flops_per_point: 0,
        }
    }

    fn memory_bytes(&self) -> usize {
        self.lut.memory_bytes()
    }

    fn lookup_stats(&self) -> Option<LookupStats> {
        Some(self.stats.snapshot())
    }
}

/// Neural refiner: runs the refinement MLP directly for every point.
#[derive(Debug, Clone)]
pub struct NnRefiner {
    encoder: PositionEncoder,
    mlp: Mlp,
}

impl NnRefiner {
    /// Creates a refiner that evaluates `mlp` per point.
    pub fn new(encoder: PositionEncoder, mlp: Mlp) -> Self {
        Self { encoder, mlp }
    }

    /// Convenience constructor from an [`crate::SrConfig`] and key scheme.
    ///
    /// # Errors
    /// Returns an error when the configuration is invalid.
    pub fn from_config(config: &crate::SrConfig, scheme: KeyScheme, mlp: Mlp) -> Result<Self> {
        Ok(Self::new(PositionEncoder::new(config, scheme)?, mlp))
    }

    /// The wrapped network.
    pub fn network(&self) -> &Mlp {
        &self.mlp
    }
}

impl Refiner for NnRefiner {
    fn name(&self) -> &str {
        "nn-refiner"
    }

    fn refine_batch(
        &self,
        centers: &[Point3],
        neighborhoods: NeighborhoodsView<'_>,
        source: &[Point3],
        out: &mut [Point3],
    ) {
        debug_assert_eq!(centers.len(), neighborhoods.len());
        debug_assert_eq!(centers.len(), out.len());
        // Feature rows are packed per block and pushed through the GEMM-style
        // micro-batched forward; `forward_batch_into` is bit-identical to the
        // per-point pass, so batching is invisible in the output.
        const BLOCK: usize = 4 * crate::nn::mlp::MICRO_BATCH;
        let out_dim = self.mlp.output_dim();
        let mut gather: Vec<Point3> = Vec::new();
        let mut feature_row: Vec<f32> = Vec::new();
        let mut features: Vec<f32> = Vec::new();
        let mut packed: Vec<(usize, f32)> = Vec::new();
        let mut outputs: Vec<f32> = Vec::new();
        let mut scratch = crate::nn::mlp::BatchScratch::default();
        for block_start in (0..centers.len()).step_by(BLOCK) {
            let block_len = BLOCK.min(centers.len() - block_start);
            features.clear();
            packed.clear();
            for i in block_start..block_start + block_len {
                let center = centers[i];
                let row = neighborhoods.row(i);
                if row.is_empty() {
                    out[i] = center;
                    continue;
                }
                gather.clear();
                gather.extend(row.iter().map(|&j| source[j as usize]));
                match self
                    .encoder
                    .encode_features_into(center, &gather, &mut feature_row)
                {
                    Ok(radius) => {
                        features.extend_from_slice(&feature_row);
                        packed.push((i, radius));
                    }
                    Err(_) => out[i] = center,
                }
            }
            if packed.is_empty() {
                continue;
            }
            self.mlp
                .forward_batch_into(&features, packed.len(), &mut outputs, &mut scratch);
            for (slot, &(i, radius)) in packed.iter().enumerate() {
                let o = &outputs[slot * out_dim..(slot + 1) * out_dim];
                out[i] = centers[i] + Point3::new(o[0], o[1], o[2]) * radius;
            }
        }
    }

    fn cost(&self) -> RefinerCost {
        RefinerCost {
            lut_lookups_per_point: 0,
            nn_flops_per_point: self.mlp.flops_per_inference(),
        }
    }

    fn memory_bytes(&self) -> usize {
        // f32 weights resident in memory.
        self.mlp.parameter_count() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lut::sparse::SparseLut;
    use crate::SrConfig;

    fn encoder() -> PositionEncoder {
        PositionEncoder::new(&SrConfig::default(), KeyScheme::Full).unwrap()
    }

    fn neighborhood() -> (Point3, Vec<Point3>) {
        (
            Point3::new(0.0, 0.0, 0.0),
            vec![
                Point3::new(0.2, 0.0, 0.0),
                Point3::new(0.0, 0.2, 0.0),
                Point3::new(0.0, 0.0, 0.2),
            ],
        )
    }

    #[test]
    fn identity_refiner_is_a_noop() {
        let (c, n) = neighborhood();
        assert_eq!(IdentityRefiner.refine(c, &n), c);
        assert_eq!(IdentityRefiner.memory_bytes(), 0);
        assert_eq!(IdentityRefiner.cost(), RefinerCost::default());
        assert!(IdentityRefiner.lookup_stats().is_none());
    }

    #[test]
    fn lut_refiner_applies_stored_offset() {
        let (c, n) = neighborhood();
        let enc = encoder();
        let key = enc.encode(c, &n).unwrap().key;
        let radius = enc.encode(c, &n).unwrap().radius;
        let mut lut = SparseLut::new();
        lut.set(key, [0.5, 0.0, 0.0]).unwrap();
        let refiner = LutRefiner::new(enc, Box::new(lut));
        let refined = refiner.refine(c, &n);
        assert!((refined.x - 0.5 * radius).abs() < 1e-3);
        let stats = refiner.lookup_stats().unwrap();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 0);
    }

    #[test]
    fn lut_refiner_miss_returns_center_and_counts() {
        let (c, n) = neighborhood();
        let refiner = LutRefiner::new(encoder(), Box::new(SparseLut::new()));
        assert_eq!(refiner.refine(c, &n), c);
        assert_eq!(refiner.refine(c, &[]), c);
        let stats = refiner.lookup_stats().unwrap();
        assert_eq!(stats.misses, 1);
        assert_eq!(refiner.cost().lut_lookups_per_point, 1);
    }

    #[test]
    fn nn_refiner_moves_points_and_reports_cost() {
        let (c, n) = neighborhood();
        let mlp = Mlp::new(&[12, 16, 3], 5);
        let refiner = NnRefiner::new(encoder(), mlp);
        let refined = refiner.refine(c, &n);
        // A randomly initialized network almost surely produces a non-zero offset.
        assert_ne!(refined, c);
        assert_eq!(refiner.refine(c, &[]), c);
        assert!(refiner.cost().nn_flops_per_point > 0);
        assert!(refiner.memory_bytes() > 0);
    }

    #[test]
    fn refiners_are_object_safe_and_sync() {
        fn assert_send_sync<T: Send + Sync + ?Sized>() {}
        assert_send_sync::<dyn Refiner>();
        let boxed: Vec<Box<dyn Refiner>> = vec![
            Box::new(IdentityRefiner),
            Box::new(LutRefiner::new(encoder(), Box::new(SparseLut::new()))),
        ];
        assert_eq!(boxed.len(), 2);
    }

    /// A batch call over N points must agree bit-for-bit with N per-point
    /// shim calls (the parity contract of the batched trait redesign).
    fn batch_matches_per_point(refiner: &dyn Refiner) {
        // Source cloud: points on a jittered grid.
        let source: Vec<Point3> = (0..64)
            .map(|i| {
                let f = i as f32;
                Point3::new(f.sin(), (f * 0.7).cos(), f * 0.01)
            })
            .collect();
        // Centers with varying-size (including empty) neighborhoods.
        let centers: Vec<Point3> = (0..40)
            .map(|i| source[i] + Point3::new(0.01, -0.02, 0.005))
            .collect();
        let mut hoods = Neighborhoods::new();
        for i in 0..centers.len() {
            let len = i % 5; // 0..=4 neighbors, row 0 empty
            hoods.push_row((0..len).map(|k| (i + k + 1) % source.len()));
        }
        let mut batch_out = vec![Point3::ZERO; centers.len()];
        refiner.refine_batch(&centers, hoods.view(), &source, &mut batch_out);
        for (i, &expected) in batch_out.iter().enumerate() {
            let neighbors: Vec<Point3> = hoods.row(i).iter().map(|&j| source[j as usize]).collect();
            let single = refiner.refine(centers[i], &neighbors);
            assert_eq!(single, expected, "row {i} diverged");
        }
    }

    #[test]
    fn identity_batch_parity() {
        batch_matches_per_point(&IdentityRefiner);
    }

    #[test]
    fn lut_batch_parity() {
        let enc = encoder();
        let mut lut = SparseLut::new();
        // Populate a handful of keys so both hit and miss paths are exercised.
        let source = Point3::new(0.3, 0.1, -0.2);
        let key = enc.encode(Point3::ZERO, &[source]).unwrap().key;
        lut.set(key, [0.1, -0.2, 0.3]).unwrap();
        let refiner = LutRefiner::new(enc, Box::new(lut));
        batch_matches_per_point(&refiner);
        let stats = refiner.lookup_stats().unwrap();
        assert!(stats.hits + stats.misses > 0);
    }

    #[test]
    fn nn_batch_parity() {
        let refiner = NnRefiner::new(encoder(), Mlp::new(&[12, 32, 32, 3], 9));
        batch_matches_per_point(&refiner);
    }

    #[test]
    fn subset_refinement_matches_full_pass() {
        // A jittered-grid cloud with a generated tail of 50 points.
        let source: Vec<Point3> = (0..64)
            .map(|i| {
                let f = i as f32;
                Point3::new(f.sin(), (f * 0.7).cos(), f * 0.01)
            })
            .collect();
        let original_len = source.len();
        let mut cloud = PointCloud::from_positions(source.clone());
        let mut hoods = Neighborhoods::new();
        for i in 0..50 {
            cloud.push(source[i] + Point3::new(0.01, -0.02, 0.005), None);
            let len = i % 5; // 0..=4 neighbors, some rows empty
            hoods.push_row((0..len).map(|k| (i + k + 1) % source.len()));
        }
        let refiner = NnRefiner::new(encoder(), Mlp::new(&[12, 16, 3], 11));

        let mut full = cloud.clone();
        let mut scratch = Vec::new();
        refine_in_place(
            &refiner,
            &mut full,
            original_len,
            &hoods,
            &source,
            &mut scratch,
        );

        // Refine a strict subset: the chosen rows must match the full pass
        // bit for bit, the rest must remain at their pre-refinement values.
        let ordinals: Vec<u32> = (0..50u32).filter(|o| o % 3 != 1).collect();
        let mut partial = cloud.clone();
        let mut subset_hoods = Neighborhoods::new();
        let mut subset_out = Vec::new();
        refine_rows_in_place(
            &refiner,
            &mut partial,
            original_len,
            &hoods,
            &source,
            &ordinals,
            &mut scratch,
            &mut subset_hoods,
            &mut subset_out,
        );
        let in_subset = |o: u32| o % 3 != 1;
        for o in 0..50u32 {
            let i = original_len + o as usize;
            if in_subset(o) {
                assert_eq!(partial.position(i), full.position(i), "ordinal {o}");
            } else {
                assert_eq!(partial.position(i), cloud.position(i), "ordinal {o}");
            }
        }
        // Over the complete ordinal list the subset pass IS the full pass.
        let mut all = cloud.clone();
        let every: Vec<u32> = (0..50u32).collect();
        refine_rows_in_place(
            &refiner,
            &mut all,
            original_len,
            &hoods,
            &source,
            &every,
            &mut scratch,
            &mut subset_hoods,
            &mut subset_out,
        );
        assert_eq!(all, full);
    }

    #[test]
    fn refine_in_place_refines_only_the_tail() {
        let source: Vec<Point3> = (0..10).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect();
        let mut cloud = PointCloud::from_positions(source.clone());
        cloud.push(Point3::new(0.4, 0.5, 0.0), None);
        cloud.push(Point3::new(1.6, -0.5, 0.0), None);
        let mut hoods = Neighborhoods::new();
        hoods.push_row([0usize, 1]);
        hoods.push_row([1usize, 2]);
        let before_head = cloud.positions()[..10].to_vec();
        let mut scratch = Vec::new();
        let refiner = NnRefiner::new(encoder(), Mlp::new(&[12, 8, 3], 3));
        refine_in_place(&refiner, &mut cloud, 10, &hoods, &source, &mut scratch);
        assert_eq!(&cloud.positions()[..10], &before_head[..]);
        assert_ne!(cloud.position(10), Point3::new(0.4, 0.5, 0.0));
    }
}

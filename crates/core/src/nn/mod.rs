//! A small from-scratch neural-network stack used to train the refinement
//! function offline (§4.2.2).
//!
//! The paper trains a GradPU-style refinement network in PyTorch and then
//! *distills it into a LUT*; the network is never executed on the client.
//! This module provides the minimal pieces needed to reproduce that offline
//! path in pure Rust: dense layers, a ReLU MLP with backpropagation, the
//! Adam optimizer and the training-set construction / training loop
//! ([`train`]).

pub mod adam;
pub mod mlp;
pub mod train;

pub use adam::Adam;
pub use mlp::{BatchScratch, ForwardScratch, Linear, Mlp, MICRO_BATCH};
pub use train::{build_training_set, RefinementTrainer, TrainConfig, TrainingReport, TrainingSet};

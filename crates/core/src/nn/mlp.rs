//! Dense layers and a ReLU multi-layer perceptron with backpropagation.

use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// A fully connected layer `y = W x + b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Row-major weights with shape `(out_dim, in_dim)`.
    pub weights: Vec<f32>,
    /// Bias vector of length `out_dim`.
    pub bias: Vec<f32>,
    /// Input dimension.
    pub in_dim: usize,
    /// Output dimension.
    pub out_dim: usize,
    /// Accumulated weight gradients (same layout as `weights`).
    #[serde(skip)]
    pub grad_weights: Vec<f32>,
    /// Accumulated bias gradients.
    #[serde(skip)]
    pub grad_bias: Vec<f32>,
}

impl Linear {
    /// Creates a layer with He-style random initialization.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        let scale = (2.0 / in_dim as f32).sqrt();
        let weights = (0..in_dim * out_dim)
            .map(|_| (rng.random::<f32>() * 2.0 - 1.0) * scale)
            .collect();
        Self {
            weights,
            bias: vec![0.0; out_dim],
            in_dim,
            out_dim,
            grad_weights: vec![0.0; in_dim * out_dim],
            grad_bias: vec![0.0; out_dim],
        }
    }

    /// Forward pass for a single input vector.
    ///
    /// # Panics
    /// Panics in debug builds when `input.len() != in_dim`.
    pub fn forward(&self, input: &[f32]) -> Vec<f32> {
        debug_assert_eq!(input.len(), self.in_dim);
        let mut out = self.bias.clone();
        for (o, out_v) in out.iter_mut().enumerate() {
            let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = 0.0f32;
            for (w, x) in row.iter().zip(input.iter()) {
                acc += w * x;
            }
            *out_v += acc;
        }
        out
    }

    /// Forward pass writing into a reusable output buffer (cleared first).
    pub fn forward_into(&self, input: &[f32], out: &mut Vec<f32>) {
        debug_assert_eq!(input.len(), self.in_dim);
        out.clear();
        out.extend_from_slice(&self.bias);
        for (o, out_v) in out.iter_mut().enumerate() {
            let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = 0.0f32;
            for (w, x) in row.iter().zip(input.iter()) {
                acc += w * x;
            }
            *out_v += acc;
        }
    }

    /// Backward pass: accumulates gradients for this layer and returns the
    /// gradient with respect to the input.
    pub fn backward(&mut self, input: &[f32], grad_out: &[f32]) -> Vec<f32> {
        debug_assert_eq!(input.len(), self.in_dim);
        debug_assert_eq!(grad_out.len(), self.out_dim);
        let mut grad_in = vec![0.0f32; self.in_dim];
        for (o, &go) in grad_out.iter().enumerate() {
            self.grad_bias[o] += go;
            let row_start = o * self.in_dim;
            for i in 0..self.in_dim {
                self.grad_weights[row_start + i] += go * input[i];
                grad_in[i] += go * self.weights[row_start + i];
            }
        }
        grad_in
    }

    /// Clears the accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_weights.iter_mut().for_each(|g| *g = 0.0);
        self.grad_bias.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }
}

/// Reusable activation buffers for [`Mlp::forward_into`].
#[derive(Debug, Clone, Default)]
pub struct ForwardScratch {
    ping: Vec<f32>,
    pong: Vec<f32>,
}

/// A ReLU multi-layer perceptron.
///
/// # Example
///
/// ```
/// use volut_core::nn::Mlp;
/// let mlp = Mlp::new(&[4, 8, 2], 7);
/// let y = mlp.forward(&[0.1, -0.2, 0.3, 0.4]);
/// assert_eq!(y.len(), 2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
    dims: Vec<usize>,
}

impl Mlp {
    /// Builds an MLP with the given layer sizes, e.g. `[12, 64, 64, 3]`.
    ///
    /// # Panics
    /// Panics when fewer than two dimensions are given or any dimension is zero.
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least an input and an output dimension"
        );
        assert!(
            dims.iter().all(|&d| d > 0),
            "layer dimensions must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], &mut rng))
            .collect();
        Self {
            layers,
            dims: dims.to_vec(),
        }
    }

    /// The layer dimensions this network was built with.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.dims[0]
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        *self.dims.last().expect("dims is non-empty")
    }

    /// Total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(Linear::parameter_count).sum()
    }

    /// Approximate multiply-accumulate count of one forward pass; used by the
    /// device cost models to compare NN inference against LUT lookup.
    pub fn flops_per_inference(&self) -> u64 {
        self.dims.windows(2).map(|w| (w[0] * w[1] * 2) as u64).sum()
    }

    /// Forward pass for a single input vector.
    pub fn forward(&self, input: &[f32]) -> Vec<f32> {
        let mut scratch = ForwardScratch::default();
        self.forward_into(input, &mut scratch).to_vec()
    }

    /// Allocation-free forward pass: ping-pongs between the two scratch
    /// buffers and returns a slice of the final activations. The hot path
    /// of batched NN refinement — after warm-up it never touches the heap.
    pub fn forward_into<'s>(&self, input: &[f32], scratch: &'s mut ForwardScratch) -> &'s [f32] {
        scratch.ping.clear();
        scratch.ping.extend_from_slice(input);
        for (i, layer) in self.layers.iter().enumerate() {
            layer.forward_into(&scratch.ping, &mut scratch.pong);
            if i + 1 < self.layers.len() {
                scratch.pong.iter_mut().for_each(|v| *v = v.max(0.0));
            }
            std::mem::swap(&mut scratch.ping, &mut scratch.pong);
        }
        &scratch.ping
    }

    /// Forward pass that keeps every intermediate activation (pre-ReLU
    /// outputs are clamped in place, so activations[i] is the *input* to
    /// layer i). Needed for backpropagation.
    fn forward_trace(&self, input: &[f32]) -> Vec<Vec<f32>> {
        let mut activations = Vec::with_capacity(self.layers.len() + 1);
        activations.push(input.to_vec());
        let mut x = input.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(&x);
            if i + 1 < self.layers.len() {
                x.iter_mut().for_each(|v| *v = v.max(0.0));
            }
            activations.push(x.clone());
        }
        activations
    }

    /// Runs one backpropagation step for a single `(input, target)` pair
    /// using MSE loss, accumulating parameter gradients. Returns the loss.
    pub fn backward_mse(&mut self, input: &[f32], target: &[f32]) -> f32 {
        let activations = self.forward_trace(input);
        let output = activations.last().expect("trace includes output");
        debug_assert_eq!(output.len(), target.len());
        let n = output.len() as f32;
        let loss: f32 = output
            .iter()
            .zip(target.iter())
            .map(|(o, t)| (o - t) * (o - t))
            .sum::<f32>()
            / n;
        // dL/do = 2 (o - t) / n
        let mut grad: Vec<f32> = output
            .iter()
            .zip(target.iter())
            .map(|(o, t)| 2.0 * (o - t) / n)
            .collect();
        for i in (0..self.layers.len()).rev() {
            // The stored activation i+1 is post-ReLU for hidden layers; apply
            // the ReLU mask to the incoming gradient (derivative is 0 where
            // the activation is 0).
            if i + 1 < self.layers.len() {
                for (g, &a) in grad.iter_mut().zip(activations[i + 1].iter()) {
                    if a <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            grad = self.layers[i].backward(&activations[i], &grad);
        }
        loss
    }

    /// Clears all accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.layers.iter_mut().for_each(Linear::zero_grad);
    }

    /// Mutable access to the layers (used by the optimizer).
    pub(crate) fn layers_mut(&mut self) -> &mut [Linear] {
        &mut self.layers
    }

    /// Immutable access to the layers.
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let mlp = Mlp::new(&[3, 5, 2], 1);
        assert_eq!(mlp.forward(&[1.0, 2.0, 3.0]).len(), 2);
        assert_eq!(mlp.input_dim(), 3);
        assert_eq!(mlp.output_dim(), 2);
        assert_eq!(mlp.parameter_count(), 3 * 5 + 5 + 5 * 2 + 2);
        assert_eq!(mlp.flops_per_inference(), (3 * 5 * 2 + 5 * 2 * 2) as u64);
    }

    #[test]
    #[should_panic(expected = "at least an input")]
    fn single_dim_panics() {
        let _ = Mlp::new(&[3], 1);
    }

    #[test]
    fn deterministic_initialization() {
        let a = Mlp::new(&[4, 8, 3], 42);
        let b = Mlp::new(&[4, 8, 3], 42);
        assert_eq!(
            a.forward(&[0.1, 0.2, 0.3, 0.4]),
            b.forward(&[0.1, 0.2, 0.3, 0.4])
        );
        let c = Mlp::new(&[4, 8, 3], 43);
        assert_ne!(
            a.forward(&[0.1, 0.2, 0.3, 0.4]),
            c.forward(&[0.1, 0.2, 0.3, 0.4])
        );
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut mlp = Mlp::new(&[2, 4, 1], 7);
        let input = [0.3f32, -0.7];
        let target = [0.25f32];
        mlp.zero_grad();
        mlp.backward_mse(&input, &target);
        // Check a handful of weight gradients against central differences.
        let eps = 1e-3f32;
        for layer_idx in 0..2 {
            for w_idx in [0usize, 1] {
                let analytic = mlp.layers()[layer_idx].grad_weights[w_idx];
                let mut plus = mlp.clone();
                plus.layers_mut()[layer_idx].weights[w_idx] += eps;
                let mut minus = mlp.clone();
                minus.layers_mut()[layer_idx].weights[w_idx] -= eps;
                let loss = |m: &Mlp| {
                    let o = m.forward(&input);
                    (o[0] - target[0]) * (o[0] - target[0])
                };
                let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
                assert!(
                    (analytic - numeric).abs() < 2e-2,
                    "layer {layer_idx} weight {w_idx}: analytic {analytic} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn zero_grad_clears_gradients() {
        let mut mlp = Mlp::new(&[2, 3, 1], 3);
        mlp.backward_mse(&[1.0, 1.0], &[0.0]);
        assert!(mlp.layers()[0].grad_weights.iter().any(|&g| g != 0.0));
        mlp.zero_grad();
        assert!(mlp.layers()[0].grad_weights.iter().all(|&g| g == 0.0));
    }
}

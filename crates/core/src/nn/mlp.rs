//! Dense layers and a ReLU multi-layer perceptron with backpropagation.

use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// A fully connected layer `y = W x + b`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Row-major weights with shape `(out_dim, in_dim)`.
    pub weights: Vec<f32>,
    /// Bias vector of length `out_dim`.
    pub bias: Vec<f32>,
    /// Input dimension.
    pub in_dim: usize,
    /// Output dimension.
    pub out_dim: usize,
    /// Accumulated weight gradients (same layout as `weights`).
    #[serde(skip)]
    pub grad_weights: Vec<f32>,
    /// Accumulated bias gradients.
    #[serde(skip)]
    pub grad_bias: Vec<f32>,
}

impl Linear {
    /// Creates a layer with He-style random initialization.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        let scale = (2.0 / in_dim as f32).sqrt();
        let weights = (0..in_dim * out_dim)
            .map(|_| (rng.random::<f32>() * 2.0 - 1.0) * scale)
            .collect();
        Self {
            weights,
            bias: vec![0.0; out_dim],
            in_dim,
            out_dim,
            grad_weights: vec![0.0; in_dim * out_dim],
            grad_bias: vec![0.0; out_dim],
        }
    }

    /// Forward pass for a single input vector.
    ///
    /// # Panics
    /// Panics in debug builds when `input.len() != in_dim`.
    pub fn forward(&self, input: &[f32]) -> Vec<f32> {
        debug_assert_eq!(input.len(), self.in_dim);
        let mut out = self.bias.clone();
        for (o, out_v) in out.iter_mut().enumerate() {
            let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = 0.0f32;
            for (w, x) in row.iter().zip(input.iter()) {
                acc += w * x;
            }
            *out_v += acc;
        }
        out
    }

    /// Forward pass writing into a reusable output buffer (cleared first).
    pub fn forward_into(&self, input: &[f32], out: &mut Vec<f32>) {
        debug_assert_eq!(input.len(), self.in_dim);
        out.clear();
        out.extend_from_slice(&self.bias);
        for (o, out_v) in out.iter_mut().enumerate() {
            let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
            let mut acc = 0.0f32;
            for (w, x) in row.iter().zip(input.iter()) {
                acc += w * x;
            }
            *out_v += acc;
        }
    }

    /// GEMM-style forward over a transposed micro-batch: `xt` holds the
    /// inputs lane-major (`in_dim × b`, i.e. `xt[i * b + l]` is feature `i`
    /// of point `l`) and `yt` receives the outputs in the same layout
    /// (`out_dim × b`). With the batch as the contiguous lane dimension the
    /// inner loop is a broadcast-multiply-accumulate the compiler
    /// vectorizes, and each weight row is read once per micro-batch instead
    /// of once per point.
    ///
    /// Per element the accumulation order is identical to
    /// [`Self::forward_into`] (features in order, bias added last), so the
    /// result is **bit-identical** to `b` single-point passes.
    ///
    /// # Panics
    /// Panics in debug builds when `xt.len() != in_dim * b`.
    pub fn forward_batch_t(&self, xt: &[f32], b: usize, yt: &mut Vec<f32>) {
        debug_assert_eq!(xt.len(), self.in_dim * b);
        yt.clear();
        yt.resize(self.out_dim * b, 0.0);
        for (o, acc) in yt.chunks_exact_mut(b).enumerate() {
            let row = &self.weights[o * self.in_dim..(o + 1) * self.in_dim];
            for (i, &w) in row.iter().enumerate() {
                let x = &xt[i * b..(i + 1) * b];
                for (a, &xv) in acc.iter_mut().zip(x.iter()) {
                    *a += w * xv;
                }
            }
            let bias = self.bias[o];
            #[allow(clippy::assign_op_pattern)] // written as `bias + acc` to mirror
            // `forward_into`'s exact operand order (the bit-identity contract)
            for a in acc.iter_mut() {
                *a = bias + *a;
            }
        }
    }

    /// Backward pass: accumulates gradients for this layer and returns the
    /// gradient with respect to the input.
    pub fn backward(&mut self, input: &[f32], grad_out: &[f32]) -> Vec<f32> {
        debug_assert_eq!(input.len(), self.in_dim);
        debug_assert_eq!(grad_out.len(), self.out_dim);
        let mut grad_in = vec![0.0f32; self.in_dim];
        for (o, &go) in grad_out.iter().enumerate() {
            self.grad_bias[o] += go;
            let row_start = o * self.in_dim;
            for i in 0..self.in_dim {
                self.grad_weights[row_start + i] += go * input[i];
                grad_in[i] += go * self.weights[row_start + i];
            }
        }
        grad_in
    }

    /// Clears the accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_weights.iter_mut().for_each(|g| *g = 0.0);
        self.grad_bias.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.weights.len() + self.bias.len()
    }
}

/// Reusable activation buffers for [`Mlp::forward_into`].
#[derive(Debug, Clone, Default)]
pub struct ForwardScratch {
    ping: Vec<f32>,
    pong: Vec<f32>,
}

/// Number of points processed per layer pass by [`Mlp::forward_batch_into`].
/// 32 lanes keep the whole transposed activation block of a 512-wide layer
/// (`512 × 32 × 4 B = 64 KB`) inside L2 while amortizing each weight-row
/// load across four AVX2 registers' worth of points.
pub const MICRO_BATCH: usize = 32;

/// Reusable transposed-activation buffers for [`Mlp::forward_batch_into`].
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    ping: Vec<f32>,
    pong: Vec<f32>,
}

/// A ReLU multi-layer perceptron.
///
/// # Example
///
/// ```
/// use volut_core::nn::Mlp;
/// let mlp = Mlp::new(&[4, 8, 2], 7);
/// let y = mlp.forward(&[0.1, -0.2, 0.3, 0.4]);
/// assert_eq!(y.len(), 2);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
    dims: Vec<usize>,
}

impl Mlp {
    /// Builds an MLP with the given layer sizes, e.g. `[12, 64, 64, 3]`.
    ///
    /// # Panics
    /// Panics when fewer than two dimensions are given or any dimension is zero.
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least an input and an output dimension"
        );
        assert!(
            dims.iter().all(|&d| d > 0),
            "layer dimensions must be positive"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], &mut rng))
            .collect();
        Self {
            layers,
            dims: dims.to_vec(),
        }
    }

    /// The layer dimensions this network was built with.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.dims[0]
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        *self.dims.last().expect("dims is non-empty")
    }

    /// Total number of trainable parameters.
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(Linear::parameter_count).sum()
    }

    /// Approximate multiply-accumulate count of one forward pass; used by the
    /// device cost models to compare NN inference against LUT lookup.
    pub fn flops_per_inference(&self) -> u64 {
        self.dims.windows(2).map(|w| (w[0] * w[1] * 2) as u64).sum()
    }

    /// Forward pass for a single input vector.
    pub fn forward(&self, input: &[f32]) -> Vec<f32> {
        let mut scratch = ForwardScratch::default();
        self.forward_into(input, &mut scratch).to_vec()
    }

    /// Allocation-free forward pass: ping-pongs between the two scratch
    /// buffers and returns a slice of the final activations. The hot path
    /// of batched NN refinement — after warm-up it never touches the heap.
    pub fn forward_into<'s>(&self, input: &[f32], scratch: &'s mut ForwardScratch) -> &'s [f32] {
        scratch.ping.clear();
        scratch.ping.extend_from_slice(input);
        for (i, layer) in self.layers.iter().enumerate() {
            layer.forward_into(&scratch.ping, &mut scratch.pong);
            if i + 1 < self.layers.len() {
                scratch.pong.iter_mut().for_each(|v| *v = v.max(0.0));
            }
            std::mem::swap(&mut scratch.ping, &mut scratch.pong);
        }
        &scratch.ping
    }

    /// Batched forward pass: `inputs` holds `n` input vectors row-major
    /// (`n × in_dim`), `out` receives `n` output vectors row-major
    /// (`n × out_dim`, cleared first). Points are processed in
    /// [`MICRO_BATCH`]-sized micro-batches, each pushed through **all**
    /// layers (transposed to lane-major at the block edges) before the next
    /// block starts, so activations stay cache-resident and every weight row
    /// is streamed once per block instead of once per point.
    ///
    /// Results are bit-identical to `n` calls of [`Self::forward_into`]; the
    /// parity is asserted by tests because the batched refiners and the NN
    /// baselines rely on it.
    ///
    /// # Panics
    /// Panics when `inputs.len() != n * input_dim`.
    pub fn forward_batch_into(
        &self,
        inputs: &[f32],
        n: usize,
        out: &mut Vec<f32>,
        scratch: &mut BatchScratch,
    ) {
        let in_dim = self.input_dim();
        let out_dim = self.output_dim();
        assert_eq!(
            inputs.len(),
            n * in_dim,
            "inputs must hold n x input_dim values"
        );
        out.clear();
        out.resize(n * out_dim, 0.0);
        for block_start in (0..n).step_by(MICRO_BATCH) {
            let b = MICRO_BATCH.min(n - block_start);
            // Transpose the block to lane-major: ping[i * b + l] = feature i
            // of point block_start + l.
            scratch.ping.clear();
            scratch.ping.resize(in_dim * b, 0.0);
            for l in 0..b {
                let row = &inputs[(block_start + l) * in_dim..(block_start + l + 1) * in_dim];
                for (i, &v) in row.iter().enumerate() {
                    scratch.ping[i * b + l] = v;
                }
            }
            for (li, layer) in self.layers.iter().enumerate() {
                layer.forward_batch_t(&scratch.ping, b, &mut scratch.pong);
                if li + 1 < self.layers.len() {
                    scratch.pong.iter_mut().for_each(|v| *v = v.max(0.0));
                }
                std::mem::swap(&mut scratch.ping, &mut scratch.pong);
            }
            // Transpose back to row-major output.
            for l in 0..b {
                let row = &mut out[(block_start + l) * out_dim..(block_start + l + 1) * out_dim];
                for (o, slot) in row.iter_mut().enumerate() {
                    *slot = scratch.ping[o * b + l];
                }
            }
        }
    }

    /// Allocating convenience wrapper around [`Self::forward_batch_into`].
    ///
    /// # Panics
    /// Panics when `inputs.len()` is not a multiple of the input dimension.
    pub fn forward_batch(&self, inputs: &[f32]) -> Vec<f32> {
        assert_eq!(
            inputs.len() % self.input_dim(),
            0,
            "inputs must hold whole rows"
        );
        let n = inputs.len() / self.input_dim();
        let mut out = Vec::new();
        self.forward_batch_into(inputs, n, &mut out, &mut BatchScratch::default());
        out
    }

    /// Forward pass that keeps every intermediate activation (pre-ReLU
    /// outputs are clamped in place, so activations[i] is the *input* to
    /// layer i). Needed for backpropagation.
    fn forward_trace(&self, input: &[f32]) -> Vec<Vec<f32>> {
        let mut activations = Vec::with_capacity(self.layers.len() + 1);
        activations.push(input.to_vec());
        let mut x = input.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(&x);
            if i + 1 < self.layers.len() {
                x.iter_mut().for_each(|v| *v = v.max(0.0));
            }
            activations.push(x.clone());
        }
        activations
    }

    /// Runs one backpropagation step for a single `(input, target)` pair
    /// using MSE loss, accumulating parameter gradients. Returns the loss.
    pub fn backward_mse(&mut self, input: &[f32], target: &[f32]) -> f32 {
        let activations = self.forward_trace(input);
        let output = activations.last().expect("trace includes output");
        debug_assert_eq!(output.len(), target.len());
        let n = output.len() as f32;
        let loss: f32 = output
            .iter()
            .zip(target.iter())
            .map(|(o, t)| (o - t) * (o - t))
            .sum::<f32>()
            / n;
        // dL/do = 2 (o - t) / n
        let mut grad: Vec<f32> = output
            .iter()
            .zip(target.iter())
            .map(|(o, t)| 2.0 * (o - t) / n)
            .collect();
        for i in (0..self.layers.len()).rev() {
            // The stored activation i+1 is post-ReLU for hidden layers; apply
            // the ReLU mask to the incoming gradient (derivative is 0 where
            // the activation is 0).
            if i + 1 < self.layers.len() {
                for (g, &a) in grad.iter_mut().zip(activations[i + 1].iter()) {
                    if a <= 0.0 {
                        *g = 0.0;
                    }
                }
            }
            grad = self.layers[i].backward(&activations[i], &grad);
        }
        loss
    }

    /// Clears all accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.layers.iter_mut().for_each(Linear::zero_grad);
    }

    /// Mutable access to the layers (used by the optimizer).
    pub(crate) fn layers_mut(&mut self) -> &mut [Linear] {
        &mut self.layers
    }

    /// Immutable access to the layers.
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let mlp = Mlp::new(&[3, 5, 2], 1);
        assert_eq!(mlp.forward(&[1.0, 2.0, 3.0]).len(), 2);
        assert_eq!(mlp.input_dim(), 3);
        assert_eq!(mlp.output_dim(), 2);
        assert_eq!(mlp.parameter_count(), 3 * 5 + 5 + 5 * 2 + 2);
        assert_eq!(mlp.flops_per_inference(), (3 * 5 * 2 + 5 * 2 * 2) as u64);
    }

    #[test]
    #[should_panic(expected = "at least an input")]
    fn single_dim_panics() {
        let _ = Mlp::new(&[3], 1);
    }

    #[test]
    fn deterministic_initialization() {
        let a = Mlp::new(&[4, 8, 3], 42);
        let b = Mlp::new(&[4, 8, 3], 42);
        assert_eq!(
            a.forward(&[0.1, 0.2, 0.3, 0.4]),
            b.forward(&[0.1, 0.2, 0.3, 0.4])
        );
        let c = Mlp::new(&[4, 8, 3], 43);
        assert_ne!(
            a.forward(&[0.1, 0.2, 0.3, 0.4]),
            c.forward(&[0.1, 0.2, 0.3, 0.4])
        );
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut mlp = Mlp::new(&[2, 4, 1], 7);
        let input = [0.3f32, -0.7];
        let target = [0.25f32];
        mlp.zero_grad();
        mlp.backward_mse(&input, &target);
        // Check a handful of weight gradients against central differences.
        let eps = 1e-3f32;
        for layer_idx in 0..2 {
            for w_idx in [0usize, 1] {
                let analytic = mlp.layers()[layer_idx].grad_weights[w_idx];
                let mut plus = mlp.clone();
                plus.layers_mut()[layer_idx].weights[w_idx] += eps;
                let mut minus = mlp.clone();
                minus.layers_mut()[layer_idx].weights[w_idx] -= eps;
                let loss = |m: &Mlp| {
                    let o = m.forward(&input);
                    (o[0] - target[0]) * (o[0] - target[0])
                };
                let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
                assert!(
                    (analytic - numeric).abs() < 2e-2,
                    "layer {layer_idx} weight {w_idx}: analytic {analytic} vs numeric {numeric}"
                );
            }
        }
    }

    /// The GEMM-style batched forward must agree with the per-point path to
    /// exact f32 equality — the contract the batched refiners and baselines
    /// rely on for their own parity tests.
    #[test]
    fn forward_batch_matches_forward_into_exactly() {
        for dims in [&[12usize, 64, 64, 3][..], &[4, 7, 2], &[3, 33, 3]] {
            let mlp = Mlp::new(dims, 11);
            let in_dim = mlp.input_dim();
            let out_dim = mlp.output_dim();
            // Sizes around the micro-batch boundary: empty, one, partial,
            // exact and spill-over blocks.
            for n in [
                0usize,
                1,
                5,
                MICRO_BATCH - 1,
                MICRO_BATCH,
                MICRO_BATCH + 3,
                3 * MICRO_BATCH,
            ] {
                let inputs: Vec<f32> = (0..n * in_dim)
                    .map(|i| ((i as f32) * 0.37).sin() * 2.0 - 0.5)
                    .collect();
                let mut batched = Vec::new();
                let mut scratch = BatchScratch::default();
                mlp.forward_batch_into(&inputs, n, &mut batched, &mut scratch);
                assert_eq!(batched.len(), n * out_dim);
                let mut fwd = ForwardScratch::default();
                for p in 0..n {
                    let single = mlp.forward_into(&inputs[p * in_dim..(p + 1) * in_dim], &mut fwd);
                    assert_eq!(
                        &batched[p * out_dim..(p + 1) * out_dim],
                        single,
                        "dims {dims:?} n {n} point {p}"
                    );
                }
            }
        }
    }

    #[test]
    fn forward_batch_wrapper_validates_shape() {
        let mlp = Mlp::new(&[3, 4, 2], 1);
        let out = mlp.forward_batch(&[0.1; 6]);
        assert_eq!(out.len(), 4);
        assert_eq!(out[..2], mlp.forward(&[0.1; 3])[..]);
    }

    #[test]
    #[should_panic(expected = "whole rows")]
    fn forward_batch_rejects_ragged_input() {
        let mlp = Mlp::new(&[3, 4, 2], 1);
        let _ = mlp.forward_batch(&[0.0; 7]);
    }

    #[test]
    fn zero_grad_clears_gradients() {
        let mut mlp = Mlp::new(&[2, 3, 1], 3);
        mlp.backward_mse(&[1.0, 1.0], &[0.0]);
        assert!(mlp.layers()[0].grad_weights.iter().any(|&g| g != 0.0));
        mlp.zero_grad();
        assert!(mlp.layers()[0].grad_weights.iter().all(|&g| g == 0.0));
    }
}

//! The Adam optimizer used to train the refinement network.

use super::mlp::Mlp;
use serde::{Deserialize, Serialize};

/// Adam optimizer state for an [`Mlp`].
///
/// # Example
///
/// ```
/// use volut_core::nn::{Adam, Mlp};
/// let mut mlp = Mlp::new(&[2, 4, 1], 1);
/// let mut adam = Adam::new(&mlp, 1e-2);
/// mlp.zero_grad();
/// mlp.backward_mse(&[0.5, -0.5], &[1.0]);
/// adam.step(&mut mlp);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    learning_rate: f32,
    beta1: f32,
    beta2: f32,
    epsilon: f32,
    step: u64,
    /// First-moment estimates, one pair (weights, bias) per layer.
    moment1: Vec<(Vec<f32>, Vec<f32>)>,
    /// Second-moment estimates.
    moment2: Vec<(Vec<f32>, Vec<f32>)>,
}

impl Adam {
    /// Creates an optimizer matching the shape of `mlp` with the standard
    /// Adam hyperparameters (β1 = 0.9, β2 = 0.999, ε = 1e-8).
    pub fn new(mlp: &Mlp, learning_rate: f32) -> Self {
        let moment1 = mlp
            .layers()
            .iter()
            .map(|l| (vec![0.0; l.weights.len()], vec![0.0; l.bias.len()]))
            .collect::<Vec<_>>();
        let moment2 = moment1.clone();
        Self {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            step: 0,
            moment1,
            moment2,
        }
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }

    /// Overrides the learning rate (e.g. for simple schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.learning_rate = lr;
    }

    /// Applies one Adam update using the gradients currently accumulated in
    /// `mlp`, then leaves the gradients untouched (call
    /// [`Mlp::zero_grad`] before the next accumulation).
    ///
    /// # Panics
    /// Panics when `mlp` has a different shape than the network this
    /// optimizer was created for.
    pub fn step(&mut self, mlp: &mut Mlp) {
        assert_eq!(
            mlp.layers().len(),
            self.moment1.len(),
            "optimizer and network layer counts differ"
        );
        self.step += 1;
        let b1t = 1.0 - self.beta1.powi(self.step as i32);
        let b2t = 1.0 - self.beta2.powi(self.step as i32);
        for (layer_idx, layer) in mlp.layers_mut().iter_mut().enumerate() {
            let (m_w, m_b) = &mut self.moment1[layer_idx];
            let (v_w, v_b) = &mut self.moment2[layer_idx];
            assert_eq!(
                m_w.len(),
                layer.weights.len(),
                "optimizer and layer weight shapes differ"
            );
            for i in 0..layer.weights.len() {
                let g = layer.grad_weights[i];
                m_w[i] = self.beta1 * m_w[i] + (1.0 - self.beta1) * g;
                v_w[i] = self.beta2 * v_w[i] + (1.0 - self.beta2) * g * g;
                let m_hat = m_w[i] / b1t;
                let v_hat = v_w[i] / b2t;
                layer.weights[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
            }
            for i in 0..layer.bias.len() {
                let g = layer.grad_bias[i];
                m_b[i] = self.beta1 * m_b[i] + (1.0 - self.beta1) * g;
                v_b[i] = self.beta2 * v_b[i] + (1.0 - self.beta2) * g * g;
                let m_hat = m_b[i] / b1t;
                let v_hat = v_b[i] / b2t;
                layer.bias[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimizes_a_simple_regression() {
        // Learn y = x0 - x1 from random samples.
        let mut mlp = Mlp::new(&[2, 16, 1], 3);
        let mut adam = Adam::new(&mlp, 5e-3);
        use rand::prelude::*;
        use rand::rngs::StdRng;
        let mut rng = StdRng::seed_from_u64(9);
        let data: Vec<([f32; 2], [f32; 1])> = (0..256)
            .map(|_| {
                let x0: f32 = rng.random_range(-1.0..1.0);
                let x1: f32 = rng.random_range(-1.0..1.0);
                ([x0, x1], [x0 - x1])
            })
            .collect();
        let mut first_loss = 0.0;
        let mut last_loss = 0.0;
        for epoch in 0..60 {
            let mut total = 0.0;
            for (x, y) in &data {
                mlp.zero_grad();
                total += mlp.backward_mse(x, y);
                adam.step(&mut mlp);
            }
            let mean = total / data.len() as f32;
            if epoch == 0 {
                first_loss = mean;
            }
            last_loss = mean;
        }
        assert!(
            last_loss < first_loss * 0.2,
            "loss did not decrease: {first_loss} -> {last_loss}"
        );
        assert!(last_loss < 0.05);
    }

    #[test]
    fn learning_rate_accessors() {
        let mlp = Mlp::new(&[2, 2, 1], 1);
        let mut adam = Adam::new(&mlp, 1e-3);
        assert_eq!(adam.learning_rate(), 1e-3);
        adam.set_learning_rate(5e-4);
        assert_eq!(adam.learning_rate(), 5e-4);
    }

    #[test]
    #[should_panic(expected = "layer counts differ")]
    fn shape_mismatch_panics() {
        let mlp_a = Mlp::new(&[2, 2, 1], 1);
        let mut mlp_b = Mlp::new(&[2, 3, 3, 1], 1);
        let mut adam = Adam::new(&mlp_a, 1e-3);
        adam.step(&mut mlp_b);
    }
}

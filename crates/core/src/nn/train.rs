//! Offline training of the refinement network (§4.2.2).
//!
//! Training pairs are built exactly the way the client will later see the
//! data: a ground-truth frame is randomly downsampled, the downsampled cloud
//! is re-upsampled with dilated interpolation, and each interpolated point's
//! *target* is the (normalized) displacement to its nearest ground-truth
//! point. Gaussian noise (σ = 0.02 by default) is injected into the inputs
//! so that the network — and therefore the LUT distilled from it — is robust
//! to quantization artifacts.

use super::adam::Adam;
use super::mlp::Mlp;
use crate::config::SrConfig;
use crate::encoding::{KeyScheme, PositionEncoder};
use crate::error::Error;
use crate::interpolate::dilated::dilated_interpolate;
use crate::Result;
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use volut_pointcloud::kdtree::KdTree;
use volut_pointcloud::knn::NeighborSearch;
use volut_pointcloud::{sampling, Neighborhoods, Point3, PointCloud};

/// A supervised training set of (encoded neighborhood, normalized offset) pairs.
#[derive(Debug, Clone, Default)]
pub struct TrainingSet {
    /// Dequantized feature vectors, each of length `receptive_field × 3`.
    pub inputs: Vec<Vec<f32>>,
    /// Normalized target offsets (displacement to nearest ground-truth point
    /// divided by the neighborhood radius).
    pub targets: Vec<[f32; 3]>,
}

impl TrainingSet {
    /// Number of training samples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Returns `true` when the set holds no samples.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Appends all samples of `other`.
    pub fn extend(&mut self, other: TrainingSet) {
        self.inputs.extend(other.inputs);
        self.targets.extend(other.targets);
    }
}

/// Hyperparameters of the refinement-network training loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Standard deviation of the Gaussian noise injected into inputs.
    pub noise_sigma: f32,
    /// Hidden layer widths of the refinement MLP.
    pub hidden: [usize; 2],
    /// Seed for weight initialization, shuffling and noise.
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 30,
            learning_rate: 2e-3,
            noise_sigma: 0.02,
            hidden: [64, 64],
            seed: 0,
        }
    }
}

/// Per-epoch record of the training run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Mean MSE loss after each epoch.
    pub epoch_losses: Vec<f32>,
    /// Number of training samples used.
    pub samples: usize,
}

impl TrainingReport {
    /// Final (last-epoch) loss, or `None` when no epochs ran.
    pub fn final_loss(&self) -> Option<f32> {
        self.epoch_losses.last().copied()
    }
}

/// Builds a training set from one ground-truth frame.
///
/// The frame is downsampled by `keep_ratio` (e.g. 0.5 for ×2 upsampling
/// pairs), re-upsampled with dilated interpolation, and each interpolated
/// point is paired with its normalized displacement to the nearest
/// ground-truth point.
///
/// # Errors
/// Propagates sampling and interpolation failures; returns
/// [`Error::Training`] when no usable samples could be extracted.
pub fn build_training_set(
    ground_truth: &PointCloud,
    keep_ratio: f64,
    config: &SrConfig,
    scheme: KeyScheme,
    seed: u64,
) -> Result<TrainingSet> {
    let encoder = PositionEncoder::new(config, scheme)?;
    let low = sampling::random_downsample(ground_truth, keep_ratio, seed)?;
    if low.len() < 2 {
        return Err(Error::Training(
            "downsampled frame has fewer than two points".into(),
        ));
    }
    let upsample_ratio = (1.0 / keep_ratio).max(1.0);
    let interp = dilated_interpolate(&low, config, upsample_ratio)?;
    let gt_tree = KdTree::build(ground_truth.positions());
    // One batched sweep answers every interpolated point's nearest-ground-
    // truth query (bit-identical to per-point `knn`) instead of a fresh
    // allocating query per sample. This is a bichromatic batch (generated
    // points against the ground-truth tree), which the batch layer's auto
    // policy keeps on the warm single-tree Morton sweep — the dual-tree
    // leaf-pair kernel only wins on self-joins (see
    // `volut_pointcloud::dualtree`).
    let mut nearest = Neighborhoods::new();
    gt_tree.knn_batch(
        &interp.cloud.positions()[interp.original_len..],
        1,
        &mut nearest,
    );

    let mut set = TrainingSet::default();
    let mut neighbor_positions: Vec<Point3> = Vec::new();
    for (ordinal, hood) in interp.neighborhoods.iter().enumerate() {
        if hood.is_empty() {
            continue;
        }
        let center = interp.cloud.position(interp.original_len + ordinal);
        neighbor_positions.clear();
        neighbor_positions.extend(hood.iter().map(|&i| low.position(i as usize)));
        let encoded = encoder.encode(center, &neighbor_positions)?;
        let nearest_row = nearest.row(ordinal);
        if nearest_row.is_empty() {
            continue;
        }
        let target_point = ground_truth.position(nearest_row[0] as usize);
        let offset = (target_point - center) / encoded.radius;
        // Clip extreme targets: they correspond to interpolated points that
        // landed far off the surface and would dominate the loss.
        if offset.norm() > 2.0 {
            continue;
        }
        set.inputs.push(encoder.features(&encoded));
        set.targets.push([offset.x, offset.y, offset.z]);
    }
    if set.is_empty() {
        return Err(Error::Training(
            "no training samples could be generated".into(),
        ));
    }
    Ok(set)
}

/// Trains the refinement MLP on encoded neighborhoods.
#[derive(Debug, Clone)]
pub struct RefinementTrainer {
    mlp: Mlp,
    config: TrainConfig,
}

impl RefinementTrainer {
    /// Creates a trainer whose network input size matches `sr_config`'s
    /// receptive field.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] when `sr_config` is invalid.
    pub fn new(sr_config: &SrConfig, config: TrainConfig) -> Result<Self> {
        sr_config.validate()?;
        let input_dim = sr_config.receptive_field * 3;
        let dims = [input_dim, config.hidden[0], config.hidden[1], 3];
        Ok(Self {
            mlp: Mlp::new(&dims, config.seed),
            config,
        })
    }

    /// The network being trained.
    pub fn network(&self) -> &Mlp {
        &self.mlp
    }

    /// Consumes the trainer and returns the trained network.
    pub fn into_network(self) -> Mlp {
        self.mlp
    }

    /// Runs the training loop over `set`.
    ///
    /// # Errors
    /// Returns [`Error::Training`] when the set is empty or a sample's input
    /// size does not match the network.
    pub fn train(&mut self, set: &TrainingSet) -> Result<TrainingReport> {
        if set.is_empty() {
            return Err(Error::Training("training set is empty".into()));
        }
        for input in &set.inputs {
            if input.len() != self.mlp.input_dim() {
                return Err(Error::Training(format!(
                    "sample input length {} does not match network input {}",
                    input.len(),
                    self.mlp.input_dim()
                )));
            }
        }
        let mut adam = Adam::new(&self.mlp, self.config.learning_rate);
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(1));
        let mut order: Vec<usize> = (0..set.len()).collect();
        let mut report = TrainingReport {
            epoch_losses: Vec::new(),
            samples: set.len(),
        };
        let mut noisy_input = Vec::new();
        for _epoch in 0..self.config.epochs {
            order.shuffle(&mut rng);
            let mut total = 0.0f64;
            for &i in &order {
                noisy_input.clear();
                noisy_input.extend(
                    set.inputs[i]
                        .iter()
                        .map(|&v| v + gaussian(&mut rng) * self.config.noise_sigma),
                );
                self.mlp.zero_grad();
                let loss = self.mlp.backward_mse(&noisy_input, &set.targets[i]);
                adam.step(&mut self.mlp);
                total += f64::from(loss);
            }
            report.epoch_losses.push((total / set.len() as f64) as f32);
        }
        Ok(report)
    }
}

fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.random_range(f32::EPSILON..1.0);
    let u2: f32 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use volut_pointcloud::synthetic;

    #[test]
    fn training_set_construction() {
        let gt = synthetic::sphere(1500, 1.0, 1);
        let set = build_training_set(&gt, 0.5, &SrConfig::default(), KeyScheme::Full, 7).unwrap();
        assert!(!set.is_empty());
        assert_eq!(set.inputs.len(), set.targets.len());
        assert!(set.inputs.iter().all(|i| i.len() == 12));
        // Targets are normalized: magnitudes should be bounded.
        assert!(set.targets.iter().all(|t| t.iter().all(|v| v.abs() <= 2.0)));
    }

    #[test]
    fn training_reduces_loss() {
        let gt = synthetic::torus(1500, 1.0, 0.3, 2);
        let set = build_training_set(&gt, 0.5, &SrConfig::default(), KeyScheme::Full, 3).unwrap();
        let cfg = TrainConfig {
            epochs: 8,
            ..TrainConfig::default()
        };
        let mut trainer = RefinementTrainer::new(&SrConfig::default(), cfg).unwrap();
        let report = trainer.train(&set).unwrap();
        assert_eq!(report.epoch_losses.len(), 8);
        let first = report.epoch_losses[0];
        let last = report.final_loss().unwrap();
        assert!(last <= first, "loss should not increase: {first} -> {last}");
    }

    #[test]
    fn empty_set_is_rejected() {
        let mut trainer =
            RefinementTrainer::new(&SrConfig::default(), TrainConfig::default()).unwrap();
        assert!(trainer.train(&TrainingSet::default()).is_err());
    }

    #[test]
    fn mismatched_input_size_is_rejected() {
        let mut trainer =
            RefinementTrainer::new(&SrConfig::default(), TrainConfig::default()).unwrap();
        let set = TrainingSet {
            inputs: vec![vec![0.0; 5]],
            targets: vec![[0.0; 3]],
        };
        assert!(trainer.train(&set).is_err());
    }

    #[test]
    fn training_set_extend() {
        let gt = synthetic::sphere(800, 1.0, 5);
        let mut a = build_training_set(&gt, 0.5, &SrConfig::default(), KeyScheme::Full, 1).unwrap();
        let b = build_training_set(&gt, 0.5, &SrConfig::default(), KeyScheme::Full, 2).unwrap();
        let before = a.len();
        let b_len = b.len();
        a.extend(b);
        assert_eq!(a.len(), before + b_len);
    }
}

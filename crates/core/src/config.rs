//! Configuration of the two-stage super-resolution pipeline.

use crate::error::Error;
use crate::Result;
use serde::{Deserialize, Serialize};

/// Configuration shared by the interpolation and refinement stages.
///
/// The defaults mirror the paper's deployed configuration: `k = 4` neighbors
/// with dilation `d = 2` (receptive field `k×d = 8` candidates), a refinement
/// receptive field of `n = 4` points and `b = 128` quantization bins.
///
/// # Example
///
/// ```
/// use volut_core::config::SrConfig;
/// let cfg = SrConfig::default();
/// assert_eq!(cfg.k, 4);
/// assert_eq!(cfg.dilation, 2);
/// assert!(cfg.validate().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SrConfig {
    /// Number of neighbors `k` used when generating each interpolated point.
    pub k: usize,
    /// Dilation factor `d`; the dilated neighborhood holds `k × d` candidates (Eq. 1).
    pub dilation: usize,
    /// Receptive-field size `n` of the refinement stage (center + `n-1` neighbors).
    pub receptive_field: usize,
    /// Number of quantization bins `b` per encoded value (Eq. 4).
    pub bins: usize,
    /// Whether the interpolation stage reuses neighbor relationships for new
    /// points (Eq. 2) instead of running fresh kNN queries.
    pub reuse_neighbors: bool,
    /// Seed for the deterministic pseudo-random choices inside interpolation.
    pub seed: u64,
}

impl Default for SrConfig {
    fn default() -> Self {
        Self {
            k: 4,
            dilation: 2,
            receptive_field: 4,
            bins: 128,
            reuse_neighbors: true,
            seed: 0,
        }
    }
}

impl SrConfig {
    /// The paper's "K4d1" baseline: vanilla kNN interpolation without dilation.
    pub fn k4d1() -> Self {
        Self {
            dilation: 1,
            ..Self::default()
        }
    }

    /// The paper's "K4d2" configuration: dilation 2.
    pub fn k4d2() -> Self {
        Self::default()
    }

    /// Size of the dilated candidate neighborhood (`k × d`).
    pub fn dilated_neighborhood(&self) -> usize {
        self.k * self.dilation
    }

    /// Checks that every field is inside its documented domain.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] describing the first violated constraint.
    pub fn validate(&self) -> Result<()> {
        if self.k == 0 {
            return Err(Error::InvalidConfig("k must be at least 1".into()));
        }
        if self.dilation == 0 {
            return Err(Error::InvalidConfig("dilation must be at least 1".into()));
        }
        if self.receptive_field < 2 {
            return Err(Error::InvalidConfig(
                "receptive_field must be at least 2 (center plus one neighbor)".into(),
            ));
        }
        if self.bins < 2 {
            return Err(Error::InvalidConfig("bins must be at least 2".into()));
        }
        if self.bins > 65_536 {
            return Err(Error::InvalidConfig("bins must fit in 16 bits".into()));
        }
        Ok(())
    }

    /// Validates an upsampling ratio for this configuration.
    ///
    /// # Errors
    /// Returns [`Error::InvalidRatio`] when `ratio` is below 1 or not finite.
    pub fn validate_ratio(&self, ratio: f64) -> Result<()> {
        if !ratio.is_finite() || ratio < 1.0 {
            return Err(Error::InvalidRatio(ratio));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_configuration() {
        let c = SrConfig::default();
        assert_eq!(c.k, 4);
        assert_eq!(c.dilation, 2);
        assert_eq!(c.receptive_field, 4);
        assert_eq!(c.bins, 128);
        assert!(c.reuse_neighbors);
        assert_eq!(c.dilated_neighborhood(), 8);
    }

    #[test]
    fn named_presets() {
        assert_eq!(SrConfig::k4d1().dilation, 1);
        assert_eq!(SrConfig::k4d2().dilation, 2);
    }

    #[test]
    fn validation_catches_bad_values() {
        assert!(SrConfig {
            k: 0,
            ..SrConfig::default()
        }
        .validate()
        .is_err());
        assert!(SrConfig {
            dilation: 0,
            ..SrConfig::default()
        }
        .validate()
        .is_err());
        assert!(SrConfig {
            receptive_field: 1,
            ..SrConfig::default()
        }
        .validate()
        .is_err());
        assert!(SrConfig {
            bins: 1,
            ..SrConfig::default()
        }
        .validate()
        .is_err());
        assert!(SrConfig {
            bins: 1 << 17,
            ..SrConfig::default()
        }
        .validate()
        .is_err());
        assert!(SrConfig::default().validate().is_ok());
    }

    #[test]
    fn ratio_validation() {
        let c = SrConfig::default();
        assert!(c.validate_ratio(1.0).is_ok());
        assert!(c.validate_ratio(2.7).is_ok());
        assert!(c.validate_ratio(0.9).is_err());
        assert!(c.validate_ratio(f64::NAN).is_err());
        assert!(c.validate_ratio(f64::INFINITY).is_err());
    }
}

//! LUT memory model (Table 1, Eq. 5 and Eq. 7).
//!
//! The paper analyzes the memory footprint of dense lookup tables for
//! different receptive-field sizes `n` and bin counts `b`. The prose gives
//! `N_entries = b^(n×3)` (Eq. 5), but the byte figures in Table 1 follow
//! `b^n` entries of three `float16` offsets (6 bytes per entry); both
//! quantities are exposed here, and [`table1_rows`] reproduces the table
//! using the accounting that matches its published numbers.

use serde::{Deserialize, Serialize};

/// Memory model for a dense LUT configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Receptive-field size `n`.
    pub receptive_field: usize,
    /// Quantization bins `b`.
    pub bins: usize,
}

impl MemoryModel {
    /// Creates a memory model for the given configuration.
    pub fn new(receptive_field: usize, bins: usize) -> Self {
        Self {
            receptive_field,
            bins,
        }
    }

    /// Number of dense entries under the *compact* (per-point) indexing that
    /// matches Table 1: `b^n`. Saturates at `u128::MAX`.
    pub fn compact_entries(&self) -> u128 {
        checked_pow(self.bins as u128, self.receptive_field as u32)
    }

    /// Number of entries under the *full* per-coordinate indexing of Eq. 5:
    /// `b^(3n)`. Saturates at `u128::MAX`.
    pub fn full_entries(&self) -> u128 {
        checked_pow(self.bins as u128, (self.receptive_field * 3) as u32)
    }

    /// Bytes needed to store one entry: three offsets × 2 bytes (`float16`).
    pub const fn bytes_per_entry() -> u128 {
        6
    }

    /// Total bytes of a dense compact LUT (`compact_entries × 6`).
    pub fn compact_bytes(&self) -> u128 {
        self.compact_entries()
            .saturating_mul(Self::bytes_per_entry())
    }

    /// Total bytes of a dense full LUT (`full_entries × 6`).
    pub fn full_bytes(&self) -> u128 {
        self.full_entries().saturating_mul(Self::bytes_per_entry())
    }

    /// Human-friendly size string (B/KB/MB/GB/TB with one decimal).
    pub fn format_bytes(bytes: u128) -> String {
        const UNITS: [&str; 6] = ["B", "KB", "MB", "GB", "TB", "PB"];
        let mut value = bytes as f64;
        let mut unit = 0;
        while value >= 1024.0 && unit < UNITS.len() - 1 {
            value /= 1024.0;
            unit += 1;
        }
        if unit == 0 {
            format!("{bytes} B")
        } else {
            format!("{value:.2} {}", UNITS[unit])
        }
    }
}

/// One row of the paper's Table 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryRow {
    /// Receptive-field size `n`.
    pub receptive_field: usize,
    /// Bins `b`.
    pub bins: usize,
    /// Dense entry count used for the byte figure (`b^n`).
    pub entries: u128,
    /// Total bytes (`entries × 6`).
    pub bytes: u128,
    /// Pretty-printed size.
    pub formatted: String,
}

/// Reproduces Table 1: memory requirements for
/// `(n, b) ∈ {3, 4, 5} × {128, 64}` in the paper's row order.
pub fn table1_rows() -> Vec<MemoryRow> {
    let configs = [(3, 128), (3, 64), (4, 128), (4, 64), (5, 128), (5, 64)];
    configs
        .iter()
        .map(|&(n, b)| {
            let model = MemoryModel::new(n, b);
            let entries = model.compact_entries();
            let bytes = model.compact_bytes();
            MemoryRow {
                receptive_field: n,
                bins: b,
                entries,
                bytes,
                formatted: MemoryModel::format_bytes(bytes),
            }
        })
        .collect()
}

fn checked_pow(base: u128, exp: u32) -> u128 {
    let mut acc: u128 = 1;
    for _ in 0..exp {
        acc = acc.saturating_mul(base);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_match_paper() {
        // Paper Table 1 (with 2-byte float16 per offset component):
        //   n=3 b=128 -> ~12 MB     n=3 b=64 -> ~1.5 MB
        //   n=4 b=128 -> ~1.61 GB   n=4 b=64 -> ~100 MB
        //   n=5 b=128 -> ~201 GB    n=5 b=64 -> ~6.25 GB
        let rows = table1_rows();
        assert_eq!(rows.len(), 6);
        let gb = 1024f64 * 1024.0 * 1024.0;
        let mb = 1024f64 * 1024.0;
        let approx = |actual: u128, expected: f64| {
            let a = actual as f64;
            (a - expected).abs() / expected < 0.15
        };
        assert!(
            approx(rows[0].bytes, 12.0 * mb),
            "n=3 b=128: {}",
            rows[0].formatted
        );
        assert!(
            approx(rows[1].bytes, 1.5 * mb),
            "n=3 b=64: {}",
            rows[1].formatted
        );
        assert!(
            approx(rows[2].bytes, 1.61 * gb),
            "n=4 b=128: {}",
            rows[2].formatted
        );
        assert!(
            approx(rows[3].bytes, 100.0 * mb),
            "n=4 b=64: {}",
            rows[3].formatted
        );
        assert!(
            approx(rows[4].bytes, 201.0 * gb),
            "n=5 b=128: {}",
            rows[4].formatted
        );
        assert!(
            approx(rows[5].bytes, 6.25 * gb),
            "n=5 b=64: {}",
            rows[5].formatted
        );
    }

    #[test]
    fn entry_counts() {
        let m = MemoryModel::new(4, 128);
        assert_eq!(m.compact_entries(), 128u128.pow(4));
        assert_eq!(m.full_entries(), 128u128.pow(12));
        assert_eq!(m.compact_bytes(), 128u128.pow(4) * 6);
    }

    #[test]
    fn saturation_does_not_overflow() {
        let m = MemoryModel::new(20, 65536);
        assert_eq!(m.full_entries(), u128::MAX);
        assert_eq!(m.full_bytes(), u128::MAX);
    }

    #[test]
    fn formatting() {
        assert_eq!(MemoryModel::format_bytes(512), "512 B");
        assert!(MemoryModel::format_bytes(2048).contains("KB"));
        assert!(MemoryModel::format_bytes(3 * 1024 * 1024).contains("MB"));
        assert!(MemoryModel::format_bytes(5u128 * 1024 * 1024 * 1024).contains("GB"));
    }
}

//! Lookup-table storage and construction (§4.2).
//!
//! After the refinement network is trained offline, its behaviour is
//! *transferred* into a lookup table: for a quantized neighborhood key the
//! table stores the network's predicted 3D offset in `float16`
//! (2 bytes/offset, Eq. 7). At run time refinement is then a single table
//! lookup instead of a network inference.
//!
//! Two storage backends are provided:
//! * [`DenseLut`] — a flat array indexed directly by the compact key
//!   (`b^n` entries, the layout whose byte counts Table 1 reports);
//! * [`SparseLut`] — a hash map keyed by the full per-coordinate key
//!   (`b^(3n)` key space), storing only the entries actually observed
//!   during distillation. This is the engineering substitution that lets the
//!   `b = 128`, `n = 4` configuration run on hosts without 1.6 GB of free
//!   memory (see DESIGN.md §2).

pub mod builder;
pub mod dense;
pub mod f16;
pub mod io;
pub mod memory;
pub mod sparse;

pub use builder::LutBuilder;
pub use dense::DenseLut;
pub use memory::{table1_rows, MemoryModel, MemoryRow};
pub use sparse::SparseLut;

use serde::{Deserialize, Serialize};

/// Issues a hardware prefetch for the cache line holding `*ptr` on targets
/// that expose one. Shared by the batched probes of both storage backends:
/// they prefetch every target of a block of keys before reading any of
/// them, overlapping the DRAM misses instead of serializing them.
#[inline]
pub(crate) fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        std::arch::x86_64::_mm_prefetch(ptr.cast::<i8>(), std::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        // No stable prefetch intrinsic elsewhere (e.g. aarch64); the batched
        // probe loops still benefit from out-of-order overlap of independent
        // misses.
        let _ = ptr;
    }
}

/// A 3D refinement offset retrieved from a LUT, in the normalized
/// neighborhood coordinate frame (multiply by the neighborhood radius to get
/// a world-space displacement).
pub type Offset = [f32; 3];

/// Statistics describing how a LUT is being used at run time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LookupStats {
    /// Number of lookups that found a populated entry.
    pub hits: u64,
    /// Number of lookups that missed (the refiner falls back to a zero offset).
    pub misses: u64,
}

impl LookupStats {
    /// Hit rate in `[0, 1]`; returns 1.0 when no lookups were recorded.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Common interface of the LUT storage backends.
pub trait Lut: Send + Sync {
    /// Returns the stored offset for `key`, or `None` when the entry has not
    /// been populated.
    fn get(&self, key: u128) -> Option<Offset>;

    /// Looks up a whole block of keys at once: `out[i]` receives the result
    /// for `keys[i]`. Backends override this when they can exploit the
    /// batch shape (the sparse table prefetches every probe target before
    /// reading any of them); the default delegates to [`Self::get`].
    ///
    /// # Panics
    /// Panics when `out` is shorter than `keys`.
    fn get_batch(&self, keys: &[u128], out: &mut [Option<Offset>]) {
        assert!(out.len() >= keys.len(), "output buffer too short");
        for (slot, &key) in out.iter_mut().zip(keys.iter()) {
            *slot = self.get(key);
        }
    }

    /// Hints that `key` will be probed soon. Backends with a flat layout
    /// issue a hardware prefetch for the key's home slot; the default is a
    /// no-op. Callers interleave this with other per-point work (e.g. key
    /// encoding) so the memory latency of an upcoming [`Self::get_batch`]
    /// overlaps with computation.
    fn prefetch(&self, key: u128) {
        let _ = key;
    }

    /// Stores (or overwrites) the offset for `key`.
    ///
    /// # Errors
    /// Returns [`crate::Error::LutFormat`] when the key is outside the
    /// table's key space.
    fn set(&mut self, key: u128, offset: Offset) -> crate::Result<()>;

    /// Number of populated entries.
    fn populated(&self) -> usize;

    /// Resident memory consumed by the table's storage, in bytes.
    fn memory_bytes(&self) -> usize;

    /// Human-readable backend name for reports ("dense" / "sparse").
    fn backend_name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_stats_hit_rate() {
        let s = LookupStats::default();
        assert_eq!(s.hit_rate(), 1.0);
        let s = LookupStats { hits: 3, misses: 1 };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }
}

//! Sparse (hashed) LUT storage for the full per-coordinate key scheme.

use super::f16::{f16_bits_to_f32, f32_to_f16_bits};
use super::{Lut, Offset};
use crate::Result;
use std::collections::HashMap;

/// Sparse LUT backed by a hash map from packed keys to `float16` offsets.
///
/// Only the neighborhood configurations actually observed during
/// distillation are stored, which is what makes the `b^(3n)` key space of
/// the full encoding practical: real point-cloud surfaces occupy a tiny
/// fraction of it.
///
/// # Example
///
/// ```
/// use volut_core::lut::{sparse::SparseLut, Lut};
/// let mut lut = SparseLut::new();
/// lut.set(u128::MAX - 1, [0.5, 0.0, -0.5]).unwrap();
/// assert!(lut.get(u128::MAX - 1).is_some());
/// assert_eq!(lut.populated(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SparseLut {
    entries: HashMap<u128, [u16; 3]>,
}

impl SparseLut {
    /// Creates an empty sparse LUT.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty sparse LUT with capacity for `n` entries.
    pub fn with_capacity(n: usize) -> Self {
        Self { entries: HashMap::with_capacity(n) }
    }

    /// Iterates over `(key, offset)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u128, Offset)> + '_ {
        self.entries.iter().map(|(&k, &v)| {
            (k, [f16_bits_to_f32(v[0]), f16_bits_to_f32(v[1]), f16_bits_to_f32(v[2])])
        })
    }

    /// Merges another sparse LUT into this one; on key collisions the two
    /// offsets are averaged (multi-LUT fusion, §6).
    pub fn fuse(&mut self, other: &SparseLut) {
        for (key, offset) in other.iter() {
            match self.get(key) {
                Some(existing) => {
                    let merged = [
                        (existing[0] + offset[0]) * 0.5,
                        (existing[1] + offset[1]) * 0.5,
                        (existing[2] + offset[2]) * 0.5,
                    ];
                    let _ = self.set(key, merged);
                }
                None => {
                    let _ = self.set(key, offset);
                }
            }
        }
    }
}

impl Lut for SparseLut {
    fn get(&self, key: u128) -> Option<Offset> {
        self.entries.get(&key).map(|v| {
            [f16_bits_to_f32(v[0]), f16_bits_to_f32(v[1]), f16_bits_to_f32(v[2])]
        })
    }

    fn set(&mut self, key: u128, offset: Offset) -> Result<()> {
        self.entries.insert(
            key,
            [
                f32_to_f16_bits(offset[0]),
                f32_to_f16_bits(offset[1]),
                f32_to_f16_bits(offset[2]),
            ],
        );
        Ok(())
    }

    fn populated(&self) -> usize {
        self.entries.len()
    }

    fn memory_bytes(&self) -> usize {
        // Key (16 B) + packed offsets (6 B) + hash-map overhead (~10 B/entry).
        self.entries.len() * (16 + 6 + 10)
    }

    fn backend_name(&self) -> &'static str {
        "sparse"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut lut = SparseLut::new();
        lut.set(123456789, [0.25, 0.5, -0.75]).unwrap();
        assert_eq!(lut.get(123456789), Some([0.25, 0.5, -0.75]));
        assert!(lut.get(1).is_none());
        assert_eq!(lut.populated(), 1);
        assert_eq!(lut.backend_name(), "sparse");
    }

    #[test]
    fn huge_keys_are_supported() {
        let mut lut = SparseLut::with_capacity(4);
        let key = 128u128.pow(12) - 1;
        lut.set(key, [1.0, 0.0, 0.0]).unwrap();
        assert!(lut.get(key).is_some());
    }

    #[test]
    fn memory_grows_with_population() {
        let mut lut = SparseLut::new();
        let before = lut.memory_bytes();
        for i in 0..100 {
            lut.set(i, [0.0; 3]).unwrap();
        }
        assert!(lut.memory_bytes() > before);
    }

    #[test]
    fn fuse_averages_collisions() {
        let mut a = SparseLut::new();
        a.set(5, [1.0, 0.0, 0.0]).unwrap();
        a.set(6, [0.5, 0.5, 0.5]).unwrap();
        let mut b = SparseLut::new();
        b.set(5, [0.0, 1.0, 0.0]).unwrap();
        b.set(7, [0.25, 0.25, 0.25]).unwrap();
        a.fuse(&b);
        assert_eq!(a.populated(), 3);
        let merged = a.get(5).unwrap();
        assert!((merged[0] - 0.5).abs() < 1e-3);
        assert!((merged[1] - 0.5).abs() < 1e-3);
    }

    #[test]
    fn iteration_matches_population() {
        let mut lut = SparseLut::new();
        for i in 0..10u128 {
            lut.set(i * 1000, [i as f32 * 0.01, 0.0, 0.0]).unwrap();
        }
        assert_eq!(lut.iter().count(), 10);
    }
}

//! Sparse (hashed) LUT storage for the full per-coordinate key scheme.
//!
//! Backed by a flat open-addressing table (linear probing, power-of-two
//! capacity) instead of `std::collections::HashMap`: the refinement stage
//! performs one lookup per generated point (~100K per frame) over a table
//! that is far larger than L2, so lookup cost is DRAM latency, not hashing.
//! Owning the layout lets [`SparseLut::get_batch`] software-prefetch the
//! probe targets of a whole block of keys before touching any of them,
//! overlapping the cache misses instead of serializing them — the
//! single-core analogue of the paper's batched CUDA table reads.

use super::f16::{f16_bits_to_f32, f32_to_f16_bits};
use super::{prefetch_read as prefetch, Lut, Offset};
use crate::Result;

/// One open-addressing slot: packed key, `float16` offsets, occupancy.
#[derive(Debug, Clone, Copy)]
struct Entry {
    key: u128,
    packed: [u16; 3],
    occupied: bool,
}

const EMPTY: Entry = Entry {
    key: 0,
    packed: [0; 3],
    occupied: false,
};

/// Multiply-fold hash for the packed `u128` LUT keys.
///
/// SipHash-strength hashing is unnecessary here — keys are well-mixed
/// quantized coordinates produced by trusted local encoding — and costs
/// more than the probe it guards.
#[inline]
fn hash_key(key: u128) -> u64 {
    const M: u64 = 0x9E37_79B9_7F4A_7C15;
    let lo = key as u64;
    let hi = (key >> 64) as u64;
    let mut h = lo.wrapping_mul(M) ^ hi.wrapping_mul(M.rotate_left(32));
    h ^= h >> 29;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^ (h >> 32)
}

/// Sparse LUT backed by a flat open-addressing table from packed keys to
/// `float16` offsets.
///
/// Only the neighborhood configurations actually observed during
/// distillation are stored, which is what makes the `b^(3n)` key space of
/// the full encoding practical: real point-cloud surfaces occupy a tiny
/// fraction of it.
///
/// # Example
///
/// ```
/// use volut_core::lut::{sparse::SparseLut, Lut};
/// let mut lut = SparseLut::new();
/// lut.set(u128::MAX - 1, [0.5, 0.0, -0.5]).unwrap();
/// assert!(lut.get(u128::MAX - 1).is_some());
/// assert_eq!(lut.populated(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SparseLut {
    entries: Vec<Entry>,
    mask: usize,
    len: usize,
}

impl Default for SparseLut {
    fn default() -> Self {
        Self::new()
    }
}

impl SparseLut {
    /// Block size of the prefetched batch probe.
    pub const PROBE_BLOCK: usize = 32;

    /// Creates an empty sparse LUT.
    pub fn new() -> Self {
        Self::with_capacity(16)
    }

    /// Creates an empty sparse LUT with capacity for at least `n` entries.
    pub fn with_capacity(n: usize) -> Self {
        let capacity = (n * 8 / 7 + 1).next_power_of_two().max(16);
        Self {
            entries: vec![EMPTY; capacity],
            mask: capacity - 1,
            len: 0,
        }
    }

    #[inline]
    fn slot_of(&self, key: u128) -> usize {
        hash_key(key) as usize & self.mask
    }

    /// Index of `key`'s slot if present, else of the empty slot to insert at.
    #[inline]
    fn probe(&self, key: u128) -> (usize, bool) {
        let mut i = self.slot_of(key);
        loop {
            let e = &self.entries[i];
            if !e.occupied {
                return (i, false);
            }
            if e.key == key {
                return (i, true);
            }
            i = (i + 1) & self.mask;
        }
    }

    fn grow(&mut self) {
        let new_capacity = self.entries.len() * 2;
        let old = std::mem::replace(&mut self.entries, vec![EMPTY; new_capacity]);
        self.mask = new_capacity - 1;
        for e in old {
            if e.occupied {
                let (slot, found) = self.probe(e.key);
                debug_assert!(!found);
                self.entries[slot] = e;
            }
        }
    }

    /// Iterates over `(key, offset)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u128, Offset)> + '_ {
        self.entries.iter().filter(|e| e.occupied).map(|e| {
            (
                e.key,
                [
                    f16_bits_to_f32(e.packed[0]),
                    f16_bits_to_f32(e.packed[1]),
                    f16_bits_to_f32(e.packed[2]),
                ],
            )
        })
    }

    /// Merges another sparse LUT into this one; on key collisions the two
    /// offsets are averaged (multi-LUT fusion, §6).
    pub fn fuse(&mut self, other: &SparseLut) {
        for (key, offset) in other.iter() {
            match self.get(key) {
                Some(existing) => {
                    let merged = [
                        (existing[0] + offset[0]) * 0.5,
                        (existing[1] + offset[1]) * 0.5,
                        (existing[2] + offset[2]) * 0.5,
                    ];
                    let _ = self.set(key, merged);
                }
                None => {
                    let _ = self.set(key, offset);
                }
            }
        }
    }

    /// Looks up a whole block of keys, prefetching every probe target
    /// before reading any of them so the cache misses overlap. `out[i]` is
    /// `Some(offset)` when `keys[i]` is populated.
    ///
    /// # Panics
    /// Panics when `out` is shorter than `keys`.
    pub fn get_batch(&self, keys: &[u128], out: &mut [Option<Offset>]) {
        assert!(out.len() >= keys.len(), "output buffer too short");
        for block_start in (0..keys.len()).step_by(Self::PROBE_BLOCK) {
            let block_end = (block_start + Self::PROBE_BLOCK).min(keys.len());
            // Pass 1: issue prefetches for the home slot of every key.
            for &key in &keys[block_start..block_end] {
                prefetch(&self.entries[self.slot_of(key)]);
            }
            // Pass 2: probe (home slots are now in flight / resident).
            for (i, &key) in keys[block_start..block_end].iter().enumerate() {
                let (slot, found) = self.probe(key);
                out[block_start + i] = if found {
                    let e = &self.entries[slot];
                    Some([
                        f16_bits_to_f32(e.packed[0]),
                        f16_bits_to_f32(e.packed[1]),
                        f16_bits_to_f32(e.packed[2]),
                    ])
                } else {
                    None
                };
            }
        }
    }
}

impl Lut for SparseLut {
    fn get(&self, key: u128) -> Option<Offset> {
        let (slot, found) = self.probe(key);
        if found {
            let e = &self.entries[slot];
            Some([
                f16_bits_to_f32(e.packed[0]),
                f16_bits_to_f32(e.packed[1]),
                f16_bits_to_f32(e.packed[2]),
            ])
        } else {
            None
        }
    }

    fn get_batch(&self, keys: &[u128], out: &mut [Option<Offset>]) {
        SparseLut::get_batch(self, keys, out);
    }

    fn prefetch(&self, key: u128) {
        prefetch(&self.entries[self.slot_of(key)]);
    }

    fn set(&mut self, key: u128, offset: Offset) -> Result<()> {
        // Grow at 7/8 load to keep probe chains short.
        if (self.len + 1) * 8 > self.entries.len() * 7 {
            self.grow();
        }
        let (slot, found) = self.probe(key);
        if !found {
            self.len += 1;
        }
        self.entries[slot] = Entry {
            key,
            packed: [
                f32_to_f16_bits(offset[0]),
                f32_to_f16_bits(offset[1]),
                f32_to_f16_bits(offset[2]),
            ],
            occupied: true,
        };
        Ok(())
    }

    fn populated(&self) -> usize {
        self.len
    }

    fn memory_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<Entry>()
    }

    fn backend_name(&self) -> &'static str {
        "sparse"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut lut = SparseLut::new();
        lut.set(123456789, [0.25, 0.5, -0.75]).unwrap();
        assert_eq!(lut.get(123456789), Some([0.25, 0.5, -0.75]));
        assert!(lut.get(1).is_none());
        assert_eq!(lut.populated(), 1);
        assert_eq!(lut.backend_name(), "sparse");
    }

    #[test]
    fn huge_keys_are_supported() {
        let mut lut = SparseLut::with_capacity(4);
        let key = 128u128.pow(12) - 1;
        lut.set(key, [1.0, 0.0, 0.0]).unwrap();
        assert!(lut.get(key).is_some());
    }

    #[test]
    fn overwrite_does_not_grow_population() {
        let mut lut = SparseLut::new();
        lut.set(42, [0.1, 0.0, 0.0]).unwrap();
        lut.set(42, [0.2, 0.0, 0.0]).unwrap();
        assert_eq!(lut.populated(), 1);
        let got = lut.get(42).unwrap();
        assert!((got[0] - 0.2).abs() < 1e-3);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut lut = SparseLut::with_capacity(4);
        for i in 0..10_000u128 {
            lut.set(i.wrapping_mul(0x1234_5678_9ABC_DEF1), [0.5, 0.0, -0.5])
                .unwrap();
        }
        assert_eq!(lut.populated(), 10_000);
        for i in 0..10_000u128 {
            assert!(
                lut.get(i.wrapping_mul(0x1234_5678_9ABC_DEF1)).is_some(),
                "key {i}"
            );
        }
        assert!(lut.get(999_999_999_999).is_none());
    }

    #[test]
    fn memory_grows_with_population() {
        let mut lut = SparseLut::new();
        let before = lut.memory_bytes();
        for i in 0..100 {
            lut.set(i, [0.0; 3]).unwrap();
        }
        assert!(lut.memory_bytes() > before);
    }

    #[test]
    fn fuse_averages_collisions() {
        let mut a = SparseLut::new();
        a.set(5, [1.0, 0.0, 0.0]).unwrap();
        a.set(6, [0.5, 0.5, 0.5]).unwrap();
        let mut b = SparseLut::new();
        b.set(5, [0.0, 1.0, 0.0]).unwrap();
        b.set(7, [0.25, 0.25, 0.25]).unwrap();
        a.fuse(&b);
        assert_eq!(a.populated(), 3);
        let merged = a.get(5).unwrap();
        assert!((merged[0] - 0.5).abs() < 1e-3);
        assert!((merged[1] - 0.5).abs() < 1e-3);
    }

    #[test]
    fn iteration_matches_population() {
        let mut lut = SparseLut::new();
        for i in 0..10u128 {
            lut.set(i * 1000, [i as f32 * 0.01, 0.0, 0.0]).unwrap();
        }
        assert_eq!(lut.iter().count(), 10);
    }

    #[test]
    fn get_batch_matches_get() {
        let mut lut = SparseLut::new();
        for i in 0..5_000u128 {
            lut.set(i.wrapping_mul(0xDEAD_BEEF_CAFE), [0.25, -0.25, 0.0])
                .unwrap();
        }
        // Mix of present and absent keys, larger than one probe block.
        let keys: Vec<u128> = (0..1_000u128)
            .map(|i| {
                if i % 3 == 0 {
                    i.wrapping_mul(0xDEAD_BEEF_CAFE)
                } else {
                    i * 7 + 1
                }
            })
            .collect();
        let mut batch = vec![None; keys.len()];
        lut.get_batch(&keys, &mut batch);
        for (i, &key) in keys.iter().enumerate() {
            assert_eq!(batch[i], lut.get(key), "key index {i}");
        }
    }

    #[test]
    fn key_zero_roundtrips() {
        // Key 0 must not be confused with the empty-slot sentinel.
        let mut lut = SparseLut::new();
        assert!(lut.get(0).is_none());
        lut.set(0, [0.5, 0.5, 0.5]).unwrap();
        assert!(lut.get(0).is_some());
        assert_eq!(lut.populated(), 1);
    }
}

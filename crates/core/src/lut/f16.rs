//! Minimal IEEE 754 half-precision (binary16) conversion.
//!
//! The paper stores LUT offsets as `float16` (2 bytes per offset component,
//! Eq. 7). To keep that byte accounting honest without pulling in an extra
//! dependency, this module implements the f32 ↔ f16 bit conversions needed
//! for storage; all arithmetic still happens in `f32`.

/// Converts an `f32` to its nearest binary16 bit pattern (round-to-nearest-even,
/// overflow saturates to ±infinity).
pub fn f32_to_f16_bits(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mantissa = bits & 0x007f_ffff;

    if exp == 0xff {
        // Infinity or NaN.
        let nan_bit = if mantissa != 0 { 0x0200 } else { 0 };
        return sign | 0x7c00 | nan_bit;
    }
    // Re-bias exponent: f32 bias 127, f16 bias 15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        // Overflow -> infinity.
        return sign | 0x7c00;
    }
    if unbiased >= -14 {
        // Normal f16.
        let half_exp = ((unbiased + 15) as u16) << 10;
        let half_mant = (mantissa >> 13) as u16;
        // Round to nearest even.
        let round_bit = (mantissa >> 12) & 1;
        let sticky = mantissa & 0x0fff;
        let mut out = sign | half_exp | half_mant;
        if round_bit == 1 && (sticky != 0 || (half_mant & 1) == 1) {
            out = out.wrapping_add(1);
        }
        return out;
    }
    if unbiased >= -24 {
        // Subnormal f16: value = half_mant * 2^-24, so the 24-bit mantissa
        // (with the implicit leading one) is shifted right by -unbiased - 1.
        let shift = (-unbiased - 1) as u32;
        let full_mant = mantissa | 0x0080_0000;
        let half_mant = (full_mant >> shift) as u16;
        let round_bit = if shift > 0 {
            (full_mant >> (shift - 1)) & 1
        } else {
            0
        };
        let mut out = sign | half_mant;
        if round_bit == 1 {
            out = out.wrapping_add(1);
        }
        return out;
    }
    // Underflow to signed zero.
    sign
}

/// Converts a binary16 bit pattern back to `f32`.
pub fn f16_bits_to_f32(bits: u16) -> f32 {
    let sign = u32::from(bits & 0x8000) << 16;
    let exp = (bits >> 10) & 0x1f;
    let mantissa = u32::from(bits & 0x03ff);
    let out_bits = match exp {
        0 => {
            if mantissa == 0 {
                sign
            } else {
                // Subnormal: normalize it.
                let mut m = mantissa;
                let mut e = -14i32;
                while m & 0x0400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                m &= 0x03ff;
                sign | (((e + 127) as u32) << 23) | (m << 13)
            }
        }
        0x1f => sign | 0x7f80_0000 | (mantissa << 13),
        _ => {
            let e = i32::from(exp) - 15 + 127;
            sign | ((e as u32) << 23) | (mantissa << 13)
        }
    };
    f32::from_bits(out_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_values_roundtrip() {
        for v in [0.0f32, 1.0, -1.0, 0.5, -0.5, 0.25, 2.0, 1024.0, -0.125] {
            let bits = f32_to_f16_bits(v);
            assert_eq!(f16_bits_to_f32(bits), v, "value {v}");
        }
    }

    #[test]
    fn roundtrip_error_is_small_for_unit_range() {
        // LUT offsets live in roughly [-2, 2]; half precision gives ~1e-3 there.
        let mut v = -2.0f32;
        while v <= 2.0 {
            let back = f16_bits_to_f32(f32_to_f16_bits(v));
            assert!((back - v).abs() <= 2e-3, "value {v} -> {back}");
            v += 0.0137;
        }
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert!(f16_bits_to_f32(f32_to_f16_bits(1e9)).is_infinite());
        assert!(f16_bits_to_f32(f32_to_f16_bits(-1e9)).is_infinite());
    }

    #[test]
    fn nan_is_preserved() {
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
    }

    #[test]
    fn subnormals_roundtrip_approximately() {
        let v = 3.0e-5f32;
        let back = f16_bits_to_f32(f32_to_f16_bits(v));
        assert!((back - v).abs() < 1e-6);
        // Deep underflow flushes to zero.
        assert_eq!(f16_bits_to_f32(f32_to_f16_bits(1e-10)), 0.0);
    }

    #[test]
    fn sign_of_zero_is_kept() {
        let neg_zero = f16_bits_to_f32(f32_to_f16_bits(-0.0));
        assert_eq!(neg_zero, 0.0);
        assert!(neg_zero.is_sign_negative());
    }
}

//! Serialization of LUTs to a compact binary file format.
//!
//! The paper stores its LUT as an `.npy` file; here we use an equally
//! language-neutral little-endian binary layout (documented below) with the
//! extension `.vlut`:
//!
//! ```text
//! magic "VLUT"            4 bytes
//! version                 u8  (currently 1)
//! backend                 u8  (0 = sparse, 1 = dense)
//! scheme                  u8  (0 = full, 1 = compact)
//! receptive_field         u8
//! bins                    u16 LE
//! key_space               u128 LE   (dense only; 0 for sparse)
//! entry_count             u64 LE
//! entries                 entry_count × (key u128 LE, 3 × f16 LE)
//! ```

use super::dense::DenseLut;
use super::f16::f32_to_f16_bits;
use super::sparse::SparseLut;
use super::Lut;
use crate::encoding::KeyScheme;
use crate::error::Error;
use crate::Result;
use bytes::{Buf, Bytes, BytesMut};
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"VLUT";
const VERSION: u8 = 1;

/// Metadata describing how a serialized LUT was built; stored in the file
/// header so the client can reconstruct a compatible [`crate::encoding::PositionEncoder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LutHeader {
    /// Key scheme the LUT was built with.
    pub scheme: KeyScheme,
    /// Receptive-field size `n`.
    pub receptive_field: usize,
    /// Quantization bins `b`.
    pub bins: usize,
}

/// A deserialized LUT plus its header.
#[derive(Debug, Clone)]
pub enum LoadedLut {
    /// A sparse LUT.
    Sparse {
        /// Header metadata.
        header: LutHeader,
        /// The table itself.
        lut: SparseLut,
    },
    /// A dense LUT.
    Dense {
        /// Header metadata.
        header: LutHeader,
        /// The table itself.
        lut: DenseLut,
    },
}

impl LoadedLut {
    /// The header regardless of backend.
    pub fn header(&self) -> LutHeader {
        match self {
            LoadedLut::Sparse { header, .. } | LoadedLut::Dense { header, .. } => *header,
        }
    }

    /// The LUT as a trait object.
    pub fn as_lut(&self) -> &dyn Lut {
        match self {
            LoadedLut::Sparse { lut, .. } => lut,
            LoadedLut::Dense { lut, .. } => lut,
        }
    }

    /// Consumes the loaded value and boxes the LUT.
    pub fn into_boxed_lut(self) -> Box<dyn Lut> {
        match self {
            LoadedLut::Sparse { lut, .. } => Box::new(lut),
            LoadedLut::Dense { lut, .. } => Box::new(lut),
        }
    }
}

fn scheme_byte(s: KeyScheme) -> u8 {
    match s {
        KeyScheme::Full => 0,
        KeyScheme::Compact => 1,
    }
}

fn scheme_from_byte(b: u8) -> Result<KeyScheme> {
    match b {
        0 => Ok(KeyScheme::Full),
        1 => Ok(KeyScheme::Compact),
        other => Err(Error::LutFormat(format!("unknown key scheme byte {other}"))),
    }
}

fn put_entries<'a, I>(buf: &mut BytesMut, entries: I, count: u64)
where
    I: Iterator<Item = (u128, [f32; 3])> + 'a,
{
    buf.put_u64_le(count);
    for (key, offset) in entries {
        buf.put_u128_le(key);
        for c in offset {
            buf.put_u16_le(f32_to_f16_bits(c));
        }
    }
}

/// Serializes a sparse LUT.
pub fn encode_sparse(lut: &SparseLut, header: LutHeader) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + lut.populated() * 22);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(0);
    buf.put_u8(scheme_byte(header.scheme));
    buf.put_u8(header.receptive_field as u8);
    buf.put_u16_le(header.bins as u16);
    buf.put_u128_le(0);
    put_entries(&mut buf, lut.iter(), lut.populated() as u64);
    buf.freeze()
}

/// Serializes a dense LUT (only populated entries are written).
pub fn encode_dense(lut: &DenseLut, header: LutHeader) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + lut.populated() * 22);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(1);
    buf.put_u8(scheme_byte(header.scheme));
    buf.put_u8(header.receptive_field as u8);
    buf.put_u16_le(header.bins as u16);
    buf.put_u128_le(lut.key_space());
    put_entries(&mut buf, lut.iter(), lut.populated() as u64);
    buf.freeze()
}

/// Deserializes a LUT produced by [`encode_sparse`] or [`encode_dense`].
///
/// # Errors
/// Returns [`Error::LutFormat`] for truncated or malformed input.
pub fn decode(mut data: &[u8]) -> Result<LoadedLut> {
    if data.len() < 4 + 1 + 1 + 1 + 1 + 2 + 16 + 8 {
        return Err(Error::LutFormat("buffer shorter than header".into()));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(Error::LutFormat(format!("bad magic {magic:?}")));
    }
    let version = data.get_u8();
    if version != VERSION {
        return Err(Error::LutFormat(format!("unsupported version {version}")));
    }
    let backend = data.get_u8();
    let scheme = scheme_from_byte(data.get_u8())?;
    let receptive_field = usize::from(data.get_u8());
    let bins = usize::from(data.get_u16_le());
    let key_space = data.get_u128_le();
    let count = data.get_u64_le() as usize;
    if data.remaining() < count * 22 {
        return Err(Error::LutFormat(format!(
            "expected {} entry bytes, found {}",
            count * 22,
            data.remaining()
        )));
    }
    let header = LutHeader {
        scheme,
        receptive_field,
        bins,
    };
    match backend {
        0 => {
            let mut lut = SparseLut::with_capacity(count);
            for _ in 0..count {
                let key = data.get_u128_le();
                let offset = read_offset(&mut data);
                lut.set(key, offset)?;
            }
            Ok(LoadedLut::Sparse { header, lut })
        }
        1 => {
            if key_space == 0 {
                return Err(Error::LutFormat("dense lut with zero key space".into()));
            }
            let mut lut = DenseLut::with_budget(key_space, u128::MAX)?;
            for _ in 0..count {
                let key = data.get_u128_le();
                let offset = read_offset(&mut data);
                lut.set(key, offset)?;
            }
            Ok(LoadedLut::Dense { header, lut })
        }
        other => Err(Error::LutFormat(format!("unknown backend byte {other}"))),
    }
}

fn read_offset(data: &mut &[u8]) -> [f32; 3] {
    [
        super::f16::f16_bits_to_f32(data.get_u16_le()),
        super::f16::f16_bits_to_f32(data.get_u16_le()),
        super::f16::f16_bits_to_f32(data.get_u16_le()),
    ]
}

/// Writes a sparse LUT to a `.vlut` file.
///
/// # Errors
/// Propagates any underlying I/O error.
pub fn write_sparse<P: AsRef<Path>>(lut: &SparseLut, header: LutHeader, path: P) -> Result<()> {
    let mut file = File::create(path)?;
    file.write_all(&encode_sparse(lut, header))?;
    Ok(())
}

/// Writes a dense LUT to a `.vlut` file.
///
/// # Errors
/// Propagates any underlying I/O error.
pub fn write_dense<P: AsRef<Path>>(lut: &DenseLut, header: LutHeader, path: P) -> Result<()> {
    let mut file = File::create(path)?;
    file.write_all(&encode_dense(lut, header))?;
    Ok(())
}

/// Reads a `.vlut` file written by [`write_sparse`] or [`write_dense`].
///
/// # Errors
/// Propagates I/O errors and format errors.
pub fn read_lut<P: AsRef<Path>>(path: P) -> Result<LoadedLut> {
    let mut data = Vec::new();
    File::open(path)?.read_to_end(&mut data)?;
    decode(&data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> LutHeader {
        LutHeader {
            scheme: KeyScheme::Full,
            receptive_field: 4,
            bins: 128,
        }
    }

    #[test]
    fn sparse_roundtrip() {
        let mut lut = SparseLut::new();
        lut.set(1, [0.5, -0.5, 0.25]).unwrap();
        lut.set(u128::MAX / 2, [0.0, 1.0, 0.0]).unwrap();
        let bytes = encode_sparse(&lut, header());
        let loaded = decode(&bytes).unwrap();
        assert_eq!(loaded.header(), header());
        let back = loaded.as_lut();
        assert_eq!(back.populated(), 2);
        assert_eq!(back.get(1), Some([0.5, -0.5, 0.25]));
        assert_eq!(back.backend_name(), "sparse");
    }

    #[test]
    fn dense_roundtrip() {
        let mut lut = DenseLut::new(256).unwrap();
        lut.set(3, [0.125, 0.25, -1.0]).unwrap();
        lut.set(255, [1.0, 1.0, 1.0]).unwrap();
        let h = LutHeader {
            scheme: KeyScheme::Compact,
            receptive_field: 4,
            bins: 4,
        };
        let bytes = encode_dense(&lut, h);
        let loaded = decode(&bytes).unwrap();
        assert_eq!(loaded.header(), h);
        assert_eq!(loaded.as_lut().populated(), 2);
        assert_eq!(loaded.as_lut().get(3), Some([0.125, 0.25, -1.0]));
        assert_eq!(loaded.as_lut().backend_name(), "dense");
    }

    #[test]
    fn file_roundtrip() {
        let mut lut = SparseLut::new();
        for i in 0..50u128 {
            lut.set(i * 7, [i as f32 * 0.01, 0.0, -0.25]).unwrap();
        }
        let dir = std::env::temp_dir().join("volut_lut_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("table.vlut");
        write_sparse(&lut, header(), &path).unwrap();
        let loaded = read_lut(&path).unwrap();
        assert_eq!(loaded.as_lut().populated(), 50);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(decode(b"short").is_err());
        let mut lut = SparseLut::new();
        lut.set(1, [0.0; 3]).unwrap();
        let bytes = encode_sparse(&lut, header());
        // Corrupt the magic.
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert!(decode(&bad).is_err());
        // Truncate the entries.
        assert!(decode(&bytes[..bytes.len() - 4]).is_err());
        // Corrupt the backend byte.
        let mut bad = bytes.to_vec();
        bad[5] = 9;
        assert!(decode(&bad).is_err());
    }

    #[test]
    fn into_boxed_lut_preserves_contents() {
        let mut lut = SparseLut::new();
        lut.set(77, [0.5, 0.5, 0.5]).unwrap();
        let boxed = decode(&encode_sparse(&lut, header()))
            .unwrap()
            .into_boxed_lut();
        assert_eq!(boxed.get(77), Some([0.5, 0.5, 0.5]));
    }
}

//! LUT construction: transferring the trained refinement network into a
//! lookup table (Eq. 6).

use super::dense::DenseLut;
use super::sparse::SparseLut;
use super::Lut;
use crate::config::SrConfig;
use crate::encoding::{KeyScheme, PositionEncoder};
use crate::error::Error;
use crate::nn::mlp::Mlp;
use crate::nn::train::TrainingSet;
use crate::Result;
use std::collections::HashMap;

/// Builds LUTs from a trained refinement network.
///
/// Two construction modes are supported:
/// * **Distillation** from observed samples ([`LutBuilder::distill_sparse`] /
///   [`LutBuilder::distill_dense`]): every neighborhood seen in the training
///   data is encoded, run through the network, and the resulting offset is
///   stored under that key (duplicate keys average their offsets). This is
///   how large-key-space configurations stay practical.
/// * **Exhaustive enumeration** ([`LutBuilder::enumerate_dense`]): for small
///   key spaces every possible key is materialized — the exact construction
///   of Eq. 6.
#[derive(Debug, Clone)]
pub struct LutBuilder {
    encoder: PositionEncoder,
}

impl LutBuilder {
    /// Creates a builder for the given configuration and key scheme.
    ///
    /// # Errors
    /// Returns [`Error::InvalidConfig`] when the configuration is invalid.
    pub fn new(config: &SrConfig, scheme: KeyScheme) -> Result<Self> {
        Ok(Self {
            encoder: PositionEncoder::new(config, scheme)?,
        })
    }

    /// The position encoder used for keying.
    pub fn encoder(&self) -> &PositionEncoder {
        &self.encoder
    }

    /// Checks that `mlp`'s input dimension matches the encoder.
    fn check_network(&self, mlp: &Mlp) -> Result<()> {
        let expected = self.encoder.receptive_field() * 3;
        if mlp.input_dim() != expected {
            return Err(Error::InvalidConfig(format!(
                "network input dimension {} does not match receptive field {} x 3",
                mlp.input_dim(),
                self.encoder.receptive_field()
            )));
        }
        if mlp.output_dim() != 3 {
            return Err(Error::InvalidConfig(format!(
                "refinement network must output 3 values, found {}",
                mlp.output_dim()
            )));
        }
        Ok(())
    }

    /// Runs the network over every sample and accumulates per-key mean offsets.
    fn accumulate(
        &self,
        mlp: &Mlp,
        samples: &TrainingSet,
    ) -> Result<HashMap<u128, ([f64; 3], u32)>> {
        self.check_network(mlp)?;
        if samples.is_empty() {
            return Err(Error::Training(
                "cannot distill a lut from an empty sample set".into(),
            ));
        }
        let mut acc: HashMap<u128, ([f64; 3], u32)> = HashMap::new();
        for input in &samples.inputs {
            let key = self.encoder.key_from_features(input)?;
            let out = mlp.forward(input);
            let entry = acc.entry(key).or_insert(([0.0; 3], 0));
            for (slot, &v) in entry.0.iter_mut().zip(out.iter()) {
                *slot += f64::from(v);
            }
            entry.1 += 1;
        }
        Ok(acc)
    }

    /// Distills the network into a sparse LUT using the neighborhoods
    /// observed in `samples`.
    ///
    /// # Errors
    /// Fails when the network shape does not match the encoder or `samples`
    /// is empty.
    pub fn distill_sparse(&self, mlp: &Mlp, samples: &TrainingSet) -> Result<SparseLut> {
        let acc = self.accumulate(mlp, samples)?;
        let mut lut = SparseLut::with_capacity(acc.len());
        for (key, (sum, count)) in acc {
            let n = f64::from(count);
            lut.set(
                key,
                [
                    (sum[0] / n) as f32,
                    (sum[1] / n) as f32,
                    (sum[2] / n) as f32,
                ],
            )?;
        }
        Ok(lut)
    }

    /// Distills the network into a dense LUT (compact key scheme
    /// recommended) using the neighborhoods observed in `samples`.
    ///
    /// # Errors
    /// Fails when the key space exceeds `byte_budget`, the network shape is
    /// wrong, or `samples` is empty.
    pub fn distill_dense(
        &self,
        mlp: &Mlp,
        samples: &TrainingSet,
        byte_budget: u128,
    ) -> Result<DenseLut> {
        let acc = self.accumulate(mlp, samples)?;
        let mut lut = DenseLut::with_budget(self.encoder.key_space(), byte_budget)?;
        for (key, (sum, count)) in acc {
            let n = f64::from(count);
            lut.set(
                key,
                [
                    (sum[0] / n) as f32,
                    (sum[1] / n) as f32,
                    (sum[2] / n) as f32,
                ],
            )?;
        }
        Ok(lut)
    }

    /// Exhaustively enumerates every key of a full-scheme encoder and stores
    /// the network's prediction for each — the literal construction of
    /// Eq. 6. Only permitted when the dense table fits in `byte_budget`.
    ///
    /// # Errors
    /// Fails for compact-scheme encoders, oversized key spaces, or a
    /// mismatched network.
    pub fn enumerate_dense(&self, mlp: &Mlp, byte_budget: u128) -> Result<DenseLut> {
        self.check_network(mlp)?;
        if self.encoder.scheme() != KeyScheme::Full {
            return Err(Error::InvalidConfig(
                "exhaustive enumeration requires the full key scheme".into(),
            ));
        }
        let space = self.encoder.key_space();
        let mut lut = DenseLut::with_budget(space, byte_budget)?;
        for key in 0..space {
            let features = self.encoder.features_from_key(key)?;
            let out = mlp.forward(&features);
            lut.set(key, [out[0], out[1], out[2]])?;
        }
        Ok(lut)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::train::{build_training_set, RefinementTrainer, TrainConfig};
    use volut_pointcloud::synthetic;

    fn trained_network(config: &SrConfig) -> (Mlp, TrainingSet) {
        let gt = synthetic::sphere(1200, 1.0, 1);
        let set = build_training_set(&gt, 0.5, config, KeyScheme::Full, 3).unwrap();
        let train_cfg = TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        };
        let mut trainer = RefinementTrainer::new(config, train_cfg).unwrap();
        trainer.train(&set).unwrap();
        (trainer.into_network(), set)
    }

    #[test]
    fn distill_sparse_produces_populated_lut() {
        let config = SrConfig::default();
        let (mlp, set) = trained_network(&config);
        let builder = LutBuilder::new(&config, KeyScheme::Full).unwrap();
        let lut = builder.distill_sparse(&mlp, &set).unwrap();
        assert!(lut.populated() > 0);
        assert!(lut.populated() <= set.len());
        // Every key stored came from a sample; look one up.
        let key = builder.encoder().key_from_features(&set.inputs[0]).unwrap();
        assert!(lut.get(key).is_some());
    }

    #[test]
    fn distill_dense_with_compact_scheme() {
        let config = SrConfig {
            bins: 16,
            ..SrConfig::default()
        };
        let gt = synthetic::sphere(800, 1.0, 2);
        let set = build_training_set(&gt, 0.5, &config, KeyScheme::Compact, 5).unwrap();
        let mut trainer = RefinementTrainer::new(
            &config,
            TrainConfig {
                epochs: 2,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        trainer.train(&set).unwrap();
        let mlp = trainer.into_network();
        let builder = LutBuilder::new(&config, KeyScheme::Compact).unwrap();
        // 16^4 = 65536 entries * 6 bytes fits easily.
        let lut = builder
            .distill_dense(&mlp, &set, DenseLut::DEFAULT_BYTE_BUDGET)
            .unwrap();
        assert!(lut.populated() > 0);
        assert_eq!(lut.key_space(), 16u128.pow(4));
    }

    #[test]
    fn enumerate_dense_covers_whole_key_space() {
        // Tiny configuration: n = 2, b = 4 -> 4^6 = 4096 keys.
        let config = SrConfig {
            receptive_field: 2,
            bins: 4,
            ..SrConfig::default()
        };
        let mlp = Mlp::new(&[6, 8, 3], 1);
        let builder = LutBuilder::new(&config, KeyScheme::Full).unwrap();
        let lut = builder
            .enumerate_dense(&mlp, DenseLut::DEFAULT_BYTE_BUDGET)
            .unwrap();
        assert_eq!(lut.populated() as u128, builder.encoder().key_space());
        assert!(lut.get(0).is_some());
        assert!(lut.get(builder.encoder().key_space() - 1).is_some());
    }

    #[test]
    fn enumerate_rejects_compact_scheme_and_big_spaces() {
        let config = SrConfig {
            receptive_field: 2,
            bins: 4,
            ..SrConfig::default()
        };
        let mlp = Mlp::new(&[6, 8, 3], 1);
        let builder = LutBuilder::new(&config, KeyScheme::Compact).unwrap();
        assert!(builder
            .enumerate_dense(&mlp, DenseLut::DEFAULT_BYTE_BUDGET)
            .is_err());
        let big = SrConfig::default();
        let big_mlp = Mlp::new(&[12, 8, 3], 1);
        let builder = LutBuilder::new(&big, KeyScheme::Full).unwrap();
        assert!(builder
            .enumerate_dense(&big_mlp, DenseLut::DEFAULT_BYTE_BUDGET)
            .is_err());
    }

    #[test]
    fn mismatched_network_is_rejected() {
        let config = SrConfig::default();
        let (_, set) = trained_network(&config);
        let wrong = Mlp::new(&[9, 8, 3], 1);
        let builder = LutBuilder::new(&config, KeyScheme::Full).unwrap();
        assert!(builder.distill_sparse(&wrong, &set).is_err());
        let wrong_out = Mlp::new(&[12, 8, 2], 1);
        assert!(builder.distill_sparse(&wrong_out, &set).is_err());
        assert!(builder
            .distill_sparse(&Mlp::new(&[12, 8, 3], 1), &TrainingSet::default())
            .is_err());
    }

    #[test]
    fn distilled_offsets_match_network_predictions_for_unique_keys() {
        let config = SrConfig::default();
        let (mlp, set) = trained_network(&config);
        let builder = LutBuilder::new(&config, KeyScheme::Full).unwrap();
        let lut = builder.distill_sparse(&mlp, &set).unwrap();
        // For a key that appears exactly once, the stored offset equals the
        // network output (up to f16 rounding).
        let mut key_counts = std::collections::HashMap::new();
        for input in &set.inputs {
            *key_counts
                .entry(builder.encoder().key_from_features(input).unwrap())
                .or_insert(0u32) += 1;
        }
        let mut checked = 0;
        for input in &set.inputs {
            let key = builder.encoder().key_from_features(input).unwrap();
            if key_counts[&key] == 1 {
                let expected = mlp.forward(input);
                let stored = lut.get(key).unwrap();
                for c in 0..3 {
                    assert!((stored[c] - expected[c]).abs() < 5e-3);
                }
                checked += 1;
                if checked > 10 {
                    break;
                }
            }
        }
        assert!(checked > 0, "expected at least one unique key");
    }
}

//! Dense (flat-array) LUT storage for the compact key scheme.
//!
//! Like [`super::SparseLut`], the dense table overrides [`Lut::get_batch`]
//! with a prefetched block probe: a `b = 32`, `n = 4` table is ~6 MB, far
//! beyond L2, so batched refinement is bounded by DRAM latency. Prefetching
//! the occupancy word and offset triple of a whole block of keys before
//! decoding any of them overlaps those misses.

use super::f16::{f16_bits_to_f32, f32_to_f16_bits};
use super::{prefetch_read, Lut, Offset};
use crate::error::Error;
use crate::Result;

/// Dense LUT: a flat array of `key_space` entries, three `float16` offsets
/// each, plus an occupancy bitmap.
///
/// This is the storage layout whose footprint Table 1 analyzes. Because a
/// `b = 128`, `n = 4` table needs ~1.6 GB, dense storage is only allowed up
/// to a configurable byte budget; larger configurations should use
/// [`super::SparseLut`].
///
/// # Example
///
/// ```
/// use volut_core::lut::{dense::DenseLut, Lut};
/// let mut lut = DenseLut::new(1 << 12).unwrap();
/// lut.set(42, [0.1, -0.2, 0.05]).unwrap();
/// let got = lut.get(42).unwrap();
/// assert!((got[0] - 0.1).abs() < 1e-3);
/// assert!(lut.get(43).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct DenseLut {
    /// `float16` bit patterns, 3 per entry.
    offsets: Vec<u16>,
    /// One bit per entry marking populated slots.
    occupancy: Vec<u64>,
    key_space: u128,
    populated: usize,
}

impl DenseLut {
    /// Default maximum allowed allocation: 256 MiB of offset storage.
    pub const DEFAULT_BYTE_BUDGET: u128 = 256 * 1024 * 1024;

    /// Creates an empty dense LUT covering `key_space` keys, enforcing the
    /// default byte budget.
    ///
    /// # Errors
    /// Returns [`Error::LutFormat`] when the table would exceed the budget.
    pub fn new(key_space: u128) -> Result<Self> {
        Self::with_budget(key_space, Self::DEFAULT_BYTE_BUDGET)
    }

    /// Creates an empty dense LUT with an explicit byte budget for the
    /// offset storage.
    ///
    /// # Errors
    /// Returns [`Error::LutFormat`] when `key_space` is zero or the required
    /// storage exceeds `byte_budget`.
    pub fn with_budget(key_space: u128, byte_budget: u128) -> Result<Self> {
        if key_space == 0 {
            return Err(Error::LutFormat(
                "dense lut key space must be non-zero".into(),
            ));
        }
        let bytes = key_space.saturating_mul(6);
        if bytes > byte_budget {
            return Err(Error::LutFormat(format!(
                "dense lut of {key_space} entries needs {bytes} bytes, exceeding the budget of {byte_budget}; use a sparse lut or fewer bins"
            )));
        }
        let n = key_space as usize;
        Ok(Self {
            offsets: vec![0u16; n * 3],
            occupancy: vec![0u64; n.div_ceil(64)],
            key_space,
            populated: 0,
        })
    }

    /// The number of addressable keys.
    pub fn key_space(&self) -> u128 {
        self.key_space
    }

    /// Block size of the prefetched batch probe.
    pub const PROBE_BLOCK: usize = 16;

    /// Looks up a whole block of keys, prefetching the occupancy word and
    /// offset storage of every in-range key before reading any of them so
    /// the cache misses overlap. `out[i]` is `Some(offset)` when `keys[i]`
    /// is populated.
    ///
    /// # Panics
    /// Panics when `out` is shorter than `keys`.
    pub fn get_batch(&self, keys: &[u128], out: &mut [Option<Offset>]) {
        assert!(out.len() >= keys.len(), "output buffer too short");
        for block_start in (0..keys.len()).step_by(Self::PROBE_BLOCK) {
            let block_end = (block_start + Self::PROBE_BLOCK).min(keys.len());
            // Pass 1: issue prefetches for every in-range key's offsets.
            // The occupancy bitmap is 48x smaller than the offset storage
            // and is usually cache-resident already, so only the offset
            // triple is worth a prefetch slot.
            for &key in &keys[block_start..block_end] {
                if key < self.key_space {
                    prefetch_read(&self.offsets[key as usize * 3]);
                }
            }
            // Pass 2: decode (the slots are now in flight / resident).
            for (slot, &key) in out[block_start..block_end]
                .iter_mut()
                .zip(keys[block_start..block_end].iter())
            {
                *slot = if key < self.key_space {
                    let idx = key as usize;
                    self.is_occupied(idx).then(|| self.read(idx))
                } else {
                    None
                };
            }
        }
    }

    fn is_occupied(&self, idx: usize) -> bool {
        (self.occupancy[idx / 64] >> (idx % 64)) & 1 == 1
    }

    fn mark_occupied(&mut self, idx: usize) {
        self.occupancy[idx / 64] |= 1 << (idx % 64);
    }

    /// Iterates over `(key, offset)` pairs of populated entries.
    pub fn iter(&self) -> impl Iterator<Item = (u128, Offset)> + '_ {
        (0..self.key_space as usize).filter_map(move |i| {
            if self.is_occupied(i) {
                Some((i as u128, self.read(i)))
            } else {
                None
            }
        })
    }

    fn read(&self, idx: usize) -> Offset {
        [
            f16_bits_to_f32(self.offsets[idx * 3]),
            f16_bits_to_f32(self.offsets[idx * 3 + 1]),
            f16_bits_to_f32(self.offsets[idx * 3 + 2]),
        ]
    }
}

impl Lut for DenseLut {
    fn get(&self, key: u128) -> Option<Offset> {
        if key >= self.key_space {
            return None;
        }
        let idx = key as usize;
        if !self.is_occupied(idx) {
            return None;
        }
        Some(self.read(idx))
    }

    fn set(&mut self, key: u128, offset: Offset) -> Result<()> {
        if key >= self.key_space {
            return Err(Error::LutFormat(format!(
                "key {key} outside dense lut key space {}",
                self.key_space
            )));
        }
        let idx = key as usize;
        self.offsets[idx * 3] = f32_to_f16_bits(offset[0]);
        self.offsets[idx * 3 + 1] = f32_to_f16_bits(offset[1]);
        self.offsets[idx * 3 + 2] = f32_to_f16_bits(offset[2]);
        if !self.is_occupied(idx) {
            self.mark_occupied(idx);
            self.populated += 1;
        }
        Ok(())
    }

    fn get_batch(&self, keys: &[u128], out: &mut [Option<Offset>]) {
        DenseLut::get_batch(self, keys, out);
    }

    fn prefetch(&self, key: u128) {
        if key < self.key_space {
            let idx = key as usize;
            prefetch_read(&self.occupancy[idx / 64]);
            prefetch_read(&self.offsets[idx * 3]);
        }
    }

    fn populated(&self) -> usize {
        self.populated
    }

    fn memory_bytes(&self) -> usize {
        self.offsets.len() * 2 + self.occupancy.len() * 8
    }

    fn backend_name(&self) -> &'static str {
        "dense"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip_with_f16_precision() {
        let mut lut = DenseLut::new(100).unwrap();
        lut.set(7, [0.25, -0.5, 1.0]).unwrap();
        assert_eq!(lut.get(7), Some([0.25, -0.5, 1.0]));
        assert_eq!(lut.populated(), 1);
        // Overwrite does not increase the population count.
        lut.set(7, [0.1, 0.1, 0.1]).unwrap();
        assert_eq!(lut.populated(), 1);
    }

    #[test]
    fn misses_return_none() {
        let lut = DenseLut::new(16).unwrap();
        assert!(lut.get(3).is_none());
        assert!(lut.get(999).is_none());
    }

    #[test]
    fn out_of_range_set_is_rejected() {
        let mut lut = DenseLut::new(8).unwrap();
        assert!(lut.set(8, [0.0; 3]).is_err());
    }

    #[test]
    fn budget_is_enforced() {
        // 128^4 entries * 6 bytes ≈ 1.6 GB exceeds the default budget.
        assert!(DenseLut::new(128u128.pow(4)).is_err());
        assert!(DenseLut::with_budget(1 << 20, 10 * 1024 * 1024).is_ok());
        assert!(DenseLut::new(0).is_err());
    }

    #[test]
    fn memory_accounting_matches_layout() {
        let lut = DenseLut::new(1024).unwrap();
        assert_eq!(lut.memory_bytes(), 1024 * 6 + (1024 / 64) * 8);
        assert_eq!(lut.backend_name(), "dense");
    }

    #[test]
    fn get_batch_matches_get() {
        let mut lut = DenseLut::new(1 << 12).unwrap();
        for key in (0..1u128 << 12).step_by(3) {
            lut.set(key, [0.125, -0.25, 0.5]).unwrap();
        }
        // Mix of populated, unpopulated and out-of-range keys, spanning
        // multiple probe blocks.
        let keys: Vec<u128> = (0..500u128).map(|i| i * 11).collect();
        let mut batch = vec![None; keys.len()];
        lut.get_batch(&keys, &mut batch);
        for (i, &key) in keys.iter().enumerate() {
            assert_eq!(batch[i], lut.get(key), "key {key}");
        }
    }

    #[test]
    fn iteration_yields_only_populated() {
        let mut lut = DenseLut::new(64).unwrap();
        lut.set(1, [1.0, 0.0, 0.0]).unwrap();
        lut.set(63, [0.0, 1.0, 0.0]).unwrap();
        let entries: Vec<(u128, Offset)> = lut.iter().collect();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].0, 1);
        assert_eq!(entries[1].0, 63);
    }
}

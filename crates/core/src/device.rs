//! Device cost models.
//!
//! The paper evaluates on three machines (a Xeon server, an i9 + RTX 3080Ti
//! desktop, and an Orange Pi 5B standing in for a Meta Quest 3). None of
//! that hardware is available to this reproduction, so per-device latency is
//! *modeled*: a [`DeviceProfile`] converts host-measured stage durations into
//! simulated durations via per-stage scale factors calibrated to the
//! relative throughput of the paper's hardware (see DESIGN.md §2). The
//! cross-device *ratios* — which is what the figures compare — are preserved
//! even though absolute numbers depend on the host.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// The pipeline stage a duration belongs to; different stages scale
/// differently across devices (e.g. a GPU accelerates the embarrassingly
/// parallel kNN/interpolation far more than it accelerates a table lookup
/// bound by memory latency).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StageKind {
    /// Neighbor search (octree / k-d tree traversal).
    Knn,
    /// Midpoint generation and bookkeeping.
    Interpolation,
    /// Color assignment.
    Colorization,
    /// LUT lookups.
    LutLookup,
    /// Neural-network inference.
    NnInference,
    /// Generic serial CPU work (decode, protocol handling).
    SerialCpu,
}

/// A device latency/memory model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable device name.
    pub name: String,
    /// Scale factor applied to host durations for parallel geometry stages
    /// (kNN, interpolation, colorization). Values < 1 mean faster than host.
    pub parallel_scale: f64,
    /// Scale factor for LUT lookups (memory-latency bound).
    pub lookup_scale: f64,
    /// Scale factor for neural-network inference.
    pub nn_scale: f64,
    /// Scale factor for serial CPU work.
    pub serial_scale: f64,
    /// Total device memory available to the client, in GiB.
    pub memory_gib: f64,
}

impl DeviceProfile {
    /// The paper's desktop client: Intel i9-10900X + NVIDIA RTX 3080Ti.
    ///
    /// Geometry kernels and NN inference run on the GPU (large speedup over
    /// a laptop-class host CPU); LUT lookups are memory-bound and gain less.
    pub fn desktop_3080ti() -> Self {
        Self {
            name: "Desktop (i9-10900X + RTX 3080Ti)".to_string(),
            parallel_scale: 0.12,
            lookup_scale: 0.35,
            nn_scale: 0.04,
            serial_scale: 0.8,
            memory_gib: 32.0,
        }
    }

    /// The paper's mobile client: Orange Pi 5B (RK3588S), comparable to a
    /// Meta Quest 3. Everything runs on a weak CPU/NPU.
    pub fn orange_pi() -> Self {
        Self {
            name: "Orange Pi 5B (RK3588S)".to_string(),
            parallel_scale: 2.0,
            lookup_scale: 1.5,
            nn_scale: 9.0,
            serial_scale: 2.5,
            memory_gib: 8.0,
        }
    }

    /// The paper's server: Intel Xeon Gold 6230.
    pub fn xeon_server() -> Self {
        Self {
            name: "Server (Xeon Gold 6230)".to_string(),
            parallel_scale: 0.9,
            lookup_scale: 1.0,
            nn_scale: 1.0,
            serial_scale: 1.0,
            memory_gib: 32.0,
        }
    }

    /// The host this code is actually running on (identity scaling).
    pub fn host() -> Self {
        Self {
            name: "Host (measured)".to_string(),
            parallel_scale: 1.0,
            lookup_scale: 1.0,
            nn_scale: 1.0,
            serial_scale: 1.0,
            memory_gib: 16.0,
        }
    }

    /// Scale factor for a stage kind.
    pub fn scale_for(&self, stage: StageKind) -> f64 {
        match stage {
            StageKind::Knn | StageKind::Interpolation | StageKind::Colorization => {
                self.parallel_scale
            }
            StageKind::LutLookup => self.lookup_scale,
            StageKind::NnInference => self.nn_scale,
            StageKind::SerialCpu => self.serial_scale,
        }
    }

    /// Converts a host-measured duration for `stage` into this device's
    /// simulated duration.
    pub fn scale_duration(&self, stage: StageKind, host: Duration) -> Duration {
        Duration::from_secs_f64(host.as_secs_f64() * self.scale_for(stage))
    }

    /// Converts a per-frame duration into frames per second.
    pub fn fps(duration: Duration) -> f64 {
        let s = duration.as_secs_f64();
        if s <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / s
        }
    }

    /// Returns `true` when a resident set of `bytes` fits in device memory,
    /// leaving `headroom_fraction` of the memory free for the rest of the
    /// client (renderer, OS, buffers).
    pub fn fits_in_memory(&self, bytes: u128, headroom_fraction: f64) -> bool {
        let budget =
            self.memory_gib * (1.0 - headroom_fraction.clamp(0.0, 0.95)) * 1024.0 * 1024.0 * 1024.0;
        (bytes as f64) <= budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_expected_ordering() {
        let desktop = DeviceProfile::desktop_3080ti();
        let pi = DeviceProfile::orange_pi();
        // The desktop is faster than the Orange Pi in every stage.
        for stage in [
            StageKind::Knn,
            StageKind::Interpolation,
            StageKind::LutLookup,
            StageKind::NnInference,
            StageKind::SerialCpu,
        ] {
            assert!(desktop.scale_for(stage) < pi.scale_for(stage), "{stage:?}");
        }
        // GPU NN acceleration is relatively larger than its LUT acceleration,
        // which is what makes Yuzu viable on desktop but not on mobile.
        assert!(
            desktop.scale_for(StageKind::NnInference) < desktop.scale_for(StageKind::LutLookup)
        );
    }

    #[test]
    fn scaling_math() {
        let pi = DeviceProfile::orange_pi();
        let host = Duration::from_millis(10);
        let scaled = pi.scale_duration(StageKind::Knn, host);
        assert!((scaled.as_secs_f64() - 0.010 * pi.parallel_scale).abs() < 1e-9);
        assert_eq!(
            DeviceProfile::host().scale_duration(StageKind::Knn, host),
            host
        );
    }

    #[test]
    fn fps_conversion() {
        assert!((DeviceProfile::fps(Duration::from_millis(33)) - 30.3).abs() < 0.5);
        assert!(DeviceProfile::fps(Duration::ZERO).is_infinite());
    }

    #[test]
    fn memory_fit() {
        let pi = DeviceProfile::orange_pi();
        // A 1.6 GB LUT fits in 8 GiB with 50% headroom.
        assert!(pi.fits_in_memory(1_600_000_000, 0.5));
        // A 201 GB LUT (n=5, b=128) does not.
        assert!(!pi.fits_in_memory(201_000_000_000, 0.5));
    }

    #[test]
    fn profiles_are_cloneable_and_comparable() {
        let p = DeviceProfile::desktop_3080ti();
        assert_eq!(p.clone(), p);
        assert_ne!(p, DeviceProfile::orange_pi());
    }
}

//! The end-to-end two-stage super-resolution pipeline (Figure 3).
//!
//! [`SrPipeline`] glues the pieces together: interpolation (naive or
//! dilated), colorization (performed inside the interpolation stage) and
//! per-point refinement, with per-stage wall-clock timing so the runtime
//! breakdown of Figure 16 can be reproduced.

use crate::config::SrConfig;
use crate::interpolate::{
    DilatedInterpolator, FrameScratch, InterpolationResult, Interpolator, NaiveInterpolator,
    OpCounts,
};
use crate::lut::LookupStats;
use crate::refine::{refine_in_place, refine_rows_in_place, Refiner, RefinerCost};
use crate::Result;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use volut_pointcloud::PointCloud;

/// Monotonic source of pipeline identities: the refined-output cache in a
/// [`FrameScratch`] is only replayed for the pipeline instance that wrote
/// it, so two pipelines (different refiners) sharing one scratch can never
/// cross-contaminate each other's refined tails.
static NEXT_PIPELINE_ID: AtomicU64 = AtomicU64::new(1);

/// Which interpolation implementation the pipeline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum InterpolationMode {
    /// Vanilla kNN midpoint interpolation (baseline).
    Naive,
    /// VoLUT's dilated, octree-accelerated, reuse-enabled interpolation.
    #[default]
    Dilated,
}

/// Wall-clock breakdown of one super-resolution pass.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// Spatial-index (re)build / validation time. Amortized to ~zero on
    /// frames whose geometry matches the scratch-resident cached index.
    pub index_build: Duration,
    /// Neighbor-search query time. This is the frame-dominating kNN
    /// self-join (§4.1); when the batch runs on one worker (single-core
    /// hosts, or the `parallel` feature disabled) the batch layer answers
    /// it with the dual-tree leaf-pair kernel
    /// ([`volut_pointcloud::dualtree`]) through the scratch-resident
    /// [`crate::interpolate::FrameScratch`]; multi-worker batches are
    /// chunked across the single-tree sweep instead (see
    /// `interpolate::batched_knn_into`). The `sr_stage_breakdown` bench
    /// tracks this stage's share release-over-release.
    pub knn: Duration,
    /// Midpoint generation and bookkeeping.
    pub interpolation: Duration,
    /// Color assignment.
    pub colorization: Duration,
    /// Per-point refinement (LUT lookups or NN inference).
    pub refinement: Duration,
}

impl StageTimings {
    /// Total time across all stages.
    pub fn total(&self) -> Duration {
        self.index_build + self.knn + self.interpolation + self.colorization + self.refinement
    }

    /// Fraction of total time spent in a stage; returns 0 for an all-zero breakdown.
    pub fn fraction(&self, stage: Duration) -> f64 {
        let total = self.total().as_secs_f64();
        if total <= 0.0 {
            0.0
        } else {
            stage.as_secs_f64() / total
        }
    }
}

/// Result of one super-resolution pass.
#[derive(Debug, Clone)]
pub struct SrResult {
    /// The upsampled, colorized, refined cloud.
    pub cloud: PointCloud,
    /// Number of input points.
    pub input_points: usize,
    /// Per-stage wall-clock timings measured on the host.
    pub timings: StageTimings,
    /// Interpolation operation counters.
    pub ops: OpCounts,
    /// Per-point refinement cost of the configured refiner.
    pub refiner_cost: RefinerCost,
    /// LUT hit/miss statistics when the refiner is table-based.
    pub lookup_stats: Option<LookupStats>,
    /// Name of the refiner that produced this result.
    pub refiner_name: String,
}

impl SrResult {
    /// Achieved upsampling ratio.
    pub fn achieved_ratio(&self) -> f64 {
        if self.input_points == 0 {
            1.0
        } else {
            self.cloud.len() as f64 / self.input_points as f64
        }
    }

    /// Super-resolution throughput in frames per second implied by the
    /// host-measured total time.
    pub fn host_fps(&self) -> f64 {
        let t = self.timings.total().as_secs_f64();
        if t <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / t
        }
    }
}

/// The two-stage super-resolution pipeline.
///
/// # Example
///
/// ```
/// use volut_core::{SrConfig, SrPipeline, refine::IdentityRefiner};
/// use volut_pointcloud::synthetic;
///
/// # fn main() -> Result<(), volut_core::Error> {
/// let pipeline = SrPipeline::new(SrConfig::default(), Box::new(IdentityRefiner));
/// let low = synthetic::sphere(400, 1.0, 1);
/// let result = pipeline.upsample(&low, 2.5)?;
/// assert_eq!(result.cloud.len(), 1000);
/// # Ok(())
/// # }
/// ```
pub struct SrPipeline {
    config: SrConfig,
    mode: InterpolationMode,
    interpolator: Box<dyn Interpolator>,
    refiner: Box<dyn Refiner>,
    /// Identity stamped on cached refined outputs (see [`NEXT_PIPELINE_ID`]).
    id: u64,
}

impl std::fmt::Debug for SrPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SrPipeline")
            .field("config", &self.config)
            .field("mode", &self.mode)
            .field("refiner", &self.refiner.name())
            .finish()
    }
}

impl SrPipeline {
    /// Creates a pipeline with dilated interpolation and the given refiner.
    pub fn new(config: SrConfig, refiner: Box<dyn Refiner>) -> Self {
        Self::with_mode(config, InterpolationMode::Dilated, refiner)
    }

    /// Creates a pipeline with an explicit interpolation mode.
    pub fn with_mode(config: SrConfig, mode: InterpolationMode, refiner: Box<dyn Refiner>) -> Self {
        let interpolator: Box<dyn Interpolator> = match mode {
            InterpolationMode::Naive => Box::new(NaiveInterpolator),
            InterpolationMode::Dilated => Box::new(DilatedInterpolator),
        };
        Self {
            config,
            mode,
            interpolator,
            refiner,
            id: NEXT_PIPELINE_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Creates a pipeline around a custom [`Interpolator`] implementation.
    /// `reported_mode` is what [`Self::mode`] (and anything keyed off it in
    /// reports) will claim this interpolator behaves like — callers state it
    /// explicitly rather than the pipeline guessing from the name.
    pub fn with_interpolator(
        config: SrConfig,
        reported_mode: InterpolationMode,
        interpolator: Box<dyn Interpolator>,
        refiner: Box<dyn Refiner>,
    ) -> Self {
        Self {
            config,
            mode: reported_mode,
            interpolator,
            refiner,
            id: NEXT_PIPELINE_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &SrConfig {
        &self.config
    }

    /// The interpolation mode in use.
    pub fn mode(&self) -> InterpolationMode {
        self.mode
    }

    /// The refiner's resident memory (model weights or LUT), in bytes.
    pub fn refiner_memory_bytes(&self) -> usize {
        self.refiner.memory_bytes()
    }

    /// Name of the configured refiner.
    pub fn refiner_name(&self) -> &str {
        self.refiner.name()
    }

    /// Upsamples `low` by `ratio` and refines the generated points.
    ///
    /// Allocates fresh working buffers; streaming sessions should prefer
    /// [`Self::upsample_with`] with a long-lived [`FrameScratch`].
    ///
    /// # Errors
    /// Propagates interpolation failures (invalid configuration/ratio,
    /// insufficient points).
    pub fn upsample(&self, low: &PointCloud, ratio: f64) -> Result<SrResult> {
        self.upsample_with(low, ratio, &mut FrameScratch::new())
    }

    /// Upsamples `low` by `ratio`, reusing `scratch`'s buffers for the
    /// neighborhood CSR, the dilated neighbor lists and the refinement
    /// center copy. Repeated calls with the same scratch (one frame after
    /// another in a streaming session) perform no per-point allocations in
    /// the refinement stage and no per-frame re-allocation of the index
    /// bookkeeping once buffers reach steady-state size.
    ///
    /// # Errors
    /// Propagates interpolation failures (invalid configuration/ratio,
    /// insufficient points).
    pub fn upsample_with(
        &self,
        low: &PointCloud,
        ratio: f64,
        scratch: &mut FrameScratch,
    ) -> Result<SrResult> {
        let interp: InterpolationResult =
            self.interpolator
                .interpolate(low, &self.config, ratio, scratch)?;

        let mut timings = StageTimings {
            index_build: interp.timings.index_build,
            knn: interp.timings.knn,
            interpolation: interp.timings.interpolation,
            colorization: interp.timings.colorization,
            refinement: Duration::ZERO,
        };

        // Refinement stage: move every generated point by its looked-up /
        // predicted offset, operating on flat slices — the CSR neighborhood
        // rows index straight into `low`'s position array, so the whole
        // stage performs zero per-point heap allocations. Original points
        // are left untouched.
        //
        // On delta frames the temporal layer first replays the previous
        // frame's refined tail for every generated point it copied forward
        // (index-remapped, bit-identical — the cached positions ARE the
        // previous refined outputs), so only the churn-invalidated subset
        // runs the refiner. The refined tail is then captured as the next
        // frame's replay source, stamped with this pipeline's identity.
        let t0 = Instant::now();
        let original_len = interp.original_len;
        let mut cloud = interp.cloud;
        let FrameScratch {
            temporal,
            centers,
            subset_hoods,
            subset_out,
            ..
        } = scratch;
        if crate::interpolate::temporal::reuse_refined_into(
            temporal,
            self.id,
            &mut cloud,
            original_len,
        ) {
            refine_rows_in_place(
                self.refiner.as_ref(),
                &mut cloud,
                original_len,
                &interp.neighborhoods,
                low.positions(),
                &temporal.plan.fresh_ordinals,
                centers,
                subset_hoods,
                subset_out,
            );
        } else {
            refine_in_place(
                self.refiner.as_ref(),
                &mut cloud,
                original_len,
                &interp.neighborhoods,
                low.positions(),
                centers,
            );
        }
        crate::interpolate::temporal::capture_refined(temporal, self.id, &cloud, original_len);
        timings.refinement = t0.elapsed();

        // Hand the CSR buffer back so the next frame reuses its allocation.
        scratch.recycle_neighborhoods(interp.neighborhoods);

        Ok(SrResult {
            cloud,
            input_points: low.len(),
            timings,
            ops: interp.ops,
            refiner_cost: self.refiner.cost(),
            lookup_stats: self.refiner.lookup_stats(),
            refiner_name: self.refiner.name().to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::KeyScheme;
    use crate::lut::builder::LutBuilder;
    use crate::nn::mlp::Mlp;
    use crate::nn::train::{build_training_set, RefinementTrainer, TrainConfig};
    use crate::refine::{IdentityRefiner, LutRefiner, NnRefiner};
    use volut_pointcloud::{metrics, sampling, synthetic};

    #[test]
    fn identity_pipeline_reaches_ratio_and_tracks_timings() {
        let pipeline = SrPipeline::new(SrConfig::default(), Box::new(IdentityRefiner));
        let low = synthetic::sphere(500, 1.0, 1);
        let r = pipeline.upsample(&low, 3.0).unwrap();
        assert_eq!(r.cloud.len(), 1500);
        assert!((r.achieved_ratio() - 3.0).abs() < 1e-9);
        assert!(r.timings.total() > Duration::ZERO);
        assert!(r.host_fps() > 0.0);
        assert_eq!(r.refiner_name, "identity");
        assert!(r.lookup_stats.is_none());
    }

    #[test]
    fn naive_mode_works_through_pipeline() {
        let pipeline = SrPipeline::with_mode(
            SrConfig::k4d1(),
            InterpolationMode::Naive,
            Box::new(IdentityRefiner),
        );
        let low = synthetic::sphere(300, 1.0, 2);
        let r = pipeline.upsample(&low, 2.0).unwrap();
        assert_eq!(r.cloud.len(), 600);
        assert_eq!(pipeline.mode(), InterpolationMode::Naive);
    }

    #[test]
    fn lut_pipeline_improves_quality_over_identity() {
        // Train on one "video" (sphere), evaluate on the same content type:
        // the LUT-refined result should be at least as good as interpolation
        // alone, and both better than the raw downsampled input.
        let config = SrConfig::default();
        let gt = synthetic::sphere(3000, 1.0, 7);
        let set = build_training_set(&gt, 0.5, &config, KeyScheme::Full, 11).unwrap();
        let mut trainer = RefinementTrainer::new(
            &config,
            TrainConfig {
                epochs: 10,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        trainer.train(&set).unwrap();
        let mlp = trainer.into_network();
        let builder = LutBuilder::new(&config, KeyScheme::Full).unwrap();
        let lut = builder.distill_sparse(&mlp, &set).unwrap();
        let refiner = LutRefiner::from_config(&config, KeyScheme::Full, Box::new(lut)).unwrap();

        let low = sampling::random_downsample_exact(&gt, 1500, 3).unwrap();
        let lut_pipeline = SrPipeline::new(config, Box::new(refiner));
        let id_pipeline = SrPipeline::new(config, Box::new(IdentityRefiner));

        let lut_result = lut_pipeline.upsample(&low, 2.0).unwrap();
        let id_result = id_pipeline.upsample(&low, 2.0).unwrap();

        // Coverage of the ground truth must improve with upsampling, and the
        // LUT-refined result must not be worse than interpolation alone.
        let cover_low = metrics::one_sided_chamfer(&gt, &low);
        let cover_id = metrics::one_sided_chamfer(&gt, &id_result.cloud);
        assert!(cover_id < cover_low);
        let cd_id = metrics::chamfer_distance(&id_result.cloud, &gt);
        let cd_lut = metrics::chamfer_distance(&lut_result.cloud, &gt);
        assert!(
            cd_lut <= cd_id * 1.10,
            "lut ({cd_lut}) should not be much worse than interpolation ({cd_id})"
        );
        // The LUT should actually be hit most of the time on in-distribution data.
        let stats = lut_result.lookup_stats.unwrap();
        assert!(stats.hits > 0);
    }

    #[test]
    fn nn_refiner_pipeline_runs_and_is_slower_than_lut() {
        let config = SrConfig::default();
        let gt = synthetic::torus(1500, 1.0, 0.3, 5);
        let set = build_training_set(&gt, 0.5, &config, KeyScheme::Full, 2).unwrap();
        let mut trainer = RefinementTrainer::new(
            &config,
            TrainConfig {
                epochs: 2,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        trainer.train(&set).unwrap();
        let mlp = trainer.into_network();
        let builder = LutBuilder::new(&config, KeyScheme::Full).unwrap();
        let lut = builder.distill_sparse(&mlp, &set).unwrap();

        let low = sampling::random_downsample_exact(&gt, 700, 1).unwrap();
        let nn_pipeline = SrPipeline::new(
            config,
            Box::new(NnRefiner::from_config(&config, KeyScheme::Full, mlp).unwrap()),
        );
        let lut_pipeline = SrPipeline::new(
            config,
            Box::new(LutRefiner::from_config(&config, KeyScheme::Full, Box::new(lut)).unwrap()),
        );
        let nn_result = nn_pipeline.upsample(&low, 2.0).unwrap();
        let lut_result = lut_pipeline.upsample(&low, 2.0).unwrap();
        assert!(nn_result.refiner_cost.nn_flops_per_point > 0);
        assert_eq!(lut_result.refiner_cost.lut_lookups_per_point, 1);
        // Refinement-by-lookup must not be slower than NN inference.
        assert!(lut_result.timings.refinement <= nn_result.timings.refinement * 3);
    }

    #[test]
    fn stage_fraction_sums_to_one() {
        let pipeline = SrPipeline::new(SrConfig::default(), Box::new(IdentityRefiner));
        let low = synthetic::sphere(400, 1.0, 9);
        let r = pipeline.upsample(&low, 2.0).unwrap();
        let t = r.timings;
        let sum = t.fraction(t.index_build)
            + t.fraction(t.knn)
            + t.fraction(t.interpolation)
            + t.fraction(t.colorization)
            + t.fraction(t.refinement);
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cached_index_is_bit_transparent_and_amortizes_rebuilds() {
        // The scratch-resident index must not change results: repeated and
        // alternating frames through one scratch match fresh-scratch output
        // exactly, and identical geometry is served from the cache.
        let pipeline = SrPipeline::new(SrConfig::default(), Box::new(IdentityRefiner));
        let frame_a = synthetic::sphere(500, 1.0, 31);
        let frame_b = synthetic::torus(500, 1.0, 0.3, 32);
        let mut scratch = crate::interpolate::FrameScratch::new();
        for low in [&frame_a, &frame_a, &frame_b, &frame_a, &frame_a] {
            let fresh = pipeline.upsample(low, 2.0).unwrap();
            let cached = pipeline.upsample_with(low, 2.0, &mut scratch).unwrap();
            assert_eq!(fresh.cloud, cached.cloud);
        }
        let stats = scratch.index_stats();
        // Frames 1, 3 and 4 rebuild (new/changed geometry), 2 and 5 hit.
        assert_eq!(stats.rebuilds, 3, "stats {stats:?}");
        assert_eq!(stats.reuses, 2, "stats {stats:?}");
    }

    #[test]
    fn declared_geometry_generation_skips_content_checks() {
        let pipeline = SrPipeline::new(SrConfig::default(), Box::new(IdentityRefiner));
        let frame = synthetic::sphere(400, 1.0, 33);
        let mut scratch = crate::interpolate::FrameScratch::new();
        scratch.set_geometry_generation(7);
        let a = pipeline.upsample_with(&frame, 2.0, &mut scratch).unwrap();
        let b = pipeline.upsample_with(&frame, 2.0, &mut scratch).unwrap();
        assert_eq!(a.cloud, b.cloud);
        assert_eq!(scratch.index_stats().rebuilds, 1);
        assert_eq!(scratch.index_stats().reuses, 1);
        // Bumping the generation forces revalidation (content still equal,
        // so the rebuild is skipped via the content path).
        scratch.set_geometry_generation(8);
        let c = pipeline.upsample_with(&frame, 2.0, &mut scratch).unwrap();
        assert_eq!(a.cloud, c.cloud);
        assert_eq!(scratch.index_stats().reuses, 2);
    }

    #[test]
    fn scratch_reuse_across_frames_is_transparent() {
        // A streaming session reuses one FrameScratch for every frame; the
        // results must be bit-identical to fresh-allocation upsampling.
        let pipeline = SrPipeline::new(SrConfig::default(), Box::new(IdentityRefiner));
        let mut scratch = crate::interpolate::FrameScratch::new();
        for seed in [21, 22, 23] {
            let low = synthetic::sphere(400, 1.0, seed);
            let fresh = pipeline.upsample(&low, 2.5).unwrap();
            let reused = pipeline.upsample_with(&low, 2.5, &mut scratch).unwrap();
            assert_eq!(fresh.cloud, reused.cloud, "seed {seed}");
        }
    }

    #[test]
    fn custom_interpolator_constructor_reports_mode() {
        use crate::interpolate::{DilatedInterpolator, NaiveInterpolator};
        let naive = SrPipeline::with_interpolator(
            SrConfig::k4d1(),
            InterpolationMode::Naive,
            Box::new(NaiveInterpolator),
            Box::new(IdentityRefiner),
        );
        assert_eq!(naive.mode(), InterpolationMode::Naive);
        let dilated = SrPipeline::with_interpolator(
            SrConfig::default(),
            InterpolationMode::Dilated,
            Box::new(DilatedInterpolator),
            Box::new(IdentityRefiner),
        );
        assert_eq!(dilated.mode(), InterpolationMode::Dilated);
        let low = synthetic::sphere(120, 1.0, 2);
        assert_eq!(dilated.upsample(&low, 2.0).unwrap().cloud.len(), 240);
    }

    #[test]
    fn delta_stream_reuse_is_bit_identical_with_a_real_refiner() {
        // End-to-end property: a streaming session with temporal reuse ON
        // (interpolated outputs, colors AND refined tails replayed across
        // frames) must be bit-identical to the same session with reuse OFF.
        // The NN refiner gives every point a nontrivial, input-dependent
        // offset, so any divergence in a replayed refined tail is caught.
        use volut_pointcloud::synthetic::{self, DeltaStreamConfig};
        let mlp = Mlp::new(&[12, 16, 3], 41);
        for churn in [0.0, 0.1, 0.5] {
            for mode in [InterpolationMode::Dilated, InterpolationMode::Naive] {
                let config = match mode {
                    InterpolationMode::Naive => SrConfig::k4d1(),
                    InterpolationMode::Dilated => SrConfig::default(),
                };
                let refiner =
                    NnRefiner::from_config(&config, KeyScheme::Full, mlp.clone()).unwrap();
                let pipeline = SrPipeline::with_mode(config, mode, Box::new(refiner));
                let base = synthetic::humanoid(1_200, 0.4, 3);
                let frames = synthetic::delta_frame_sequence(
                    &base,
                    4,
                    DeltaStreamConfig {
                        churn,
                        drift: 0.05,
                        jitter: 0.008,
                        seed: churn.to_bits(),
                    },
                );
                let mut on = FrameScratch::new();
                let mut off = FrameScratch::new();
                off.set_incremental(false);
                for (frame_no, frame) in frames.iter().enumerate() {
                    let a = pipeline.upsample_with(frame, 2.0, &mut on).unwrap();
                    let b = pipeline.upsample_with(frame, 2.0, &mut off).unwrap();
                    assert_eq!(
                        a.cloud, b.cloud,
                        "{mode:?} churn {churn} frame {frame_no}: refined clouds diverge"
                    );
                }
            }
        }
    }

    #[test]
    fn steady_stream_recomputes_nothing_after_warmup() {
        // Zero churn collapses to wholesale copies: after the warmup frame,
        // neither interpolation nor refinement touches a single point again.
        let pipeline = SrPipeline::new(SrConfig::default(), Box::new(IdentityRefiner));
        let frame = synthetic::sphere(800, 1.0, 51);
        let mut scratch = FrameScratch::new();
        pipeline.upsample_with(&frame, 2.0, &mut scratch).unwrap();
        let warm = scratch.temporal_stats();
        for _ in 0..3 {
            pipeline.upsample_with(&frame, 2.0, &mut scratch).unwrap();
        }
        let t = scratch.temporal_stats();
        assert_eq!(
            t.gen_points_recomputed, warm.gen_points_recomputed,
            "identical frames must not regenerate any point: {t:?}"
        );
        assert_eq!(
            t.refined_points_recomputed, warm.refined_points_recomputed,
            "identical frames must not re-refine any point: {t:?}"
        );
        assert_eq!(t.gen_points_reused, 3 * 800, "{t:?}");
        assert_eq!(t.refined_points_reused, 3 * 800, "{t:?}");
    }

    #[test]
    fn light_churn_recomputation_is_churn_proportional() {
        // At 5% coherent churn the overwhelming majority of generated points
        // must ride the copy-forward path through interpolation AND
        // refinement — the stage costs track churn, not frame size.
        use volut_pointcloud::synthetic::{self, DeltaStreamConfig};
        let pipeline = SrPipeline::new(SrConfig::default(), Box::new(IdentityRefiner));
        let base = synthetic::humanoid(2_000, 0.2, 17);
        let frames = synthetic::delta_frame_sequence(
            &base,
            4,
            DeltaStreamConfig {
                churn: 0.05,
                drift: 0.03,
                jitter: 0.005,
                seed: 19,
            },
        );
        let mut scratch = FrameScratch::new();
        for frame in &frames {
            pipeline.upsample_with(frame, 2.0, &mut scratch).unwrap();
        }
        let t = scratch.temporal_stats();
        assert!(
            t.gen_points_reused as f64 > t.gen_points_recomputed as f64 * 2.0,
            "5% churn should reuse most generated points: {t:?}"
        );
        assert!(
            t.refined_points_reused as f64 > t.refined_points_recomputed as f64 * 2.0,
            "5% churn should reuse most refined points: {t:?}"
        );
    }

    #[test]
    fn refined_cache_is_not_shared_across_pipelines() {
        // Two pipelines with different refiners share one scratch; the
        // refined-tail cache is stamped per pipeline, so alternating frames
        // must match each pipeline's own cold output exactly.
        let frame = synthetic::sphere(500, 1.0, 61);
        let id_pipe = SrPipeline::new(SrConfig::default(), Box::new(IdentityRefiner));
        let nn_pipe = SrPipeline::new(
            SrConfig::default(),
            Box::new(
                NnRefiner::from_config(
                    &SrConfig::default(),
                    KeyScheme::Full,
                    Mlp::new(&[12, 8, 3], 5),
                )
                .unwrap(),
            ),
        );
        let id_cold = id_pipe.upsample(&frame, 2.0).unwrap();
        let nn_cold = nn_pipe.upsample(&frame, 2.0).unwrap();
        let mut scratch = FrameScratch::new();
        for _ in 0..2 {
            let a = id_pipe.upsample_with(&frame, 2.0, &mut scratch).unwrap();
            assert_eq!(a.cloud, id_cold.cloud);
            let b = nn_pipe.upsample_with(&frame, 2.0, &mut scratch).unwrap();
            assert_eq!(b.cloud, nn_cold.cloud);
        }
    }

    #[test]
    fn invalid_ratio_is_rejected() {
        let pipeline = SrPipeline::new(SrConfig::default(), Box::new(IdentityRefiner));
        let low = synthetic::sphere(100, 1.0, 10);
        assert!(pipeline.upsample(&low, 0.5).is_err());
    }
}

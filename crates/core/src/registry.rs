//! Shared immutable model registry for multi-tenant serving.
//!
//! A production SR server runs thousands of concurrent sessions of a small
//! number of *content items* (videos). The expensive per-content state —
//! the distilled LUT and the refinement network it was distilled from — is
//! identical for every session of one item and is never mutated at serving
//! time, so cloning it per session (what the single-session constructors
//! encourage) multiplies a megabyte-scale table by the session count for
//! zero benefit.
//!
//! This module is the sharing layer:
//!
//! * [`SharedLut`] — a read-only [`Lut`] view over an `Arc`'d table. Every
//!   probe delegates to the shared table (whose `get`/`get_batch` paths
//!   take `&self` and are lock-free), while [`Lut::set`] is refused with a
//!   typed error: tables are built *before* they are published and are
//!   immutable afterwards. One allocation serves every session.
//! * [`ContentModel`] — one content item's immutable artifacts (SR config,
//!   key scheme, LUT, optional refinement MLP) behind `Arc`s, with
//!   constructors for per-session pipelines: [`ContentModel::pipeline`]
//!   probes the shared table (bytes/session ≈ scratch only), while
//!   [`ContentModel::cloned_pipeline`] deep-copies the table — kept solely
//!   as the memory baseline the `server_scaling` bench compares against.
//! * [`ModelRegistry`] — the name → [`ContentModel`] table a server maps
//!   read-only into every session at admission.
//!
//! Sharing never changes results: the LUT serves the same offsets through
//! the `Arc` as through a private copy (pinned by the parity test below),
//! and all shared state is immutable so sessions cannot observe each other.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::config::SrConfig;
use crate::encoding::KeyScheme;
use crate::lut::dense::DenseLut;
use crate::lut::sparse::SparseLut;
use crate::lut::{Lut, Offset};
use crate::nn::mlp::Mlp;
use crate::pipeline::SrPipeline;
use crate::refine::{IdentityRefiner, LutRefiner};
use crate::{Error, Result};

/// Read-only [`Lut`] adapter over a shared table.
///
/// Probes (`get`, `get_batch`, `prefetch`) delegate straight to the shared
/// table; mutation is refused — registries publish finished tables. The
/// adapter is what lets one `Arc`'d allocation back the `Box<dyn Lut>`
/// slot of every session's [`LutRefiner`].
pub struct SharedLut {
    inner: Arc<dyn Lut>,
}

impl SharedLut {
    /// Wraps a shared table in a read-only view.
    pub fn new(inner: Arc<dyn Lut>) -> Self {
        Self { inner }
    }

    /// The shared table.
    pub fn inner(&self) -> &Arc<dyn Lut> {
        &self.inner
    }
}

impl std::fmt::Debug for SharedLut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedLut")
            .field("backend", &self.inner.backend_name())
            .field("populated", &self.inner.populated())
            .field("refs", &Arc::strong_count(&self.inner))
            .finish()
    }
}

impl Lut for SharedLut {
    fn get(&self, key: u128) -> Option<Offset> {
        self.inner.get(key)
    }

    fn get_batch(&self, keys: &[u128], out: &mut [Option<Offset>]) {
        self.inner.get_batch(keys, out);
    }

    fn prefetch(&self, key: u128) {
        self.inner.prefetch(key);
    }

    fn set(&mut self, _key: u128, _offset: Offset) -> Result<()> {
        Err(Error::InvalidConfig(
            "shared LUT is read-only: build and populate the table before publishing it to the \
             registry"
                .into(),
        ))
    }

    fn populated(&self) -> usize {
        self.inner.populated()
    }

    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }

    fn backend_name(&self) -> &'static str {
        self.inner.backend_name()
    }
}

/// The concrete table behind a [`ContentModel`]. Kept as an enum (rather
/// than `Arc<dyn Lut>` alone) so the clone-baseline constructor can
/// deep-copy the table without the `Lut` trait needing a `clone_boxed`
/// method.
#[derive(Debug, Clone)]
enum Table {
    Sparse(Arc<SparseLut>),
    Dense(Arc<DenseLut>),
}

impl Table {
    fn as_shared(&self) -> Arc<dyn Lut> {
        match self {
            Table::Sparse(t) => Arc::clone(t) as Arc<dyn Lut>,
            Table::Dense(t) => Arc::clone(t) as Arc<dyn Lut>,
        }
    }

    fn clone_boxed(&self) -> Box<dyn Lut> {
        match self {
            Table::Sparse(t) => Box::new(SparseLut::clone(t)),
            Table::Dense(t) => Box::new(DenseLut::clone(t)),
        }
    }

    fn memory_bytes(&self) -> usize {
        match self {
            Table::Sparse(t) => t.memory_bytes(),
            Table::Dense(t) => t.memory_bytes(),
        }
    }
}

/// One content item's immutable serving artifacts, shared by every session
/// streaming that item.
#[derive(Debug, Clone)]
pub struct ContentModel {
    name: String,
    config: SrConfig,
    scheme: KeyScheme,
    table: Table,
    network: Option<Arc<Mlp>>,
}

impl ContentModel {
    /// Publishes a content model around a populated sparse LUT.
    pub fn from_sparse(
        name: impl Into<String>,
        config: SrConfig,
        scheme: KeyScheme,
        lut: SparseLut,
        network: Option<Mlp>,
    ) -> Self {
        Self {
            name: name.into(),
            config,
            scheme,
            table: Table::Sparse(Arc::new(lut)),
            network: network.map(Arc::new),
        }
    }

    /// Publishes a content model around a populated dense LUT (the paper's
    /// deployed-table configuration).
    pub fn from_dense(
        name: impl Into<String>,
        config: SrConfig,
        scheme: KeyScheme,
        lut: DenseLut,
        network: Option<Mlp>,
    ) -> Self {
        Self {
            name: name.into(),
            config,
            scheme,
            table: Table::Dense(Arc::new(lut)),
            network: network.map(Arc::new),
        }
    }

    /// The content item's name (registry key).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The SR configuration every session of this item runs.
    pub fn config(&self) -> &SrConfig {
        &self.config
    }

    /// The key scheme the table was built under.
    pub fn scheme(&self) -> KeyScheme {
        self.scheme
    }

    /// The shared refinement network, when one was published.
    pub fn network(&self) -> Option<&Arc<Mlp>> {
        self.network.as_ref()
    }

    /// Bytes held **once** for all sessions of this item: the table plus
    /// the optional network weights. This is the quantity a per-session
    /// clone would multiply by the session count.
    pub fn shared_bytes(&self) -> usize {
        self.table.memory_bytes()
            + self
                .network
                .as_ref()
                .map_or(0, |mlp| mlp.parameter_count() * 4)
    }

    /// A per-session SR pipeline whose refiner probes the **shared** table
    /// through a [`SharedLut`] — constructing one allocates scratch-scale
    /// state only, never a table copy.
    ///
    /// # Errors
    /// Returns an error when the stored configuration is invalid for the
    /// stored key scheme (never for registry-built models).
    pub fn pipeline(&self) -> Result<SrPipeline> {
        let refiner = LutRefiner::from_config(
            &self.config,
            self.scheme,
            Box::new(SharedLut::new(self.table.as_shared())),
        )?;
        Ok(SrPipeline::new(self.config, Box::new(refiner)))
    }

    /// A pipeline with no refinement stage at this item's configuration —
    /// the degraded-path companion (skip-refinement / interpolate-only
    /// rungs) a serving session swaps to under deadline pressure.
    pub fn identity_pipeline(&self) -> SrPipeline {
        SrPipeline::new(self.config, Box::new(IdentityRefiner))
    }

    /// The pre-registry behavior: a pipeline over a **deep copy** of the
    /// table. Kept as the bytes/session baseline the `server_scaling`
    /// bench measures sharing against; serving code should always use
    /// [`Self::pipeline`].
    ///
    /// # Errors
    /// Returns an error when the stored configuration is invalid.
    pub fn cloned_pipeline(&self) -> Result<SrPipeline> {
        let refiner = LutRefiner::from_config(&self.config, self.scheme, self.table.clone_boxed())?;
        Ok(SrPipeline::new(self.config, Box::new(refiner)))
    }

    /// Probe statistics accumulated by shared-table refiners cannot be read
    /// back through the table (stats live in each session's refiner); this
    /// helper documents that the *table itself* is stateless. Returns the
    /// populated-entry count as the only table-level observable.
    pub fn table_entries(&self) -> usize {
        match &self.table {
            Table::Sparse(t) => t.populated(),
            Table::Dense(t) => t.populated(),
        }
    }
}

/// Name → [`ContentModel`] table, mapped read-only by every session of a
/// server. Lookup hands out `Arc` clones: admission is one pointer bump,
/// not a table copy.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    entries: BTreeMap<String, Arc<ContentModel>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a model under its content name, replacing any previous
    /// model of the same name (sessions already holding the old `Arc` keep
    /// serving from it unchanged — immutability makes replacement safe).
    pub fn publish(&mut self, model: ContentModel) -> Arc<ContentModel> {
        let arc = Arc::new(model);
        self.entries
            .insert(arc.name().to_string(), Arc::clone(&arc));
        arc
    }

    /// Looks a content item up by name.
    pub fn get(&self, name: &str) -> Option<Arc<ContentModel>> {
        self.entries.get(name).cloned()
    }

    /// Number of published content items.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes held once across all published models.
    pub fn shared_bytes(&self) -> usize {
        self.entries.values().map(|m| m.shared_bytes()).sum()
    }

    /// Iterates over the published models in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Arc<ContentModel>> {
        self.entries.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volut_pointcloud::synthetic;

    fn toy_model() -> ContentModel {
        let config = SrConfig::default();
        let encoder = crate::encoding::PositionEncoder::new(&config, KeyScheme::Full).unwrap();
        let mut lut = SparseLut::new();
        // Populate keys that real spheres actually hit, so the parity test
        // exercises the hit path, not just misses.
        let cloud = synthetic::sphere(300, 1.0, 7);
        let positions = cloud.positions();
        for i in 0..positions.len() - 4 {
            let neighbors = &positions[i + 1..i + 4];
            if let Ok(encoded) = encoder.encode(positions[i], neighbors) {
                let _ = lut.set(encoded.key, [0.05, -0.02, 0.01]);
            }
        }
        ContentModel::from_sparse("toy", config, KeyScheme::Full, lut, None)
    }

    #[test]
    fn shared_pipeline_matches_cloned_pipeline_bitwise() {
        let model = toy_model();
        let shared = model.pipeline().unwrap();
        let cloned = model.cloned_pipeline().unwrap();
        let low = synthetic::sphere(400, 1.0, 3);
        let a = shared.upsample(&low, 2.0).unwrap();
        let b = cloned.upsample(&low, 2.0).unwrap();
        assert_eq!(a.cloud, b.cloud, "sharing must be bit-transparent");
        // Some probes actually hit so the parity covers the offset path.
        let stats = a.lookup_stats.unwrap();
        assert!(stats.hits + stats.misses > 0);
    }

    #[test]
    fn shared_sessions_do_not_copy_the_table() {
        let model = toy_model();
        let table_bytes = model.shared_bytes();
        assert!(table_bytes > 0);
        // N shared pipelines report the same table bytes (one allocation),
        // and the refiner's memory_bytes sees through the Arc.
        let pipes: Vec<_> = (0..8).map(|_| model.pipeline().unwrap()).collect();
        for p in &pipes {
            assert_eq!(p.refiner_memory_bytes(), table_bytes);
        }
    }

    #[test]
    fn shared_lut_refuses_mutation() {
        let model = toy_model();
        let mut shared = SharedLut::new(model.table.as_shared());
        let before = shared.populated();
        assert!(shared.set(42, [0.0, 0.0, 0.0]).is_err());
        assert_eq!(shared.populated(), before);
    }

    #[test]
    fn registry_publish_and_lookup() {
        let mut registry = ModelRegistry::new();
        assert!(registry.is_empty());
        registry.publish(toy_model());
        let dense = DenseLut::new(1 << 12).unwrap();
        registry.publish(ContentModel::from_dense(
            "dense-item",
            SrConfig::default(),
            KeyScheme::Compact,
            dense,
            Some(Mlp::new(&[12, 16, 3], 9)),
        ));
        assert_eq!(registry.len(), 2);
        let toy = registry.get("toy").unwrap();
        assert_eq!(toy.name(), "toy");
        assert!(registry.get("missing").is_none());
        // Shared bytes sum both tables plus the network weights.
        let dense_model = registry.get("dense-item").unwrap();
        assert!(dense_model.shared_bytes() > (1 << 12) * 6);
        assert_eq!(
            registry.shared_bytes(),
            toy.shared_bytes() + dense_model.shared_bytes()
        );
        // Admission is an Arc clone of the same allocation.
        let again = registry.get("toy").unwrap();
        assert!(Arc::ptr_eq(&toy, &again));
    }

    #[test]
    fn identity_pipeline_shares_config() {
        let model = toy_model();
        let p = model.identity_pipeline();
        assert_eq!(p.config(), model.config());
        assert_eq!(p.refiner_memory_bytes(), 0);
    }
}

//! Yuzu-style baseline: neural point-cloud SR with discrete upsampling
//! ratios (Zhang et al.).
//!
//! Yuzu is the state-of-the-art SR-based volumetric streaming system the
//! paper compares against. Two properties matter for the evaluation and are
//! reproduced here:
//! 1. SR is performed by a heavyweight neural network, so per-frame latency
//!    is dominated by inference (even with a frozen, optimized runtime);
//! 2. only a discrete set of upsampling ratios is supported
//!    (`1x2, 2x2, 1x3, 1x4, 4x1, 2x1` in the paper — i.e. effective ratios
//!    {2, 3, 4}), which forces the ABR controller to over- or under-shoot
//!    the network-optimal density.

use crate::config::SrConfig;
use crate::encoding::{KeyScheme, PositionEncoder};
use crate::error::Error;
use crate::interpolate::naive::naive_interpolate_with;
use crate::interpolate::FrameScratch;
use crate::nn::mlp::{BatchScratch, Mlp, MICRO_BATCH};
use crate::pipeline::{SrResult, StageTimings};
use crate::refine::{refine_in_place, Refiner, RefinerCost};
use crate::Result;
use std::time::Instant;
use volut_pointcloud::{NeighborhoodsView, Point3, PointCloud};

/// Yuzu-style neural upsampler with discrete ratio support.
pub struct YuzuUpsampler {
    config: SrConfig,
    encoder: PositionEncoder,
    /// One network per supported ratio (the paper trains per-ratio models).
    networks: Vec<(u32, Mlp)>,
}

impl std::fmt::Debug for YuzuUpsampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("YuzuUpsampler")
            .field("config", &self.config)
            .field("ratios", &self.supported_ratios())
            .finish()
    }
}

impl YuzuUpsampler {
    /// The discrete upsampling ratios Yuzu supports.
    pub const SUPPORTED_RATIOS: [u32; 3] = [2, 3, 4];

    /// Creates a Yuzu baseline with one paper-scale network per ratio.
    ///
    /// # Errors
    /// Returns an error when the configuration is invalid.
    pub fn new(config: SrConfig, seed: u64) -> Result<Self> {
        let encoder = PositionEncoder::new(&config, KeyScheme::Full)?;
        let input = config.receptive_field * 3;
        let networks = Self::SUPPORTED_RATIOS
            .iter()
            .enumerate()
            .map(|(i, &r)| {
                (
                    r,
                    Mlp::new(&[input, 512, 512, 3], seed.wrapping_add(i as u64)),
                )
            })
            .collect();
        Ok(Self {
            config,
            encoder,
            networks,
        })
    }

    /// The discrete ratios this model can produce.
    pub fn supported_ratios(&self) -> Vec<u32> {
        self.networks.iter().map(|(r, _)| *r).collect()
    }

    /// The largest supported ratio not exceeding `requested`, or the
    /// smallest supported ratio when `requested` is below all of them.
    /// This is the quantization step that costs Yuzu bandwidth efficiency
    /// compared to VoLUT's continuous ratios.
    pub fn quantize_ratio(&self, requested: f64) -> u32 {
        let ratios = self.supported_ratios();
        let mut best = ratios[0];
        for &r in &ratios {
            if f64::from(r) <= requested + 1e-9 {
                best = r;
            }
        }
        best
    }

    /// Resident memory of all per-ratio models plus per-batch activations,
    /// mirroring the frozen-model C++ deployment the paper measures.
    pub fn memory_bytes(&self, points_per_frame: usize) -> usize {
        let weights: usize = self
            .networks
            .iter()
            .map(|(_, m)| m.parameter_count() * 4)
            .sum();
        let act: usize = self
            .networks
            .first()
            .map(|(_, m)| m.dims().iter().sum::<usize>() * points_per_frame / 8)
            .unwrap_or(0);
        weights + act * 4
    }

    /// Per-point SR cost for a given ratio.
    pub fn cost(&self, ratio: u32) -> RefinerCost {
        let flops = self
            .networks
            .iter()
            .find(|(r, _)| *r == ratio)
            .map(|(_, m)| m.flops_per_inference())
            .unwrap_or(0);
        RefinerCost {
            lut_lookups_per_point: 0,
            nn_flops_per_point: flops,
        }
    }

    /// Upsamples `low` by the *discrete* ratio closest to (but not above)
    /// `requested_ratio`, with fresh working buffers. Streaming/bench
    /// harnesses should prefer [`Self::upsample_with`] with a long-lived
    /// [`FrameScratch`].
    ///
    /// # Errors
    /// Returns [`Error::InvalidRatio`] for ratios below 1 and propagates
    /// interpolation failures.
    pub fn upsample(&self, low: &PointCloud, requested_ratio: f64) -> Result<SrResult> {
        self.upsample_with(low, requested_ratio, &mut FrameScratch::new())
    }

    /// [`Self::upsample`] with caller-provided scratch: the spatial index is
    /// cached across calls (no per-call `positions().to_vec()` + rebuild for
    /// unchanged geometry) and the refinement center buffer is reused.
    ///
    /// # Errors
    /// Same as [`Self::upsample`].
    pub fn upsample_with(
        &self,
        low: &PointCloud,
        requested_ratio: f64,
        scratch: &mut FrameScratch,
    ) -> Result<SrResult> {
        if !requested_ratio.is_finite() || requested_ratio < 1.0 {
            return Err(Error::InvalidRatio(requested_ratio));
        }
        let ratio = self.quantize_ratio(requested_ratio);
        let network = &self
            .networks
            .iter()
            .find(|(r, _)| *r == ratio)
            .expect("quantize_ratio returns a supported ratio")
            .1;

        // Yuzu's generator: interpolation to the discrete ratio followed by a
        // single heavyweight network pass per generated point, routed through
        // the shared batch refinement helper.
        let interp = naive_interpolate_with(low, &self.config, f64::from(ratio), scratch)?;
        let mut timings = StageTimings {
            index_build: interp.timings.index_build,
            knn: interp.timings.knn,
            interpolation: interp.timings.interpolation,
            colorization: interp.timings.colorization,
            refinement: std::time::Duration::ZERO,
        };

        let t0 = Instant::now();
        let original_len = interp.original_len;
        let mut cloud = interp.cloud;
        let refiner = ClampedNnRefiner {
            encoder: &self.encoder,
            network,
        };
        refine_in_place(
            &refiner,
            &mut cloud,
            original_len,
            &interp.neighborhoods,
            low.positions(),
            &mut scratch.centers,
        );
        timings.refinement = t0.elapsed();
        scratch.recycle_neighborhoods(interp.neighborhoods);

        Ok(SrResult {
            cloud,
            input_points: low.len(),
            timings,
            ops: interp.ops,
            refiner_cost: self.cost(ratio),
            lookup_stats: None,
            refiner_name: "yuzu-sr".to_string(),
        })
    }
}

/// Yuzu's refinement step as a [`Refiner`]: one network pass per point with
/// the output offset clamped so the (possibly untrained) baseline stays
/// geometrically sane.
struct ClampedNnRefiner<'a> {
    encoder: &'a PositionEncoder,
    network: &'a Mlp,
}

impl Refiner for ClampedNnRefiner<'_> {
    fn name(&self) -> &str {
        "yuzu-sr"
    }

    fn refine_batch(
        &self,
        centers: &[Point3],
        neighborhoods: NeighborhoodsView<'_>,
        source: &[Point3],
        out: &mut [Point3],
    ) {
        // Same packing as `NnRefiner::refine_batch`: encode feature rows per
        // block, run one GEMM-style micro-batched forward (bit-identical to
        // the per-point pass — Yuzu's heavyweight nets are exactly where the
        // per-weight-row memory traffic of per-point inference hurt most).
        const BLOCK: usize = 4 * MICRO_BATCH;
        let out_dim = self.network.output_dim();
        let mut gather: Vec<Point3> = Vec::new();
        let mut feature_row: Vec<f32> = Vec::new();
        let mut features: Vec<f32> = Vec::new();
        let mut packed: Vec<(usize, f32)> = Vec::new();
        let mut outputs: Vec<f32> = Vec::new();
        let mut scratch = BatchScratch::default();
        for block_start in (0..centers.len()).step_by(BLOCK) {
            let block_len = BLOCK.min(centers.len() - block_start);
            features.clear();
            packed.clear();
            for i in block_start..block_start + block_len {
                let center = centers[i];
                let row = neighborhoods.row(i);
                if row.is_empty() {
                    out[i] = center;
                    continue;
                }
                gather.clear();
                gather.extend(row.iter().map(|&j| source[j as usize]));
                match self
                    .encoder
                    .encode_features_into(center, &gather, &mut feature_row)
                {
                    Ok(radius) => {
                        features.extend_from_slice(&feature_row);
                        packed.push((i, radius));
                    }
                    Err(_) => out[i] = center,
                }
            }
            if packed.is_empty() {
                continue;
            }
            self.network
                .forward_batch_into(&features, packed.len(), &mut outputs, &mut scratch);
            for (slot, &(i, radius)) in packed.iter().enumerate() {
                let o = &outputs[slot * out_dim..(slot + 1) * out_dim];
                // Bound the untrained network's output so the baseline stays
                // geometrically sane: offsets are clamped to a fraction of
                // the neighborhood radius.
                let offset = Point3::new(
                    o[0].clamp(-0.25, 0.25),
                    o[1].clamp(-0.25, 0.25),
                    o[2].clamp(-0.25, 0.25),
                );
                out[i] = centers[i] + offset * radius;
            }
        }
    }

    fn cost(&self) -> RefinerCost {
        RefinerCost {
            lut_lookups_per_point: 0,
            nn_flops_per_point: self.network.flops_per_inference(),
        }
    }

    fn memory_bytes(&self) -> usize {
        self.network.parameter_count() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volut_pointcloud::{metrics, sampling, synthetic};

    #[test]
    fn ratio_quantization() {
        let yuzu = YuzuUpsampler::new(SrConfig::default(), 1).unwrap();
        assert_eq!(yuzu.quantize_ratio(1.2), 2);
        assert_eq!(yuzu.quantize_ratio(2.0), 2);
        assert_eq!(yuzu.quantize_ratio(2.9), 2);
        assert_eq!(yuzu.quantize_ratio(3.5), 3);
        assert_eq!(yuzu.quantize_ratio(7.0), 4);
        assert_eq!(yuzu.supported_ratios(), vec![2, 3, 4]);
    }

    #[test]
    fn upsample_reaches_discrete_ratio() {
        let yuzu = YuzuUpsampler::new(SrConfig::default(), 2).unwrap();
        let low = synthetic::sphere(300, 1.0, 3);
        let r = yuzu.upsample(&low, 2.7).unwrap();
        // Requested 2.7 but only x2 is available below it.
        assert_eq!(r.cloud.len(), 600);
        assert_eq!(r.refiner_name, "yuzu-sr");
        assert!(r.refiner_cost.nn_flops_per_point > 100_000);
    }

    #[test]
    fn quality_remains_better_than_no_sr() {
        let yuzu = YuzuUpsampler::new(SrConfig::default(), 4).unwrap();
        let gt = synthetic::torus(2000, 1.0, 0.3, 5);
        let low = sampling::random_downsample_exact(&gt, 600, 1).unwrap();
        let r = yuzu.upsample(&low, 3.0).unwrap();
        // Coverage improves thanks to the added points; the clamped (here
        // untrained) network must not blow up the symmetric Chamfer distance.
        let cover_low = metrics::one_sided_chamfer(&gt, &low);
        let cover_sr = metrics::one_sided_chamfer(&gt, &r.cloud);
        assert!(cover_sr < cover_low);
        let cd_low = metrics::chamfer_distance(&low, &gt);
        let cd_sr = metrics::chamfer_distance(&r.cloud, &gt);
        assert!(
            cd_sr < cd_low * 2.0,
            "yuzu sr ({cd_sr}) should stay near the surface ({cd_low})"
        );
    }

    #[test]
    fn invalid_ratio_rejected() {
        let yuzu = YuzuUpsampler::new(SrConfig::default(), 1).unwrap();
        let low = synthetic::sphere(100, 1.0, 1);
        assert!(yuzu.upsample(&low, 0.5).is_err());
        assert!(yuzu.upsample(&low, f64::NAN).is_err());
    }

    #[test]
    fn memory_is_dominated_by_per_ratio_models() {
        let yuzu = YuzuUpsampler::new(SrConfig::default(), 1).unwrap();
        let m = yuzu.memory_bytes(100_000);
        // Three networks of ~280K parameters each in f32.
        assert!(m > 3 * 250_000 * 4);
    }
}

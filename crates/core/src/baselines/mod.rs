//! Baseline super-resolution systems the paper compares against.
//!
//! * [`gradpu`] — GradPU-style direct neural refinement: the same two-stage
//!   structure as VoLUT but the refinement network is executed for every
//!   point, iteratively, at full inference cost.
//! * [`yuzu`] — Yuzu-style neural SR: a heavyweight per-ratio upsampling
//!   network supporting only a discrete set of ratios, mirroring the
//!   state-of-the-art system VoLUT is evaluated against.

pub mod gradpu;
pub mod yuzu;

pub use gradpu::GradPuUpsampler;
pub use yuzu::YuzuUpsampler;

//! GradPU-style baseline: arbitrary-ratio upsampling with *direct* neural
//! refinement (He et al., 2023).
//!
//! GradPU performs midpoint interpolation followed by several iterations of
//! network-predicted position adjustments. Quality-wise it is the reference
//! VoLUT distills from; cost-wise every generated point pays
//! `iterations × network` inference, which is what makes it orders of
//! magnitude slower than a LUT lookup (Figure 17).

use crate::config::SrConfig;
use crate::encoding::{KeyScheme, PositionEncoder};
use crate::interpolate::naive::naive_interpolate_with;
use crate::interpolate::FrameScratch;
use crate::nn::mlp::{BatchScratch, Mlp, MICRO_BATCH};
use crate::pipeline::{SrResult, StageTimings};
use crate::refine::{refine_in_place, Refiner, RefinerCost};
use crate::Result;
use std::time::Instant;
use volut_pointcloud::{NeighborhoodsView, Point3, PointCloud};

/// GradPU-style upsampler: naive interpolation + iterative neural refinement.
pub struct GradPuUpsampler {
    config: SrConfig,
    encoder: PositionEncoder,
    network: Mlp,
    iterations: usize,
}

impl std::fmt::Debug for GradPuUpsampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GradPuUpsampler")
            .field("config", &self.config)
            .field("iterations", &self.iterations)
            .field("network_params", &self.network.parameter_count())
            .finish()
    }
}

impl GradPuUpsampler {
    /// Default number of refinement iterations (GradPU uses an iterative
    /// gradient-descent-style adjustment).
    pub const DEFAULT_ITERATIONS: usize = 4;

    /// Creates a GradPU baseline that reuses an already-trained refinement
    /// network (the same network VoLUT distills into its LUT), applied
    /// iteratively at full inference cost.
    ///
    /// # Errors
    /// Returns an error when the configuration is invalid.
    pub fn from_network(config: SrConfig, network: Mlp, iterations: usize) -> Result<Self> {
        let encoder = PositionEncoder::new(&config, KeyScheme::Full)?;
        Ok(Self {
            config,
            encoder,
            network,
            iterations: iterations.max(1),
        })
    }

    /// Creates a GradPU baseline with a freshly initialized (untrained)
    /// network of the paper-scale width — useful for runtime benchmarks
    /// where only the cost matters.
    ///
    /// # Errors
    /// Returns an error when the configuration is invalid.
    pub fn untrained(config: SrConfig, seed: u64) -> Result<Self> {
        let input = config.receptive_field * 3;
        let network = Mlp::new(&[input, 256, 256, 3], seed);
        Self::from_network(config, network, Self::DEFAULT_ITERATIONS)
    }

    /// The refinement network.
    pub fn network(&self) -> &Mlp {
        &self.network
    }

    /// Number of refinement iterations per point.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Resident memory of the model (f32 weights plus activation workspace),
    /// modeling the GPU memory the paper reports in Figure 15. GradPU keeps
    /// per-point activation tensors for the whole batch alive, which is why
    /// its footprint is far larger than just its weights.
    pub fn memory_bytes(&self, points_per_frame: usize) -> usize {
        let weights = self.network.parameter_count() * 4;
        // Activations: every layer output for every point in the batch.
        let activation_floats: usize = self.network.dims().iter().sum::<usize>() * points_per_frame;
        weights + activation_floats * 4
    }

    /// Per-point refinement cost.
    pub fn cost(&self) -> RefinerCost {
        RefinerCost {
            lut_lookups_per_point: 0,
            nn_flops_per_point: self.network.flops_per_inference() * self.iterations as u64,
        }
    }

    /// Upsamples `low` by `ratio` (any ratio ≥ 1, like GradPU), with fresh
    /// working buffers. Streaming/bench harnesses should prefer
    /// [`Self::upsample_with`] with a long-lived [`FrameScratch`].
    ///
    /// # Errors
    /// Propagates interpolation failures.
    pub fn upsample(&self, low: &PointCloud, ratio: f64) -> Result<SrResult> {
        self.upsample_with(low, ratio, &mut FrameScratch::new())
    }

    /// [`Self::upsample`] with caller-provided scratch: the spatial index is
    /// cached across calls (no per-call `positions().to_vec()` + rebuild for
    /// unchanged geometry) and the refinement center buffer is reused.
    ///
    /// # Errors
    /// Same as [`Self::upsample`].
    pub fn upsample_with(
        &self,
        low: &PointCloud,
        ratio: f64,
        scratch: &mut FrameScratch,
    ) -> Result<SrResult> {
        let interp = naive_interpolate_with(low, &self.config, ratio, scratch)?;
        let mut timings = StageTimings {
            index_build: interp.timings.index_build,
            knn: interp.timings.knn,
            interpolation: interp.timings.interpolation,
            colorization: interp.timings.colorization,
            refinement: std::time::Duration::ZERO,
        };

        let t0 = Instant::now();
        let original_len = interp.original_len;
        let mut cloud = interp.cloud;
        let refiner = IterativeNnRefiner {
            encoder: &self.encoder,
            network: &self.network,
            iterations: self.iterations,
        };
        refine_in_place(
            &refiner,
            &mut cloud,
            original_len,
            &interp.neighborhoods,
            low.positions(),
            &mut scratch.centers,
        );
        timings.refinement = t0.elapsed();
        scratch.recycle_neighborhoods(interp.neighborhoods);

        Ok(SrResult {
            cloud,
            input_points: low.len(),
            timings,
            ops: interp.ops,
            refiner_cost: self.cost(),
            lookup_stats: None,
            refiner_name: "gradpu".to_string(),
        })
    }
}

/// GradPU's refinement step as a [`Refiner`]: several damped
/// network-predicted position updates per point, re-encoding the (moving)
/// center against its fixed neighborhood each iteration.
struct IterativeNnRefiner<'a> {
    encoder: &'a PositionEncoder,
    network: &'a Mlp,
    iterations: usize,
}

impl Refiner for IterativeNnRefiner<'_> {
    fn name(&self) -> &str {
        "gradpu"
    }

    fn refine_batch(
        &self,
        centers: &[Point3],
        neighborhoods: NeighborhoodsView<'_>,
        source: &[Point3],
        out: &mut [Point3],
    ) {
        // Blocked iterative refinement: rows are independent, so running one
        // GEMM-style micro-batched forward per *iteration* over the whole
        // block (instead of `iterations` per-point passes row by row) keeps
        // the exact per-row arithmetic — `forward_batch_into` is
        // bit-identical to `forward_into` — while streaming each weight row
        // once per block instead of once per point.
        const BLOCK: usize = 4 * MICRO_BATCH;
        let out_dim = self.network.output_dim();
        let step = 1.0 / self.iterations as f32;
        // Per-block gather of all neighborhoods (CSR-style, `seg` holds
        // exclusive end offsets) so every iteration re-reads them in place.
        let mut gather: Vec<Point3> = Vec::new();
        let mut seg: Vec<(usize, u32)> = Vec::new(); // (center index, gather end)
        let mut feature_row: Vec<f32> = Vec::new();
        let mut features: Vec<f32> = Vec::new();
        let mut active: Vec<usize> = Vec::new(); // slots of `seg` still iterating
        let mut current: Vec<Point3> = Vec::new(); // moving center per `seg` slot
        let mut packed: Vec<usize> = Vec::new(); // seg slot per packed feature row
        let mut radii: Vec<f32> = Vec::new(); // radius per packed feature row
        let mut outputs: Vec<f32> = Vec::new();
        let mut scratch = BatchScratch::default();
        for block_start in (0..centers.len()).step_by(BLOCK) {
            let block_len = BLOCK.min(centers.len() - block_start);
            gather.clear();
            seg.clear();
            current.clear();
            for i in block_start..block_start + block_len {
                let row = neighborhoods.row(i);
                if row.is_empty() {
                    out[i] = centers[i];
                    continue;
                }
                gather.extend(row.iter().map(|&j| source[j as usize]));
                seg.push((i, gather.len() as u32));
                current.push(centers[i]);
            }
            active.clear();
            active.extend(0..seg.len());
            for _ in 0..self.iterations {
                if active.is_empty() {
                    break;
                }
                features.clear();
                packed.clear();
                radii.clear();
                // Re-encode every still-active row against its (moving)
                // center; a row whose encode fails stops iterating, exactly
                // like the per-point loop's `break`.
                for &slot in &active {
                    let start = if slot == 0 {
                        0
                    } else {
                        seg[slot - 1].1 as usize
                    };
                    let end = seg[slot].1 as usize;
                    if let Ok(radius) = self.encoder.encode_features_into(
                        current[slot],
                        &gather[start..end],
                        &mut feature_row,
                    ) {
                        features.extend_from_slice(&feature_row);
                        packed.push(slot);
                        radii.push(radius);
                    }
                }
                if packed.is_empty() {
                    break;
                }
                self.network.forward_batch_into(
                    &features,
                    packed.len(),
                    &mut outputs,
                    &mut scratch,
                );
                for (p, &slot) in packed.iter().enumerate() {
                    let o = &outputs[p * out_dim..(p + 1) * out_dim];
                    // Damped update, mimicking GradPU's gradient-descent steps.
                    current[slot] += Point3::new(o[0], o[1], o[2]) * (radii[p] * step);
                }
                std::mem::swap(&mut active, &mut packed);
            }
            for (slot, &(i, _)) in seg.iter().enumerate() {
                out[i] = current[slot];
            }
        }
    }

    fn cost(&self) -> RefinerCost {
        RefinerCost {
            lut_lookups_per_point: 0,
            nn_flops_per_point: self.network.flops_per_inference() * self.iterations as u64,
        }
    }

    fn memory_bytes(&self) -> usize {
        self.network.parameter_count() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volut_pointcloud::{metrics, sampling, synthetic};

    #[test]
    fn untrained_gradpu_runs_and_reaches_ratio() {
        let up = GradPuUpsampler::untrained(SrConfig::default(), 1).unwrap();
        let low = synthetic::sphere(300, 1.0, 2);
        let r = up.upsample(&low, 2.0).unwrap();
        assert_eq!(r.cloud.len(), 600);
        assert_eq!(r.refiner_name, "gradpu");
        assert!(r.refiner_cost.nn_flops_per_point > 100_000);
        assert!(r.timings.refinement > std::time::Duration::ZERO);
    }

    #[test]
    fn trained_gradpu_does_not_hurt_quality_much() {
        // With the network VoLUT would distill, GradPU refinement should not
        // dramatically degrade interpolation quality (damped updates).
        use crate::nn::train::{build_training_set, RefinementTrainer, TrainConfig};
        let config = SrConfig::default();
        let gt = synthetic::sphere(2000, 1.0, 3);
        let set = build_training_set(&gt, 0.5, &config, KeyScheme::Full, 5).unwrap();
        let mut trainer = RefinementTrainer::new(
            &config,
            TrainConfig {
                epochs: 5,
                ..TrainConfig::default()
            },
        )
        .unwrap();
        trainer.train(&set).unwrap();
        let up = GradPuUpsampler::from_network(config, trainer.into_network(), 3).unwrap();

        let low = sampling::random_downsample_exact(&gt, 1000, 1).unwrap();
        let r = up.upsample(&low, 2.0).unwrap();
        // Coverage of the ground truth must improve, and the refined result
        // must stay close to the surface (bounded symmetric Chamfer blow-up).
        let cover_low = metrics::one_sided_chamfer(&gt, &low);
        let cover_sr = metrics::one_sided_chamfer(&gt, &r.cloud);
        assert!(cover_sr < cover_low);
        let cd_low = metrics::chamfer_distance(&low, &gt);
        let cd_sr = metrics::chamfer_distance(&r.cloud, &gt);
        assert!(cd_sr < cd_low * 2.0);
    }

    #[test]
    fn memory_model_scales_with_batch() {
        let up = GradPuUpsampler::untrained(SrConfig::default(), 7).unwrap();
        let small = up.memory_bytes(1_000);
        let large = up.memory_bytes(100_000);
        assert!(large > small * 50);
        assert!(small > up.network().parameter_count() * 4);
    }

    #[test]
    fn iterations_are_clamped_to_at_least_one() {
        let up = GradPuUpsampler::from_network(SrConfig::default(), Mlp::new(&[12, 8, 3], 1), 0)
            .unwrap();
        assert_eq!(up.iterations(), 1);
    }
}

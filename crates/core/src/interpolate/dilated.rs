//! VoLUT's enhanced dilated interpolation (§4.1).
//!
//! Compared to the naive baseline this stage:
//! * expands each point's candidate neighborhood to `k × d` neighbors
//!   (Eq. 1) and samples interpolation partners from the *dilated* set,
//!   which breaks the density-reinforcement artifact of vanilla kNN;
//! * issues exactly one kNN query per *original* point instead of one per
//!   generated point (the octree of [`volut_pointcloud::octree`] is the
//!   paper's spatial structure; on CPU the k-d tree answers the same
//!   queries faster, so it backs the per-point search here while the
//!   octree's self-contained-leaf fast path remains available — the
//!   `knn_backends` bench compares all backends). The tree is
//!   scratch-resident (see [`super::IndexCache`]): frames whose geometry is
//!   unchanged skip the rebuild entirely, and the queries go through the
//!   allocation-free `super::batched_knn_into` path — a *self-join* of
//!   the frame cloud against itself, which the batch layer answers with the
//!   dual-tree leaf-pair kernel of [`volut_pointcloud::dualtree`] at
//!   production sizes;
//! * derives each new point's neighborhood via neighbor-relationship reuse
//!   (Eq. 2 / [`super::reuse::merge_and_prune`]);
//! * runs the per-point work in parallel across CPU threads (the stand-in
//!   for the paper's CUDA kernels), storing all neighbor lists in flat CSR
//!   [`Neighborhoods`] buffers that the caller's
//!   [`super::FrameScratch`] recycles across frames.
//!
//! Interpolation partners are drawn from a small RNG seeded per *source
//! point* (`config.seed ^ point index`), so the output is bit-identical
//! regardless of worker count — with or without the `parallel` feature.

use super::{
    colorize, distribute_new_points_into, FrameScratch, InterpolationResult, InterpolationTimings,
    OpCounts,
};
use crate::config::SrConfig;
use crate::error::Error;
use crate::Result;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::time::Instant;
use volut_pointcloud::knn::NeighborSearch;
use volut_pointcloud::{par, Neighborhoods, Point3, PointCloud};

/// Per-chunk output of the parallel interpolation phase.
#[derive(Debug, Default)]
struct PartialOutput {
    new_points: Vec<Point3>,
    parents: Vec<(usize, usize)>,
    neighborhoods: Neighborhoods,
    ops: OpCounts,
}

/// Upsamples `low` to roughly `ratio ×` its point count using dilated
/// interpolation with neighbor reuse.
///
/// # Errors
/// Returns an error when the configuration or ratio is invalid, or when the
/// input has fewer than two points.
///
/// # Example
///
/// ```
/// use volut_core::{config::SrConfig, interpolate::dilated::dilated_interpolate};
/// use volut_pointcloud::synthetic;
///
/// # fn main() -> Result<(), volut_core::Error> {
/// let low = synthetic::sphere(500, 1.0, 1);
/// let out = dilated_interpolate(&low, &SrConfig::default(), 2.0)?;
/// assert_eq!(out.cloud.len(), 1000);
/// # Ok(())
/// # }
/// ```
pub fn dilated_interpolate(
    low: &PointCloud,
    config: &SrConfig,
    ratio: f64,
) -> Result<InterpolationResult> {
    dilated_interpolate_with(low, config, ratio, &mut FrameScratch::new())
}

/// [`dilated_interpolate`] with caller-provided scratch buffers (reused
/// across frames of a streaming session).
///
/// # Errors
/// Same as [`dilated_interpolate`].
pub fn dilated_interpolate_with(
    low: &PointCloud,
    config: &SrConfig,
    ratio: f64,
    scratch: &mut FrameScratch,
) -> Result<InterpolationResult> {
    config.validate()?;
    config.validate_ratio(ratio)?;
    if low.len() < 2 {
        return Err(Error::InsufficientPoints {
            required: 2,
            available: low.len(),
        });
    }

    let mut timings = InterpolationTimings::default();
    let positions = low.positions();
    let dilated_k = config.dilated_neighborhood();
    let mut neighborhoods = scratch.take_neighborhoods();

    // Workload-scaled chunking shared by both parallel phases.
    let workers = par::worker_count(low.len(), 2_000);
    let chunk = low.len().div_ceil(workers).max(1);

    // --- Index + kNN stage: one dilated query per original point — the
    // self-join that dominates frame time (§4.1). The temporal layer owns
    // the whole pass: the scratch-resident k-d tree is reused, patched or
    // rebuilt depending on how the frame relates to the previous one, and
    // rows whose kNN ball the churn cannot touch are copied forward from
    // the previous frame instead of recomputed (bit-identical either way —
    // see [`super::temporal`]). Cold frames run the full dual-tree /
    // single-tree batch machinery exactly as before.
    // (The container is taken out of the scratch for the call so the
    // temporal layer can borrow the rest of the scratch mutably.)
    let mut raw_hoods = std::mem::take(&mut scratch.raw_hoods);
    super::temporal::self_join(low, dilated_k + 1, scratch, &mut raw_hoods, &mut timings);

    // Strip the self-match from each row and cap at the dilated size (a
    // linear copy, negligible next to the queries themselves).
    let t0 = Instant::now();
    scratch.dilated.clear();
    scratch
        .dilated
        .reserve_rows(low.len(), low.len() * dilated_k);
    for (i, row) in raw_hoods.iter().enumerate() {
        scratch.dilated.push_row_u32_iter(
            row.iter()
                .copied()
                .filter(|&j| j as usize != i)
                .take(dilated_k),
        );
    }
    raw_hoods.clear();
    scratch.raw_hoods = raw_hoods;
    timings.knn += t0.elapsed();

    let mut ops = OpCounts {
        knn_queries: low.len() as u64,
        candidates_examined: scratch.dilated.total_indices() as u64 * 4,
        points_generated: 0,
        reused_neighborhoods: 0,
    };

    // --- Interpolation stage: generate midpoints in parallel. -------------
    let t1 = Instant::now();
    distribute_new_points_into(low.len(), ratio, &mut scratch.counts);
    let counts = &scratch.counts;
    let dilated = &scratch.dilated;
    let cfg = *config;
    let partials: Vec<PartialOutput> = par::map_chunks(low.len(), chunk, |_, range| {
        let mut out = PartialOutput::default();
        for i in range {
            let count = counts[i];
            if count == 0 {
                continue;
            }
            let hood = dilated.row(i);
            if hood.is_empty() {
                continue;
            }
            let p = positions[i];
            // Seeding per source point keeps the draw sequence independent
            // of how the range is chunked across workers.
            let mut rng = StdRng::seed_from_u64(cfg.seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
            // Random subset S_i of the dilated neighborhood, one partner
            // per generated point.
            for _ in 0..count {
                let j = hood[rng.random_range(0..hood.len())] as usize;
                let q = positions[j];
                out.new_points.push(p.midpoint(q));
                out.parents.push((i, j));
                out.ops.points_generated += 1;
            }
        }
        if cfg.reuse_neighbors {
            // Derive every generated point's neighborhood in one batched
            // merge-and-prune pass over the chunk (Eq. 2): the k-nearest
            // subsets (heads of the dilated lists) serve as the parents'
            // neighbor lists for reuse.
            out.ops.reused_neighborhoods += out.new_points.len() as u64;
            super::reuse::merge_and_prune_rows(
                &out.new_points,
                &out.parents,
                dilated.view(),
                positions,
                cfg.k,
                &mut out.neighborhoods,
            );
        } else {
            // No-reuse ablation: the rows are produced by exact batched
            // queries during the merge below, so the partial CSR stays
            // empty here.
            out.ops.knn_queries += out.new_points.len() as u64;
        }
        out
    });
    timings.interpolation += t1.elapsed();

    // --- Merge chunk outputs. ---------------------------------------------
    let mut cloud = low.clone();
    let mut parents = Vec::new();
    for part in partials {
        ops = ops.combine(part.ops);
        if config.reuse_neighbors {
            neighborhoods.append(&part.neighborhoods);
        } else {
            // Fill the no-reuse rows with exact batched queries (sequential
            // here; the ablation only cares about total cost).
            let t = Instant::now();
            scratch
                .index
                .cached_tree()
                .knn_batch(&part.new_points, config.k, &mut neighborhoods);
            timings.knn += t.elapsed();
            ops.candidates_examined += part.new_points.len() as u64 * config.k as u64 * 4;
        }
        for (&np, &parent) in part.new_points.iter().zip(part.parents.iter()) {
            cloud.push(np, None);
            parents.push(parent);
        }
    }

    // --- Colorization stage. ----------------------------------------------
    let t2 = Instant::now();
    colorize::colorize_new_points(&mut cloud, low, low.len(), neighborhoods.view(), &parents);
    timings.colorization += t2.elapsed();

    Ok(InterpolationResult {
        cloud,
        original_len: low.len(),
        parents,
        neighborhoods,
        timings,
        ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use volut_pointcloud::{metrics, sampling, synthetic};

    #[test]
    fn reaches_requested_ratio() {
        let low = synthetic::sphere(500, 1.0, 1);
        for ratio in [1.5, 2.0, 3.0, 4.0] {
            let out = dilated_interpolate(&low, &SrConfig::default(), ratio).unwrap();
            assert_eq!(
                out.cloud.len(),
                (500.0 * ratio).round() as usize,
                "ratio {ratio}"
            );
        }
    }

    #[test]
    fn improves_chamfer_distance() {
        let gt = synthetic::torus(3000, 1.0, 0.3, 2);
        let low = sampling::random_downsample_exact(&gt, 1000, 1).unwrap();
        let out = dilated_interpolate(&low, &SrConfig::default(), 3.0).unwrap();
        let before = metrics::chamfer_distance(&low, &gt);
        let after = metrics::chamfer_distance(&out.cloud, &gt);
        assert!(after < before);
    }

    #[test]
    fn dilated_beats_naive_on_nonuniform_density() {
        // On a biased (non-uniform) downsample the dilated interpolation
        // should achieve a lower Chamfer distance than the naive baseline,
        // mirroring Figure 4 / Figures 7-10.
        let gt = synthetic::humanoid(4000, 0.3, 3);
        let low = sampling::biased_downsample(&gt, 0.25, 5).unwrap();
        let naive = super::super::naive::naive_interpolate(&low, &SrConfig::k4d1(), 4.0).unwrap();
        let dilated = dilated_interpolate(&low, &SrConfig::k4d2(), 4.0).unwrap();
        let cd_naive = metrics::chamfer_distance(&naive.cloud, &gt);
        let cd_dilated = metrics::chamfer_distance(&dilated.cloud, &gt);
        assert!(
            cd_dilated < cd_naive * 1.05,
            "dilated ({cd_dilated}) should not be worse than naive ({cd_naive})"
        );
    }

    #[test]
    fn neighborhoods_are_populated_and_valid() {
        let low = synthetic::sphere(300, 1.0, 4);
        let cfg = SrConfig::default();
        let out = dilated_interpolate(&low, &cfg, 2.0).unwrap();
        assert_eq!(out.neighborhoods.len(), out.new_points());
        for hood in out.neighborhoods.iter() {
            assert!(!hood.is_empty());
            assert!(hood.len() <= cfg.k);
            assert!(hood.iter().all(|&i| (i as usize) < low.len()));
        }
        assert!(out.ops.reused_neighborhoods > 0);
    }

    #[test]
    fn reuse_disabled_still_produces_neighborhoods() {
        let low = synthetic::sphere(200, 1.0, 5);
        let cfg = SrConfig {
            reuse_neighbors: false,
            ..SrConfig::default()
        };
        let out = dilated_interpolate(&low, &cfg, 2.0).unwrap();
        assert_eq!(out.neighborhoods.len(), out.new_points());
        for hood in out.neighborhoods.iter() {
            assert!(!hood.is_empty());
        }
        assert_eq!(out.ops.reused_neighborhoods, 0);
    }

    #[test]
    fn colors_are_propagated() {
        let low = synthetic::sphere(200, 1.0, 6);
        let out = dilated_interpolate(&low, &SrConfig::default(), 2.5).unwrap();
        assert!(out.cloud.has_colors());
        assert_eq!(out.cloud.colors().unwrap().len(), out.cloud.len());
    }

    #[test]
    fn rejects_bad_inputs() {
        let low = synthetic::sphere(50, 1.0, 7);
        assert!(dilated_interpolate(&low, &SrConfig::default(), 0.2).is_err());
        let tiny = volut_pointcloud::PointCloud::from_positions(vec![Point3::ZERO]);
        assert!(dilated_interpolate(&tiny, &SrConfig::default(), 2.0).is_err());
    }

    #[test]
    fn timings_are_recorded() {
        let low = synthetic::sphere(500, 1.0, 8);
        let out = dilated_interpolate(&low, &SrConfig::default(), 2.0).unwrap();
        assert!(out.timings.total() > std::time::Duration::ZERO);
        assert_eq!(out.ops.knn_queries, 500);
    }

    #[test]
    fn deterministic_and_scratch_independent() {
        // Per-source-point RNG seeding makes the result independent of the
        // worker count and of scratch reuse.
        let low = synthetic::sphere(2500, 1.0, 11);
        let a = dilated_interpolate(&low, &SrConfig::default(), 2.3).unwrap();
        let mut scratch = FrameScratch::new();
        let warmup =
            dilated_interpolate_with(&low, &SrConfig::default(), 2.3, &mut scratch).unwrap();
        scratch.recycle_neighborhoods(warmup.neighborhoods);
        let b = dilated_interpolate_with(&low, &SrConfig::default(), 2.3, &mut scratch).unwrap();
        assert_eq!(a.cloud, b.cloud);
        assert_eq!(a.neighborhoods, b.neighborhoods);
        assert_eq!(a.parents, b.parents);
    }

    #[test]
    fn more_uniform_than_naive() {
        // Dilation should spread new points more uniformly: measure the mean
        // nearest-neighbor spacing variance proxy via mean spacing of new points.
        let gt = synthetic::sphere(3000, 1.0, 9);
        let low = sampling::biased_downsample(&gt, 0.3, 11).unwrap();
        let naive = super::super::naive::naive_interpolate(&low, &SrConfig::k4d1(), 2.0).unwrap();
        let dilated = dilated_interpolate(&low, &SrConfig::k4d2(), 2.0).unwrap();
        // Hausdorff to ground truth captures coverage of sparse regions.
        let h_naive = metrics::hausdorff_distance(&naive.cloud, &gt);
        let h_dilated = metrics::hausdorff_distance(&dilated.cloud, &gt);
        assert!(h_dilated <= h_naive * 1.2);
    }
}

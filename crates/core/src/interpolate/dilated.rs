//! VoLUT's enhanced dilated interpolation (§4.1).
//!
//! Compared to the naive baseline this stage:
//! * expands each point's candidate neighborhood to `k × d` neighbors
//!   (Eq. 1) and samples interpolation partners from the *dilated* set,
//!   which breaks the density-reinforcement artifact of vanilla kNN;
//! * issues exactly one kNN query per *original* point instead of one per
//!   generated point (the octree of [`volut_pointcloud::octree`] is the
//!   paper's spatial structure; on CPU the k-d tree answers the same
//!   queries faster, so it backs the per-point search here while the
//!   octree's self-contained-leaf fast path remains available — the
//!   `knn_backends` bench compares all backends). The tree is
//!   scratch-resident (see [`super::IndexCache`]): frames whose geometry is
//!   unchanged skip the rebuild entirely, and the queries go through the
//!   allocation-free `super::batched_knn_into` path — a *self-join* of
//!   the frame cloud against itself, which the batch layer answers with the
//!   dual-tree leaf-pair kernel of [`volut_pointcloud::dualtree`] at
//!   production sizes;
//! * derives each new point's neighborhood via neighbor-relationship reuse
//!   (Eq. 2 / [`super::reuse::merge_and_prune`]);
//! * runs the per-point work in parallel across CPU threads (the stand-in
//!   for the paper's CUDA kernels), storing all neighbor lists in flat CSR
//!   [`Neighborhoods`] buffers that the caller's
//!   [`super::FrameScratch`] recycles across frames;
//! * on delta frames, generates only the rows the churn invalidated: the
//!   temporal layer classifies every source row against the previous
//!   frame's cached outputs (`super::temporal::plan_outputs`), the fresh
//!   subset runs as one compacted batch through
//!   [`dilated_interpolate_rows_into`] (midpoints via the SIMD SoA kernel
//!   [`volut_pointcloud::kernels::pair_midpoints_into`]), and everything
//!   else is copied forward index-remapped and bit-identically.
//!
//! Interpolation partners are drawn from a small RNG seeded per *source
//! point* by the point's position bits (`super::row_seed`), so the output
//! is bit-identical regardless of worker count, chunking, or how rows moved
//! between frames — the invariance the copy-forward path relies on.

use super::temporal::{FreshOutputs, OutputKind};
use super::{
    colorize, distribute_new_points_into, FrameScratch, InterpolationResult, InterpolationTimings,
    OpCounts,
};
use crate::config::SrConfig;
use crate::error::Error;
use crate::Result;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::time::Instant;
use volut_pointcloud::kernels;
use volut_pointcloud::knn::NeighborSearch;
use volut_pointcloud::soa::SoaPositions;
use volut_pointcloud::{par, Neighborhoods, NeighborhoodsView, Point3, PointCloud};

/// Upsamples `low` to roughly `ratio ×` its point count using dilated
/// interpolation with neighbor reuse.
///
/// # Errors
/// Returns an error when the configuration or ratio is invalid, or when the
/// input has fewer than two points.
///
/// # Example
///
/// ```
/// use volut_core::{config::SrConfig, interpolate::dilated::dilated_interpolate};
/// use volut_pointcloud::synthetic;
///
/// # fn main() -> Result<(), volut_core::Error> {
/// let low = synthetic::sphere(500, 1.0, 1);
/// let out = dilated_interpolate(&low, &SrConfig::default(), 2.0)?;
/// assert_eq!(out.cloud.len(), 1000);
/// # Ok(())
/// # }
/// ```
pub fn dilated_interpolate(
    low: &PointCloud,
    config: &SrConfig,
    ratio: f64,
) -> Result<InterpolationResult> {
    dilated_interpolate_with(low, config, ratio, &mut FrameScratch::new())
}

/// Generates the interpolated outputs of a *subset* of source rows, appending
/// to `out_points` / `out_parents` (and, when neighbor reuse is on, one
/// Eq. 2 merged-and-pruned neighborhood row per generated point to
/// `out_hoods`).
///
/// `rows` lists the source rows to generate, ascending; `counts[i]` is the
/// per-row generation count (see `super::distribute_new_points_into`);
/// `soa` must mirror `positions` ([`SoaPositions::fill`]). Calling this over
/// the full row set is bit-identical to the legacy whole-frame batch — the
/// partial-batch entry exists so the temporal layer can recompute *only*
/// churn-invalidated rows. Midpoints are computed by the SIMD SoA kernel
/// [`kernels::pair_midpoints_into`] (scalar fallback bit-identical).
#[allow(clippy::too_many_arguments)]
pub fn dilated_interpolate_rows_into(
    positions: &[Point3],
    soa: &SoaPositions,
    dilated: NeighborhoodsView<'_>,
    config: &SrConfig,
    counts: &[usize],
    rows: &[u32],
    out_points: &mut Vec<Point3>,
    out_parents: &mut Vec<(usize, usize)>,
    out_hoods: Option<&mut Neighborhoods>,
) {
    debug_assert_eq!(soa.len(), positions.len());
    let start = out_points.len();
    let pstart = out_parents.len();
    let total: usize = rows.iter().map(|&r| counts[r as usize]).sum();
    let mut pair_a: Vec<u32> = Vec::with_capacity(total);
    let mut pair_b: Vec<u32> = Vec::with_capacity(total);
    let mut used: Vec<u32> = Vec::new();
    for &row in rows {
        let i = row as usize;
        let count = counts[i];
        if count == 0 {
            continue;
        }
        let hood = dilated.row(i);
        debug_assert!(!hood.is_empty(), "stripped dilated row {i} is empty");
        if hood.is_empty() {
            continue;
        }
        // Seeding per source point — by position bits — keeps the draw
        // sequence independent of chunking *and* of the row's index.
        let mut rng = StdRng::seed_from_u64(super::row_seed(config.seed, positions[i]));
        // Random subset S_i of the dilated neighborhood, one partner per
        // generated point — drawn *without replacement* (a repeated partner
        // would duplicate a midpoint and add no coverage), falling back to
        // repeats only once the neighborhood is exhausted. The hood holds
        // distinct indices, so rejection always terminates.
        used.clear();
        for _ in 0..count {
            let mut j = hood[rng.random_range(0..hood.len())];
            if used.len() < hood.len() {
                while used.contains(&j) {
                    j = hood[rng.random_range(0..hood.len())];
                }
            }
            used.push(j);
            pair_a.push(row);
            pair_b.push(j);
            out_parents.push((i, j as usize));
        }
    }
    out_points.resize(start + pair_a.len(), Point3::ZERO);
    kernels::pair_midpoints_into(soa, &pair_a, &pair_b, &mut out_points[start..]);
    if let Some(out_hoods) = out_hoods {
        // Derive every generated point's neighborhood in one batched
        // merge-and-prune pass (Eq. 2): the k-nearest subsets (heads of the
        // dilated lists) serve as the parents' neighbor lists for reuse.
        super::reuse::merge_and_prune_rows(
            &out_points[start..],
            &out_parents[pstart..],
            dilated,
            positions,
            config.k,
            out_hoods,
        );
    }
}

/// [`dilated_interpolate`] with caller-provided scratch buffers (reused
/// across frames of a streaming session).
///
/// # Errors
/// Same as [`dilated_interpolate`].
pub fn dilated_interpolate_with(
    low: &PointCloud,
    config: &SrConfig,
    ratio: f64,
    scratch: &mut FrameScratch,
) -> Result<InterpolationResult> {
    config.validate()?;
    config.validate_ratio(ratio)?;
    if low.len() < 2 {
        return Err(Error::InsufficientPoints {
            required: 2,
            available: low.len(),
        });
    }

    let mut timings = InterpolationTimings::default();
    let positions = low.positions();
    let dilated_k = config.dilated_neighborhood();
    let mut neighborhoods = scratch.take_neighborhoods();

    // --- Index + kNN stage: one dilated query per original point — the
    // self-join that dominates frame time (§4.1). The temporal layer owns
    // the whole pass: the scratch-resident k-d tree is reused, patched or
    // rebuilt depending on how the frame relates to the previous one, and
    // rows whose kNN ball the churn cannot touch are copied forward from
    // the previous frame instead of recomputed (bit-identical either way —
    // see [`super::temporal`]). Cold frames run the full dual-tree /
    // single-tree batch machinery exactly as before.
    // (The container is taken out of the scratch for the call so the
    // temporal layer can borrow the rest of the scratch mutably.)
    let mut raw_hoods = std::mem::take(&mut scratch.raw_hoods);
    super::temporal::self_join(low, dilated_k + 1, scratch, &mut raw_hoods, &mut timings);

    // Strip the self-match from each row and cap at the dilated size (a
    // linear copy, negligible next to the queries themselves).
    let t0 = Instant::now();
    scratch.dilated.clear();
    scratch
        .dilated
        .reserve_rows(low.len(), low.len() * dilated_k);
    for (i, row) in raw_hoods.iter().enumerate() {
        scratch.dilated.push_row_u32_iter(
            row.iter()
                .copied()
                .filter(|&j| j as usize != i)
                .take(dilated_k),
        );
    }
    raw_hoods.clear();
    scratch.raw_hoods = raw_hoods;
    timings.knn += t0.elapsed();

    let mut ops = OpCounts {
        knn_queries: low.len() as u64,
        candidates_examined: scratch.dilated.total_indices() as u64 * 4,
        points_generated: 0,
        reused_neighborhoods: 0,
    };

    // --- Plan: classify every row as copy-forward or recompute against the
    // previous frame's cached outputs (Cold plans recompute everything).
    let t1 = Instant::now();
    distribute_new_points_into(low.len(), ratio, &mut scratch.counts);
    super::temporal::plan_outputs(
        &mut scratch.temporal,
        &scratch.counts,
        low,
        config,
        ratio,
        OutputKind::Dilated,
    );

    // --- Interpolation stage: generate only the fresh rows, as one
    // compacted batch (parallel across chunks of the fresh-row list).
    let counts = scratch.counts.as_slice();
    let dilated = &scratch.dilated;
    let fresh_rows = scratch.temporal.plan.fresh_rows.as_slice();
    if !fresh_rows.is_empty() {
        scratch.soa.fill(positions);
    }
    let soa = &scratch.soa;
    let cfg = *config;
    let mut fresh_points: Vec<Point3> = Vec::new();
    let mut fresh_parents: Vec<(usize, usize)> = Vec::new();
    let mut fresh_hoods = cfg.reuse_neighbors.then(Neighborhoods::new);
    let workers = par::worker_count(fresh_rows.len(), 2_000);
    if workers <= 1 {
        dilated_interpolate_rows_into(
            positions,
            soa,
            dilated.view(),
            &cfg,
            counts,
            fresh_rows,
            &mut fresh_points,
            &mut fresh_parents,
            fresh_hoods.as_mut(),
        );
    } else {
        let chunk = fresh_rows.len().div_ceil(workers).max(1);
        let partials = par::map_chunks(fresh_rows.len(), chunk, |_, range| {
            let mut pts = Vec::new();
            let mut prs = Vec::new();
            let mut hds = cfg.reuse_neighbors.then(Neighborhoods::new);
            dilated_interpolate_rows_into(
                positions,
                soa,
                dilated.view(),
                &cfg,
                counts,
                &fresh_rows[range],
                &mut pts,
                &mut prs,
                hds.as_mut(),
            );
            (pts, prs, hds)
        });
        for (pts, prs, hds) in &partials {
            fresh_points.extend_from_slice(pts);
            fresh_parents.extend_from_slice(prs);
            if let (Some(all), Some(part)) = (fresh_hoods.as_mut(), hds.as_ref()) {
                all.append(part);
            }
        }
    }

    // --- Assemble: interleave copied-forward (index-remapped) and fresh
    // outputs into final frame order.
    let mut cloud = low.clone();
    let mut parents = Vec::new();
    super::temporal::assemble_outputs(
        &scratch.temporal,
        counts,
        FreshOutputs {
            points: &fresh_points,
            parents: &fresh_parents,
            hoods: fresh_hoods.as_ref(),
        },
        &mut cloud,
        &mut parents,
        config.reuse_neighbors.then_some(&mut neighborhoods),
    );
    ops.points_generated = (cloud.len() - low.len()) as u64;
    if config.reuse_neighbors {
        ops.reused_neighborhoods = ops.points_generated;
    }
    timings.interpolation += t1.elapsed();
    if !config.reuse_neighbors {
        // No-reuse ablation: exact batched queries for every generated point
        // (the plan is always Cold here, so `fresh_points` is all of them).
        let t = Instant::now();
        scratch
            .index
            .cached_tree()
            .knn_batch(&fresh_points, config.k, &mut neighborhoods);
        timings.knn += t.elapsed();
        ops.knn_queries += fresh_points.len() as u64;
        ops.candidates_examined += fresh_points.len() as u64 * config.k as u64 * 4;
    }

    // --- Colorization stage: copy cached tail colors forward when every
    // source color is unchanged, blending only the fresh ordinals.
    let t2 = Instant::now();
    if super::temporal::scatter_cached_colors(&scratch.temporal, &mut cloud, low.len()) {
        colorize::colorize_rows(
            &mut cloud,
            low,
            low.len(),
            neighborhoods.view(),
            &parents,
            &scratch.temporal.plan.fresh_ordinals,
        );
    } else {
        colorize::colorize_new_points(&mut cloud, low, low.len(), neighborhoods.view(), &parents);
    }
    timings.colorization += t2.elapsed();

    // --- Capture this frame's outputs as the next frame's reuse source.
    let t3 = Instant::now();
    super::temporal::capture_outputs(
        &mut scratch.temporal,
        counts,
        low,
        config,
        ratio,
        OutputKind::Dilated,
        &cloud,
        &parents,
        &neighborhoods,
    );
    timings.interpolation += t3.elapsed();

    Ok(InterpolationResult {
        cloud,
        original_len: low.len(),
        parents,
        neighborhoods,
        timings,
        ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use volut_pointcloud::{metrics, sampling, synthetic};

    #[test]
    fn reaches_requested_ratio() {
        let low = synthetic::sphere(500, 1.0, 1);
        for ratio in [1.5, 2.0, 3.0, 4.0] {
            let out = dilated_interpolate(&low, &SrConfig::default(), ratio).unwrap();
            assert_eq!(
                out.cloud.len(),
                (500.0 * ratio).round() as usize,
                "ratio {ratio}"
            );
        }
    }

    #[test]
    fn improves_chamfer_distance() {
        let gt = synthetic::torus(3000, 1.0, 0.3, 2);
        let low = sampling::random_downsample_exact(&gt, 1000, 1).unwrap();
        let out = dilated_interpolate(&low, &SrConfig::default(), 3.0).unwrap();
        let before = metrics::chamfer_distance(&low, &gt);
        let after = metrics::chamfer_distance(&out.cloud, &gt);
        assert!(after < before);
    }

    #[test]
    fn dilated_beats_naive_on_nonuniform_density() {
        // On a biased (non-uniform) downsample the dilated interpolation
        // should achieve a lower Chamfer distance than the naive baseline,
        // mirroring Figure 4 / Figures 7-10.
        let gt = synthetic::humanoid(4000, 0.3, 3);
        let low = sampling::biased_downsample(&gt, 0.25, 5).unwrap();
        let naive = super::super::naive::naive_interpolate(&low, &SrConfig::k4d1(), 4.0).unwrap();
        let dilated = dilated_interpolate(&low, &SrConfig::k4d2(), 4.0).unwrap();
        let cd_naive = metrics::chamfer_distance(&naive.cloud, &gt);
        let cd_dilated = metrics::chamfer_distance(&dilated.cloud, &gt);
        assert!(
            cd_dilated < cd_naive * 1.05,
            "dilated ({cd_dilated}) should not be worse than naive ({cd_naive})"
        );
    }

    #[test]
    fn neighborhoods_are_populated_and_valid() {
        let low = synthetic::sphere(300, 1.0, 4);
        let cfg = SrConfig::default();
        let out = dilated_interpolate(&low, &cfg, 2.0).unwrap();
        assert_eq!(out.neighborhoods.len(), out.new_points());
        for hood in out.neighborhoods.iter() {
            assert!(!hood.is_empty());
            assert!(hood.len() <= cfg.k);
            assert!(hood.iter().all(|&i| (i as usize) < low.len()));
        }
        assert!(out.ops.reused_neighborhoods > 0);
    }

    #[test]
    fn reuse_disabled_still_produces_neighborhoods() {
        let low = synthetic::sphere(200, 1.0, 5);
        let cfg = SrConfig {
            reuse_neighbors: false,
            ..SrConfig::default()
        };
        let out = dilated_interpolate(&low, &cfg, 2.0).unwrap();
        assert_eq!(out.neighborhoods.len(), out.new_points());
        for hood in out.neighborhoods.iter() {
            assert!(!hood.is_empty());
        }
        assert_eq!(out.ops.reused_neighborhoods, 0);
    }

    #[test]
    fn colors_are_propagated() {
        let low = synthetic::sphere(200, 1.0, 6);
        let out = dilated_interpolate(&low, &SrConfig::default(), 2.5).unwrap();
        assert!(out.cloud.has_colors());
        assert_eq!(out.cloud.colors().unwrap().len(), out.cloud.len());
    }

    #[test]
    fn rejects_bad_inputs() {
        let low = synthetic::sphere(50, 1.0, 7);
        assert!(dilated_interpolate(&low, &SrConfig::default(), 0.2).is_err());
        let tiny = volut_pointcloud::PointCloud::from_positions(vec![Point3::ZERO]);
        assert!(dilated_interpolate(&tiny, &SrConfig::default(), 2.0).is_err());
    }

    #[test]
    fn timings_are_recorded() {
        let low = synthetic::sphere(500, 1.0, 8);
        let out = dilated_interpolate(&low, &SrConfig::default(), 2.0).unwrap();
        assert!(out.timings.total() > std::time::Duration::ZERO);
        assert_eq!(out.ops.knn_queries, 500);
    }

    #[test]
    fn deterministic_and_scratch_independent() {
        // Per-source-point RNG seeding makes the result independent of the
        // worker count and of scratch reuse.
        let low = synthetic::sphere(2500, 1.0, 11);
        let a = dilated_interpolate(&low, &SrConfig::default(), 2.3).unwrap();
        let mut scratch = FrameScratch::new();
        let warmup =
            dilated_interpolate_with(&low, &SrConfig::default(), 2.3, &mut scratch).unwrap();
        scratch.recycle_neighborhoods(warmup.neighborhoods);
        let b = dilated_interpolate_with(&low, &SrConfig::default(), 2.3, &mut scratch).unwrap();
        assert_eq!(a.cloud, b.cloud);
        assert_eq!(a.neighborhoods, b.neighborhoods);
        assert_eq!(a.parents, b.parents);
    }

    #[test]
    fn rows_into_over_full_set_matches_whole_frame_batch() {
        // The partial-batch entry over the complete row list must reproduce
        // the legacy whole-frame output bit for bit.
        let low = synthetic::humanoid(900, 0.35, 21);
        let cfg = SrConfig::default();
        let ratio = 2.4;
        let full = dilated_interpolate(&low, &cfg, ratio).unwrap();

        let mut scratch = FrameScratch::new();
        let warm = dilated_interpolate_with(&low, &cfg, ratio, &mut scratch).unwrap();
        assert_eq!(warm.cloud, full.cloud);
        // Rebuild the inputs the partial entry needs from the scratch state.
        let positions = low.positions();
        let mut soa = SoaPositions::default();
        soa.fill(positions);
        let mut counts = Vec::new();
        distribute_new_points_into(low.len(), ratio, &mut counts);
        let rows: Vec<u32> = (0..low.len() as u32).collect();
        let mut pts = Vec::new();
        let mut prs = Vec::new();
        let mut hds = Neighborhoods::new();
        dilated_interpolate_rows_into(
            positions,
            &soa,
            scratch.dilated.view(),
            &cfg,
            &counts,
            &rows,
            &mut pts,
            &mut prs,
            Some(&mut hds),
        );
        assert_eq!(pts.as_slice(), &full.cloud.positions()[low.len()..]);
        assert_eq!(prs, full.parents);
        assert_eq!(hds, full.neighborhoods);
    }

    #[test]
    fn more_uniform_than_naive() {
        // Dilation should spread new points more uniformly: measure the mean
        // nearest-neighbor spacing variance proxy via mean spacing of new points.
        let gt = synthetic::sphere(3000, 1.0, 9);
        let low = sampling::biased_downsample(&gt, 0.3, 11).unwrap();
        let naive = super::super::naive::naive_interpolate(&low, &SrConfig::k4d1(), 2.0).unwrap();
        let dilated = dilated_interpolate(&low, &SrConfig::k4d2(), 2.0).unwrap();
        // Hausdorff to ground truth captures coverage of sparse regions.
        let h_naive = metrics::hausdorff_distance(&naive.cloud, &gt);
        let h_dilated = metrics::hausdorff_distance(&dilated.cloud, &gt);
        assert!(h_dilated <= h_naive * 1.2);
    }
}

//! Temporally coherent incremental kNN across streaming delta-frames.
//!
//! The kNN *self-join* — every frame point queries the index over the frame
//! cloud — dominates steady-state SR frame time (≈65% at 50k points; see the
//! `sr_stage_breakdown` bench), and volumetric streams rarely change that
//! cloud wholesale: consecutive frames share most of their geometry, with
//! churn arriving as spatially coherent removals and insertions (chunked
//! delivery, moving subjects). This module exploits that coherence: the
//! session's [`FrameScratch`] keeps the previous frame's raw self-join rows
//! and each row's k-th-distance radius, and a new frame only recomputes the
//! rows the churn can actually affect. Everything else is copied forward —
//! and the result is **bit-identical to a full recompute**.
//!
//! # The invalidation rule
//!
//! For a new frame differing from the cached one by removals `R` and
//! insertions `I` (diffed bitwise by [`FrameDelta::diff`], or supplied
//! explicitly through `SrSession::upsample_frame_delta`), a surviving
//! query's cached row must be recomputed when — and only when — one of:
//!
//! 1. the row references a removed neighbor (a member of its k-set is gone);
//! 2. an inserted point lies within the row's kNN ball: squared distance
//!    `<=` the row's k-th (worst) distance, the `<=` covering distance ties,
//!    tested exactly against a scratch-resident kd-tree over the inserted
//!    points ([`KdTree::any_within`]).
//!
//! Rows for inserted query points are always computed fresh. Everything
//! else is copied forward with its neighbor indices remapped through the
//! delta's survivor map.
//!
//! # Why the copied rows are bit-identical
//!
//! A cached row holds the `k` nearest old-cloud points of its query, sorted
//! by `(distance, index)` with ties broken by ascending index. If none of
//! its members were removed, every other *old* point still loses to them —
//! removals only shrink the competition. If additionally no inserted point
//! is inside (or on) the row's kNN ball, no *new* point can displace a
//! member or change the k-th distance. What remains is the tie order under
//! the new indices: [`FrameDelta`] guarantees survivors keep their relative
//! order (the diff conservatively churns anything reordered), distances are
//! unchanged (survivor positions are bitwise identical), so remapping the
//! indices preserves the row's `(distance, index)` sort exactly. Rows that
//! fail either test are recomputed through the very same batch machinery a
//! cold frame uses (`super::batched_knn_into` — a bichromatic batch on
//! the warm single-tree sweep), so recomputed rows match by construction.
//!
//! The engine falls back to the untouched full-recompute path whenever the
//! cache cannot help: the first frame of a session, a changed `k`, clouds
//! smaller than `k` (every row holds the whole cloud), survivor fractions
//! below [`MIN_SURVIVOR_FRACTION`] (at 100% churn the only cost over the
//! cold path is the failed diff — one linear pass), or when incremental
//! reuse is disabled via [`FrameScratch::set_incremental`].
//!
//! # Downstream output reuse (churn-proportional interpolation)
//!
//! Row reuse propagates past the kNN stage: an interpolated point, its
//! blended color and its refined position depend only on the source row's
//! neighborhood and the neighbor positions/colors, all of which are bitwise
//! unchanged for a row that was copied forward. The cache therefore also
//! snapshots the previous frame's *outputs* per source row — generated
//! positions, parents, generated-point neighborhoods, colors
//! (`OutputCache`) and the refined tail (`RefinedCache`) — and each
//! frame `plan_outputs` classifies every new row as copy-forward or
//! recompute (`FramePlan`):
//!
//! * a **dilated** row's outputs are reusable when the row itself and every
//!   cached partner's row were copied forward (the generated neighborhoods
//!   are derived from the parents' rows, so parent-row validity covers
//!   them);
//! * a **naive** row additionally checks each cached generated point's own
//!   exact-kNN ball against the removals and the inserted-point kd-tree —
//!   the same rule the row cache uses, applied per generated point.
//!
//! Both interpolators draw partners from an RNG seeded by the *source
//! point's position bits* (`super::row_seed`), so a copied-forward row
//! replays the identical draw sequence under its new index and reuse stays
//! bit-identical to a cold recompute. Colors are copied forward only when
//! every survivor's color is unchanged (`colors_ok`); refined positions
//! only when the same pipeline (by id) refined the previous frame. Staleness
//! is guarded by a per-`self_join` serial: outputs must have been captured
//! by the join immediately preceding the current one, otherwise the plan
//! degrades to a cold recompute (never to wrong output). Forcing the cold
//! path — e.g. for benchmarking — is one call:
//! [`FrameScratch::set_incremental`]`(false)`.
//!
//! # Cache-flush invariants
//!
//! The caches are only ever *consulted* after re-validation against the
//! current frame (digest + bitwise position compare, or a verified /
//! re-diffed [`FrameDelta`]), so a stale entry can cost time but never
//! correctness — **provided the cached state actually describes a frame the
//! session once processed**. A transport layer that feeds the session
//! reconstructed geometry (delta streaming with loss recovery) must uphold
//! that provenance; when it cannot — a gap it could not splice, a checksum
//! mismatch, any doubt about what the previous frame really was — it flushes
//! via [`FrameScratch::flush_temporal`], which drops the temporal cache
//! (rows, outputs, refined tail, plan, any pending delta) *and* the spatial
//! index cache together. The two must fall together: the index patch path
//! trusts `temporal.positions` as the old frame, so a flushed temporal cache
//! with a live index (or vice versa) would re-correlate state across the
//! discontinuity. After a flush the next frame takes the cold full-recompute
//! path, whose output depends only on that frame's bits (the interpolators
//! seed per-row RNG from position bits, `super::row_seed`) — which is what
//! makes post-resync output bit-identical to a never-faulted session.
//!
//! [`FrameScratch::flush_temporal`]: super::FrameScratch::flush_temporal
//!
//! [`FrameDelta`]: volut_pointcloud::delta::FrameDelta
//! [`FrameDelta::diff`]: volut_pointcloud::delta::FrameDelta::diff
//! [`KdTree::any_within`]: volut_pointcloud::kdtree::KdTree::any_within
//! [`FrameScratch`]: super::FrameScratch
//! [`FrameScratch::set_incremental`]: super::FrameScratch::set_incremental

use super::{batched_knn_into, FrameScratch, InterpolationTimings};
use crate::config::SrConfig;
use std::time::Instant;
use volut_pointcloud::delta::{DeltaError, FrameDelta, REMOVED};
use volut_pointcloud::kdtree::KdTree;
use volut_pointcloud::{Color, Neighborhoods, Point3, PointCloud};

/// Smallest fraction of surviving points for which the incremental path is
/// attempted; below it (heavy churn) the copy-forward bookkeeping cannot
/// beat the plain full sweep, so the engine takes the untouched cold path.
pub const MIN_SURVIVOR_FRACTION: f64 = 0.5;

/// Row-reuse counters of the incremental kNN path (see the module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TemporalStats {
    /// Self-join rows copied forward from the previous frame's cache.
    pub rows_reused: u64,
    /// Self-join rows recomputed: inserted queries plus invalidated rows.
    pub rows_recomputed: u64,
    /// Frames answered incrementally (including identical-frame wholesale
    /// row reuse).
    pub incremental_frames: u64,
    /// Frames that took the full-recompute path (cold frames, heavy churn,
    /// ineligible shapes).
    pub full_frames: u64,
    /// Generated points whose interpolated outputs (position, parents,
    /// neighborhood) were copied forward from the previous frame.
    pub gen_points_reused: u64,
    /// Generated points recomputed through the interpolation cold path.
    pub gen_points_recomputed: u64,
    /// Generated points whose refined positions were copied forward (no LUT
    /// lookup / NN inference performed).
    pub refined_points_reused: u64,
    /// Generated points refined fresh (lookup stats cover exactly these).
    pub refined_points_recomputed: u64,
}

/// How [`self_join`] answered the current frame — the anchor for every
/// downstream reuse decision of the same frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum JoinOutcome {
    /// Full recompute: nothing about the previous frame applies.
    #[default]
    Cold,
    /// The frame is bitwise identical to the cached one.
    Identical,
    /// The frame was answered through the incremental row machinery;
    /// `old_to_new_buf` / `row_valid` describe the old→new relation.
    Incremental,
}

/// Which interpolator captured / wants the cached outputs. The per-row
/// validity rule differs (see the module docs), so cached outputs are never
/// served across kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OutputKind {
    /// Dilated interpolation with neighbor-relationship reuse.
    Dilated,
    /// Naive baseline (exact per-generated-point kNN rows).
    Naive,
}

/// Everything that must match before cached outputs may be consulted at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OutputKey {
    config: SrConfig,
    ratio_bits: u64,
    kind: OutputKind,
}

/// The previous frame's interpolation outputs, per source row: the reuse
/// source for positions, parents, generated-point neighborhoods and colors.
/// All buffers are cleared + refilled per capture (capacity is monotone).
#[derive(Debug, Default)]
pub(crate) struct OutputCache {
    valid: bool,
    /// `join_serial` of the frame that captured these outputs; a plan only
    /// trusts them when that was the join immediately before the current one.
    serial: u64,
    key: Option<OutputKey>,
    /// Per-source-row prefix sums into the tail arrays (`old_n + 1` entries).
    pub(crate) offsets: Vec<u32>,
    /// Generated positions (the previous frame's tail, in output order).
    pub(crate) points: Vec<Point3>,
    /// Parent pairs (old indices; `.0` is the source row).
    pub(crate) parents: Vec<(u32, u32)>,
    /// Generated-point neighborhoods (old indices), one row per tail point.
    pub(crate) hoods: Neighborhoods,
    /// Whether the captured frame carried colors.
    has_colors: bool,
    /// Colors of the generated tail.
    pub(crate) colors: Vec<Color>,
    /// Colors of the captured frame's source points (survivor-change check).
    low_colors: Vec<Color>,
}

/// The previous frame's refined tail, owned by the pipeline that produced it.
#[derive(Debug, Default)]
pub(crate) struct RefinedCache {
    valid: bool,
    /// Id of the [`crate::SrPipeline`] that refined it (refiners differ).
    owner: u64,
    /// `join_serial` of the frame whose tail this is.
    serial: u64,
    points: Vec<Point3>,
}

/// How much of the cached outputs the current frame may copy forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub(crate) enum PlanMode {
    /// Recompute everything (no cache, staleness, key mismatch, heavy churn).
    #[default]
    Cold,
    /// The frame equals the cached one: every output copies forward wholesale.
    Identical,
    /// Per-row: `row_src` maps reusable new rows to their cached source row.
    Incremental,
}

/// The per-frame reuse plan produced by [`plan_outputs`] and consumed by the
/// interpolator's assembly, the colorizer and the pipeline's refinement
/// stage. Buffers are scratch-resident and cleared per frame.
#[derive(Debug, Default)]
pub(crate) struct FramePlan {
    /// `true` between [`plan_outputs`] / [`note_unplanned_frame`] and the end
    /// of the frame ([`capture_refined`] consumes it) — the guard that keeps
    /// refined-tail reuse from ever crossing an interpolation it did not plan.
    active: bool,
    /// `join_serial` the plan was computed for.
    serial: u64,
    pub(crate) mode: PlanMode,
    /// Per new row: cached source row, or `u32::MAX` to recompute
    /// (`Incremental` mode only).
    pub(crate) row_src: Vec<u32>,
    /// Per new tail ordinal: cached source ordinal, or `u32::MAX` if fresh.
    pub(crate) ordinal_src: Vec<u32>,
    /// New rows to generate fresh, ascending. All rows in `Cold` mode.
    pub(crate) fresh_rows: Vec<u32>,
    /// New tail ordinals to colorize/refine fresh, ascending.
    pub(crate) fresh_ordinals: Vec<u32>,
    /// `true` when every survivor's color is unchanged, so cached tail
    /// colors may be copied forward.
    pub(crate) colors_ok: bool,
    /// Tail length of the cached outputs (refined-reuse length guard).
    old_tail_len: usize,
}

/// The previous frame's self-join state plus the scratch the incremental
/// update needs, owned by [`FrameScratch`]. All buffers are reused across
/// frames: a steady-state churned sequence performs no allocation here.
#[derive(Debug)]
pub(crate) struct TemporalCache {
    /// `false` forces the engine onto the full-recompute path (and stops
    /// capturing) — the ablation/bench switch.
    pub(crate) enabled: bool,
    /// `true` when `positions`/`rows` describe the last processed frame.
    valid: bool,
    /// Row stride of the cached self-join (`k + 1` of the interpolator that
    /// captured it); a changed stride invalidates the cache.
    kq: usize,
    /// Geometry digest of the cached frame (first-pass identity check).
    digest: u64,
    /// Positions of the cached frame (the diff's "old" side).
    positions: Vec<Point3>,
    /// The cached raw self-join rows (uniform stride `kq`, ascending
    /// `(distance, index)` within each row).
    rows: Neighborhoods,
    /// Scratch: removed-id membership bitmap over old indices.
    removed_mark: Vec<bool>,
    /// Scratch: gathered positions of the inserted points.
    insert_positions: Vec<Point3>,
    /// Scratch: kd-tree over the inserted points (ball-intersection tests).
    insert_tree: KdTree,
    /// Scratch: new-frame indices whose rows must be recomputed.
    recompute: Vec<u32>,
    /// Scratch: query positions of `recompute`.
    queries: Vec<Point3>,
    /// Scratch: freshly computed rows for `recompute`, scattered into the
    /// output slab afterwards.
    fresh_rows: Neighborhoods,
    /// Delta supplied explicitly by the streaming layer for the next frame
    /// (verified before use; wrong deltas fall back to the bitwise diff).
    pub(crate) pending_delta: Option<FrameDelta>,
    /// Why the most recent externally supplied delta was rejected (`None`
    /// when it verified, or when no external delta was consumed yet) — the
    /// poisoning-detection signal a resilient session inspects after a
    /// frame whose delta it did not trust.
    pub(crate) last_delta_error: Option<DeltaError>,
    pub(crate) stats: TemporalStats,
    /// Bumped at every [`self_join`] / [`note_unplanned_frame`]; correlates
    /// the caches with the frame they were captured on.
    join_serial: u64,
    /// How the current frame's self-join was answered.
    last_outcome: JoinOutcome,
    /// Persisted copy of the frame delta's old→new survivor map
    /// (`Incremental` frames only; old-indexed, [`REMOVED`] for removals).
    pub(crate) old_to_new_buf: Vec<u32>,
    /// Old-indexed: `true` when that row was copied forward this frame.
    row_valid: Vec<bool>,
    /// Whether the current incremental frame had any inserted points (the
    /// `insert_tree` is only meaningful then).
    has_inserts: bool,
    /// The previous frame's interpolation outputs.
    pub(crate) outputs: OutputCache,
    /// The previous frame's refined tail.
    refined: RefinedCache,
    /// The current frame's reuse plan.
    pub(crate) plan: FramePlan,
}

impl Default for TemporalCache {
    fn default() -> Self {
        Self {
            enabled: true,
            valid: false,
            kq: 0,
            digest: 0,
            positions: Vec::new(),
            rows: Neighborhoods::new(),
            removed_mark: Vec::new(),
            insert_positions: Vec::new(),
            insert_tree: KdTree::default(),
            recompute: Vec::new(),
            queries: Vec::new(),
            fresh_rows: Neighborhoods::new(),
            pending_delta: None,
            last_delta_error: None,
            stats: TemporalStats::default(),
            join_serial: 0,
            last_outcome: JoinOutcome::Cold,
            old_to_new_buf: Vec::new(),
            row_valid: Vec::new(),
            has_inserts: false,
            outputs: OutputCache::default(),
            refined: RefinedCache::default(),
            plan: FramePlan::default(),
        }
    }
}

impl TemporalCache {
    /// Drops the cached frame and every downstream output cache (the next
    /// frame recomputes in full).
    pub(crate) fn invalidate(&mut self) {
        self.valid = false;
        self.pending_delta = None;
        self.outputs.valid = false;
        self.refined.valid = false;
        self.plan.active = false;
    }

    /// Capacity (bytes) currently reserved by the cache and its scratch.
    pub(crate) fn reserved_bytes(&self) -> usize {
        const U32: usize = std::mem::size_of::<u32>();
        const P3: usize = std::mem::size_of::<Point3>();
        (self.positions.capacity() + self.insert_positions.capacity() + self.queries.capacity())
            * P3
            + self.rows.reserved_bytes()
            + self.fresh_rows.reserved_bytes()
            + self.removed_mark.capacity()
            + self.row_valid.capacity()
            + (self.recompute.capacity() + self.old_to_new_buf.capacity()) * U32
            + self.insert_tree.reserved_bytes()
            + self.outputs.offsets.capacity() * U32
            + (self.outputs.points.capacity() + self.refined.points.capacity()) * P3
            + self.outputs.parents.capacity() * std::mem::size_of::<(u32, u32)>()
            + self.outputs.hoods.reserved_bytes()
            + (self.outputs.colors.capacity() + self.outputs.low_colors.capacity())
                * std::mem::size_of::<Color>()
            + (self.plan.row_src.capacity()
                + self.plan.ordinal_src.capacity()
                + self.plan.fresh_rows.capacity()
                + self.plan.fresh_ordinals.capacity())
                * U32
    }
}

/// The self-join kNN pass of both interpolators: appends one `kq`-wide row
/// per point of `low` to `out` (cleared first), bit-identical to
/// `batched_knn_into` over a fresh index, while reusing the scratch's
/// spatial index and — when the previous frame is coherent with this one —
/// the previous frame's rows. Updates `timings.index_build` (index
/// validation, patch or rebuild) and `timings.knn` (diff, invalidation,
/// copy-forward and recompute).
pub(crate) fn self_join(
    low: &PointCloud,
    kq: usize,
    scratch: &mut FrameScratch,
    out: &mut Neighborhoods,
    timings: &mut InterpolationTimings,
) {
    out.clear();
    let positions = low.positions();
    let n = positions.len();
    let digest = low.geometry_digest();
    let generation = scratch.geometry_generation;
    let pending = scratch.temporal.pending_delta.take();
    if pending.is_some() {
        // A fresh external delta resets the rejection record; a rejection
        // below re-arms it for the streaming layer to inspect.
        scratch.temporal.last_delta_error = None;
    }
    scratch.temporal.join_serial += 1;
    scratch.temporal.last_outcome = JoinOutcome::Cold;

    // Eligibility of the cached rows (not yet of this specific frame).
    let cache_ready = scratch.temporal.enabled
        && scratch.temporal.valid
        && scratch.temporal.kq == kq
        && scratch.temporal.positions.len() > kq
        && n > kq;

    // --- Unchanged frame: cached index, and (when available) every cached
    // row reused wholesale.
    let t0 = Instant::now();
    if scratch.index.is_fresh(positions, generation, digest) {
        scratch.index.reuse(generation);
        timings.index_build += t0.elapsed();
        let t1 = Instant::now();
        if cache_ready
            && scratch.temporal.digest == digest
            && scratch.temporal.positions.as_slice() == positions
        {
            let slab = out.push_uniform_rows(n, kq);
            slab.copy_from_slice(scratch.temporal.rows.indices());
            scratch.temporal.stats.rows_reused += n as u64;
            scratch.temporal.stats.incremental_frames += 1;
            scratch.temporal.last_outcome = JoinOutcome::Identical;
            timings.knn += t1.elapsed();
            return;
        }
        batched_knn_into(
            scratch.index.cached_tree(),
            positions,
            kq,
            &mut scratch.dualtree,
            out,
        );
        timings.knn += t1.elapsed();
        capture(scratch, positions, digest, kq, out);
        scratch.temporal.stats.full_frames += 1;
        return;
    }
    timings.index_build += t0.elapsed();

    // --- Changed frame: relate it to the cached one. The diff aborts as
    // soon as the survivor threshold is unreachable, so a scene cut pays
    // about half a diff walk on top of the cold path it then takes.
    let t1 = Instant::now();
    let delta = if cache_ready {
        let min_survivors = (scratch.temporal.positions.len().max(n) as f64 * MIN_SURVIVOR_FRACTION)
            .ceil() as usize;
        let external = pending.and_then(|d| {
            match d.verify(&scratch.temporal.positions, positions) {
                Ok(()) => Some(d),
                Err(e) => {
                    // A wrong external delta is recorded (streaming layers
                    // read the reason as their cache-poisoning signal) and
                    // the engine falls back to its own diff.
                    scratch.temporal.last_delta_error = Some(e);
                    None
                }
            }
        });
        match external {
            Some(d) => Some(d),
            None => FrameDelta::diff_bounded(&scratch.temporal.positions, positions, min_survivors),
        }
    } else {
        None
    };
    let incremental = delta.as_ref().is_some_and(|d| {
        d.new_len() == n
            && d.survivors() as f64 >= d.old_len().max(n) as f64 * MIN_SURVIVOR_FRACTION
    });
    timings.knn += t1.elapsed();

    if !incremental {
        // The untouched cold path: full rebuild, full sweep.
        let t2 = Instant::now();
        scratch.index.rebuild(positions, generation, digest);
        timings.index_build += t2.elapsed();
        let t3 = Instant::now();
        batched_knn_into(
            scratch.index.cached_tree(),
            positions,
            kq,
            &mut scratch.dualtree,
            out,
        );
        timings.knn += t3.elapsed();
        capture(scratch, positions, digest, kq, out);
        scratch.temporal.stats.full_frames += 1;
        return;
    }
    let delta = delta.expect("incremental implies a delta");

    // Patch the index — but only when it indexes exactly the cached old
    // frame (a stale index, e.g. after an ineligible in-between frame,
    // rebuilds instead).
    let t2 = Instant::now();
    if scratch.index.indexes(&scratch.temporal.positions) {
        scratch.index.patch(positions, generation, digest, &delta);
    } else {
        scratch.index.rebuild(positions, generation, digest);
    }
    timings.index_build += t2.elapsed();

    let t3 = Instant::now();
    incremental_rows(scratch, positions, kq, &delta, out);
    timings.knn += t3.elapsed();
    capture(scratch, positions, digest, kq, out);
    scratch.temporal.stats.incremental_frames += 1;
    scratch.temporal.last_outcome = JoinOutcome::Incremental;
}

/// Registers a frame that bypassed [`self_join`] (e.g. the naive
/// interpolator's partial-prefix path): the serial bump and a `Cold` plan
/// keep every cache from being correlated across the discontinuity.
pub(crate) fn note_unplanned_frame(t: &mut TemporalCache) {
    t.join_serial += 1;
    t.last_outcome = JoinOutcome::Cold;
    let p = &mut t.plan;
    p.active = true;
    p.serial = t.join_serial;
    p.mode = PlanMode::Cold;
    p.row_src.clear();
    p.ordinal_src.clear();
    p.fresh_rows.clear();
    p.fresh_ordinals.clear();
    p.colors_ok = false;
    p.old_tail_len = 0;
}

/// Produces the new frame's rows from the cached ones: copy-forward with
/// index remap for rows the churn cannot affect, a bichromatic batch
/// recompute for the rest (see the module docs for the invalidation rule).
fn incremental_rows(
    scratch: &mut FrameScratch,
    positions: &[Point3],
    kq: usize,
    delta: &FrameDelta,
    out: &mut Neighborhoods,
) {
    let n = positions.len();
    let old_n = delta.old_len();
    debug_assert_eq!(scratch.temporal.rows.total_indices(), old_n * kq);

    // Removed-neighbor membership bitmap.
    scratch.temporal.removed_mark.clear();
    scratch.temporal.removed_mark.resize(old_n, false);
    for &i in delta.removed() {
        scratch.temporal.removed_mark[i as usize] = true;
    }
    // Ball-intersection index over the inserted points.
    let has_inserts = !delta.inserted().is_empty();
    scratch.temporal.insert_positions.clear();
    scratch
        .temporal
        .insert_positions
        .extend(delta.inserted().iter().map(|&i| positions[i as usize]));
    {
        let t = &mut scratch.temporal;
        t.insert_tree.build_in(&t.insert_positions);
    }

    // Classify every surviving row; copy the valid ones forward. The
    // old→new map and the per-row validity verdicts persist on the cache:
    // [`plan_outputs`] reuses them to classify the downstream outputs.
    scratch.temporal.recompute.clear();
    let slab = out.push_uniform_rows(n, kq);
    {
        let t = &mut scratch.temporal;
        let old_to_new = delta.old_to_new();
        t.old_to_new_buf.clear();
        t.old_to_new_buf.extend_from_slice(old_to_new);
        t.row_valid.clear();
        t.row_valid.resize(old_n, false);
        t.has_inserts = has_inserts;
        for old_i in 0..old_n {
            let new_i = old_to_new[old_i];
            if new_i == REMOVED {
                continue;
            }
            let row = t.rows.row(old_i);
            let mut invalid = row.iter().any(|&j| t.removed_mark[j as usize]);
            if !invalid && has_inserts {
                // The row's kNN ball: squared distance to its k-th (worst)
                // entry, recomputed lazily from the cached frame with
                // [`Point3::distance_squared`] — the scan kernels' exact
                // arithmetic, so the `<=` intersection test below covers
                // distance ties precisely.
                let r2 = t.positions[old_i].distance_squared(t.positions[row[kq - 1] as usize]);
                invalid = t.insert_tree.any_within(t.positions[old_i], r2);
            }
            if invalid {
                t.recompute.push(new_i);
            } else {
                t.row_valid[old_i] = true;
                let dst = &mut slab[new_i as usize * kq..(new_i as usize + 1) * kq];
                for (d, &j) in dst.iter_mut().zip(row) {
                    *d = old_to_new[j as usize];
                }
            }
        }
        t.recompute.extend_from_slice(delta.inserted());
        t.stats.rows_reused += (n - t.recompute.len()) as u64;
        t.stats.rows_recomputed += t.recompute.len() as u64;
    }

    // Recompute the dirty rows as one bichromatic batch against the patched
    // index (the auto policy keeps it on the warm single-tree sweep) and
    // scatter them into their final slots.
    scratch.temporal.queries.clear();
    {
        let t = &mut scratch.temporal;
        t.queries
            .extend(t.recompute.iter().map(|&i| positions[i as usize]));
    }
    scratch.temporal.fresh_rows.clear();
    batched_knn_into(
        scratch.index.cached_tree(),
        &scratch.temporal.queries,
        kq,
        &mut scratch.dualtree,
        &mut scratch.temporal.fresh_rows,
    );
    for (r, &new_i) in scratch.temporal.recompute.iter().enumerate() {
        let src = scratch.temporal.fresh_rows.row(r);
        slab[new_i as usize * kq..(new_i as usize + 1) * kq].copy_from_slice(src);
    }
}

/// Snapshots this frame's rows as the next frame's reuse source. Frames the
/// cache cannot describe (tiny clouds whose rows are shorter than `kq`)
/// invalidate it instead.
fn capture(
    scratch: &mut FrameScratch,
    positions: &[Point3],
    digest: u64,
    kq: usize,
    out: &Neighborhoods,
) {
    let t = &mut scratch.temporal;
    if !t.enabled {
        return;
    }
    if kq == 0 || positions.len() <= kq {
        t.valid = false;
        return;
    }
    debug_assert_eq!(out.len(), positions.len());
    debug_assert_eq!(out.total_indices(), positions.len() * kq);
    t.kq = kq;
    t.digest = digest;
    t.positions.clear();
    t.positions.extend_from_slice(positions);
    t.rows.clear();
    t.rows.append(out);
    t.valid = true;
}

/// Whether every source color the cached outputs blended from is unchanged
/// in the new frame (tail colors may then copy forward bit-identically).
fn colors_match(
    o: &OutputCache,
    low: &PointCloud,
    outcome: JoinOutcome,
    old_to_new: &[u32],
) -> bool {
    match (o.has_colors, low.colors()) {
        (false, None) => true,
        (true, Some(lc)) => match outcome {
            JoinOutcome::Identical => o.low_colors.as_slice() == lc,
            JoinOutcome::Incremental => {
                o.low_colors.len() == old_to_new.len()
                    && old_to_new.iter().enumerate().all(|(old_i, &new_i)| {
                        new_i == REMOVED || o.low_colors[old_i] == lc[new_i as usize]
                    })
            }
            JoinOutcome::Cold => false,
        },
        _ => false,
    }
}

/// Classifies every new source row as copy-forward or recompute against the
/// cached outputs, filling [`FramePlan`]. Must run directly after the
/// frame's [`self_join`] (it keys off `last_outcome` and the row-validity
/// scratch that join left behind). `counts[i]` is the number of points the
/// interpolator will generate for row `i`. Any doubt degrades the plan to
/// `Cold` — wrong reuse is never an outcome, only missed reuse.
pub(crate) fn plan_outputs(
    t: &mut TemporalCache,
    counts: &[usize],
    low: &PointCloud,
    config: &SrConfig,
    ratio: f64,
    kind: OutputKind,
) -> PlanMode {
    let n = counts.len();
    let total: usize = counts.iter().sum();
    let serial = t.join_serial;
    {
        let p = &mut t.plan;
        p.active = true;
        p.serial = serial;
        p.mode = PlanMode::Cold;
        p.row_src.clear();
        p.ordinal_src.clear();
        p.fresh_rows.clear();
        p.fresh_ordinals.clear();
        p.colors_ok = false;
        p.old_tail_len = 0;
    }
    let key = OutputKey {
        config: *config,
        ratio_bits: ratio.to_bits(),
        kind,
    };
    // Dilated outputs are only row-deterministic when neighbor reuse is on
    // (the no-reuse path recomputes generated-point kNN globally).
    let hood_capable = kind == OutputKind::Naive || config.reuse_neighbors;
    let eligible = t.enabled
        && hood_capable
        && t.outputs.valid
        && t.outputs.serial + 1 == serial
        && t.outputs.key == Some(key);

    let mode = 'plan: {
        if !eligible {
            break 'plan PlanMode::Cold;
        }
        match t.last_outcome {
            JoinOutcome::Cold => PlanMode::Cold,
            JoinOutcome::Identical => {
                let o = &t.outputs;
                if o.offsets.len() != n + 1 || o.offsets[n] as usize != total {
                    break 'plan PlanMode::Cold;
                }
                debug_assert!(
                    (0..n).all(|i| (o.offsets[i + 1] - o.offsets[i]) as usize == counts[i]),
                    "identical frame must reproduce the cached per-row counts"
                );
                t.plan.colors_ok = colors_match(&t.outputs, low, JoinOutcome::Identical, &[]);
                t.plan.old_tail_len = t.outputs.points.len();
                t.stats.gen_points_reused += total as u64;
                PlanMode::Identical
            }
            JoinOutcome::Incremental => {
                let TemporalCache {
                    outputs: o,
                    plan: p,
                    row_valid,
                    removed_mark,
                    old_to_new_buf,
                    insert_tree,
                    has_inserts,
                    stats,
                    ..
                } = &mut *t;
                let o = &*o;
                let old_n = row_valid.len();
                if o.offsets.len() != old_n + 1 || old_to_new_buf.len() != old_n {
                    break 'plan PlanMode::Cold;
                }
                // Invert the survivor map over rows: new row -> cached row.
                p.row_src.resize(n, u32::MAX);
                for old_i in 0..old_n {
                    if row_valid[old_i] {
                        p.row_src[old_to_new_buf[old_i] as usize] = old_i as u32;
                    }
                }
                let positions = low.positions();
                let mut new_off: u32 = 0;
                let mut reused: u64 = 0;
                for (new_i, &count) in counts.iter().enumerate() {
                    let src = p.row_src[new_i];
                    let mut ok = src != u32::MAX;
                    if ok {
                        let o0 = o.offsets[src as usize] as usize;
                        let o1 = o.offsets[src as usize + 1] as usize;
                        ok = o1 - o0 == count
                            && match kind {
                                // A dilated row's outputs (points, parents,
                                // merged generated-point hoods) derive from
                                // the source row and its partners' rows.
                                OutputKind::Dilated => o.parents[o0..o1]
                                    .iter()
                                    .all(|&(_, b)| row_valid[b as usize]),
                                // A naive generated point owns an exact kNN
                                // row; apply the row invalidation rule to it.
                                OutputKind::Naive => (o0..o1).all(|ord| {
                                    let hood = o.hoods.row(ord);
                                    !hood.is_empty()
                                        && hood.iter().all(|&b| !removed_mark[b as usize])
                                        && (!*has_inserts || {
                                            let mid = o.points[ord];
                                            let last = *hood.last().unwrap() as usize;
                                            let r2 = mid.distance_squared(
                                                positions[old_to_new_buf[last] as usize],
                                            );
                                            !insert_tree.any_within(mid, r2)
                                        })
                                }),
                            };
                    }
                    if ok {
                        let o0 = o.offsets[src as usize];
                        let o1 = o.offsets[src as usize + 1];
                        p.ordinal_src.extend(o0..o1);
                        reused += count as u64;
                    } else {
                        p.row_src[new_i] = u32::MAX;
                        p.fresh_rows.push(new_i as u32);
                        p.fresh_ordinals.extend(new_off..new_off + count as u32);
                        p.ordinal_src.resize(p.ordinal_src.len() + count, u32::MAX);
                    }
                    new_off += count as u32;
                }
                debug_assert_eq!(new_off as usize, total);
                p.colors_ok = colors_match(o, low, JoinOutcome::Incremental, old_to_new_buf);
                p.old_tail_len = o.points.len();
                stats.gen_points_reused += reused;
                stats.gen_points_recomputed += total as u64 - reused;
                PlanMode::Incremental
            }
        }
    };
    if mode == PlanMode::Cold {
        t.plan.fresh_rows.extend(0..n as u32);
        t.stats.gen_points_recomputed += total as u64;
    }
    t.plan.mode = mode;
    mode
}

/// The freshly computed outputs for the plan's `fresh_rows`, compacted in
/// row order (`points[fc]` is the fc-th fresh point across all fresh rows).
pub(crate) struct FreshOutputs<'a> {
    pub(crate) points: &'a [Point3],
    pub(crate) parents: &'a [(usize, usize)],
    pub(crate) hoods: Option<&'a Neighborhoods>,
}

/// Interleaves cached (index-remapped) and fresh outputs into the final
/// frame order dictated by `counts`, appending to `cloud`/`parents` and —
/// when requested — `hoods_out`.
pub(crate) fn assemble_outputs(
    t: &TemporalCache,
    counts: &[usize],
    fresh: FreshOutputs<'_>,
    cloud: &mut PointCloud,
    parents: &mut Vec<(usize, usize)>,
    mut hoods_out: Option<&mut Neighborhoods>,
) {
    match t.plan.mode {
        PlanMode::Cold => {
            cloud.extend_positions(fresh.points);
            parents.extend_from_slice(fresh.parents);
            if let (Some(out), Some(fh)) = (hoods_out.as_deref_mut(), fresh.hoods) {
                out.append(fh);
            }
        }
        PlanMode::Identical => {
            let o = &t.outputs;
            cloud.extend_positions(&o.points);
            parents.extend(o.parents.iter().map(|&(a, b)| (a as usize, b as usize)));
            if let Some(out) = hoods_out.as_deref_mut() {
                out.append(&o.hoods);
            }
        }
        PlanMode::Incremental => {
            let o = &t.outputs;
            let p = &t.plan;
            let map = t.old_to_new_buf.as_slice();
            let total: usize = counts.iter().sum();
            parents.reserve(total);
            if let Some(out) = hoods_out.as_deref_mut() {
                let indices =
                    o.hoods.total_indices() + fresh.hoods.map_or(0, Neighborhoods::total_indices);
                out.reserve_rows(total, indices);
            }
            let mut fc = 0usize;
            for (new_i, &count) in counts.iter().enumerate() {
                let src = p.row_src[new_i];
                if src == u32::MAX {
                    cloud.extend_positions(&fresh.points[fc..fc + count]);
                    parents.extend_from_slice(&fresh.parents[fc..fc + count]);
                    if let (Some(out), Some(fh)) = (hoods_out.as_deref_mut(), fresh.hoods) {
                        for r in 0..count {
                            out.push_row_u32(fh.row(fc + r));
                        }
                    }
                    fc += count;
                } else {
                    let o0 = o.offsets[src as usize] as usize;
                    let o1 = o.offsets[src as usize + 1] as usize;
                    cloud.extend_positions(&o.points[o0..o1]);
                    parents.extend(
                        o.parents[o0..o1]
                            .iter()
                            .map(|&(a, b)| (map[a as usize] as usize, map[b as usize] as usize)),
                    );
                    if let Some(out) = hoods_out.as_deref_mut() {
                        for ord in o0..o1 {
                            out.push_row_u32_iter(
                                o.hoods.row(ord).iter().map(|&j| map[j as usize]),
                            );
                        }
                    }
                }
            }
            debug_assert_eq!(fc, fresh.points.len());
        }
    }
}

/// Copies the cached tail colors forward for every reused ordinal (fresh
/// ordinals keep their placeholder and must be colorized by the caller).
/// Returns `false` — leaving the cloud untouched — unless the plan vouched
/// for the source colors (`colors_ok`) and every length lines up.
pub(crate) fn scatter_cached_colors(
    t: &TemporalCache,
    cloud: &mut PointCloud,
    original_len: usize,
) -> bool {
    let p = &t.plan;
    let o = &t.outputs;
    if !p.colors_ok || p.mode == PlanMode::Cold || !o.has_colors || !cloud.has_colors() {
        return false;
    }
    let tail_len = cloud.len() - original_len;
    let len_ok = match p.mode {
        PlanMode::Identical => o.colors.len() == tail_len,
        PlanMode::Incremental => p.ordinal_src.len() == tail_len,
        PlanMode::Cold => false,
    };
    if !len_ok {
        return false;
    }
    let mut colors = cloud.take_colors().expect("has_colors checked above");
    match p.mode {
        PlanMode::Identical => colors[original_len..].copy_from_slice(&o.colors),
        PlanMode::Incremental => {
            for (i, &src) in p.ordinal_src.iter().enumerate() {
                if src != u32::MAX {
                    colors[original_len + i] = o.colors[src as usize];
                }
            }
        }
        PlanMode::Cold => unreachable!(),
    }
    cloud
        .set_colors(colors)
        .expect("color count unchanged by scatter");
    true
}

/// Snapshots this frame's interpolation outputs as the next frame's reuse
/// source. Ineligible frames (disabled cache, no captured rows, hood-blind
/// dilated mode) invalidate the cache instead — never leave it stale.
#[allow(clippy::too_many_arguments)]
pub(crate) fn capture_outputs(
    t: &mut TemporalCache,
    counts: &[usize],
    low: &PointCloud,
    config: &SrConfig,
    ratio: f64,
    kind: OutputKind,
    cloud: &PointCloud,
    parents: &[(usize, usize)],
    hoods: &Neighborhoods,
) {
    let hood_capable = kind == OutputKind::Naive || config.reuse_neighbors;
    if !t.enabled || !t.valid || !hood_capable {
        t.outputs.valid = false;
        return;
    }
    let original_len = low.len();
    // Identical frames already have this tail captured bit-exactly: refresh
    // the serial (and colors, if those drifted) without the bulk copies.
    if t.plan.active
        && t.plan.serial == t.join_serial
        && t.plan.mode == PlanMode::Identical
        && t.outputs.valid
    {
        t.outputs.serial = t.join_serial;
        if !t.plan.colors_ok {
            capture_colors(&mut t.outputs, low, cloud, original_len);
        }
        return;
    }
    debug_assert_eq!(counts.len(), low.len());
    debug_assert_eq!(hoods.len(), parents.len());
    // The offsets below are derived from `counts`; a tail that does not add
    // up (degenerate inputs) must not be captured as a reuse source.
    let total: usize = counts.iter().sum();
    if cloud.len() - original_len != total || parents.len() != total {
        t.outputs.valid = false;
        return;
    }
    let o = &mut t.outputs;
    o.serial = t.join_serial;
    o.key = Some(OutputKey {
        config: *config,
        ratio_bits: ratio.to_bits(),
        kind,
    });
    o.offsets.clear();
    o.offsets.reserve(counts.len() + 1);
    let mut acc = 0u32;
    o.offsets.push(0);
    for &c in counts {
        acc += c as u32;
        o.offsets.push(acc);
    }
    o.points.clear();
    o.points
        .extend_from_slice(&cloud.positions()[original_len..]);
    o.parents.clear();
    o.parents
        .extend(parents.iter().map(|&(a, b)| (a as u32, b as u32)));
    o.hoods.clear();
    o.hoods.append(hoods);
    capture_colors(o, low, cloud, original_len);
    o.valid = true;
}

/// Captures the tail + source colors the output cache needs for `colors_ok`.
fn capture_colors(o: &mut OutputCache, low: &PointCloud, cloud: &PointCloud, original_len: usize) {
    o.colors.clear();
    o.low_colors.clear();
    if let (Some(cc), Some(lc)) = (cloud.colors(), low.colors()) {
        o.colors.extend_from_slice(&cc[original_len..]);
        o.low_colors.extend_from_slice(lc);
        o.has_colors = true;
    } else {
        o.has_colors = false;
    }
}

/// Copies cached refined positions onto the tail for every reused ordinal.
/// Returns `false` (tail untouched, caller refines in full) unless the
/// refined cache belongs to this pipeline (`owner`), covers exactly the
/// frame the current plan reuses from, and every length lines up. On `true`
/// the caller must still refine `plan.fresh_ordinals`.
pub(crate) fn reuse_refined_into(
    t: &mut TemporalCache,
    owner: u64,
    cloud: &mut PointCloud,
    original_len: usize,
) -> bool {
    let tail_len = cloud.len() - original_len;
    let ok = {
        let p = &t.plan;
        let r = &t.refined;
        t.enabled
            && p.active
            && p.serial == t.join_serial
            && r.valid
            && r.owner == owner
            && r.serial + 1 == t.join_serial
            && r.points.len() == p.old_tail_len
            && match p.mode {
                PlanMode::Identical => tail_len == p.old_tail_len,
                PlanMode::Incremental => p.ordinal_src.len() == tail_len,
                PlanMode::Cold => false,
            }
    };
    if !ok {
        t.stats.refined_points_recomputed += tail_len as u64;
        return false;
    }
    {
        let tail = &mut cloud.positions_mut()[original_len..];
        match t.plan.mode {
            PlanMode::Identical => tail.copy_from_slice(&t.refined.points),
            PlanMode::Incremental => {
                for (i, &src) in t.plan.ordinal_src.iter().enumerate() {
                    if src != u32::MAX {
                        tail[i] = t.refined.points[src as usize];
                    }
                }
            }
            PlanMode::Cold => unreachable!(),
        }
    }
    match t.plan.mode {
        PlanMode::Identical => t.stats.refined_points_reused += tail_len as u64,
        PlanMode::Incremental => {
            let fresh = t.plan.fresh_ordinals.len() as u64;
            t.stats.refined_points_reused += tail_len as u64 - fresh;
            t.stats.refined_points_recomputed += fresh;
        }
        PlanMode::Cold => unreachable!(),
    }
    true
}

/// Snapshots the refined tail as the next frame's reuse source and consumes
/// the frame's plan. Runs at the end of every pipeline frame; frames whose
/// interpolation did not plan (custom interpolators, bypassed paths)
/// invalidate the refined cache instead.
pub(crate) fn capture_refined(
    t: &mut TemporalCache,
    owner: u64,
    cloud: &PointCloud,
    original_len: usize,
) {
    let plan_ok = t.plan.active && t.plan.serial == t.join_serial;
    t.plan.active = false;
    if !t.enabled || !plan_ok {
        t.refined.valid = false;
        return;
    }
    let r = &mut t.refined;
    r.points.clear();
    r.points
        .extend_from_slice(&cloud.positions()[original_len..]);
    r.owner = owner;
    r.serial = t.join_serial;
    r.valid = true;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SrConfig;
    use crate::interpolate::dilated::dilated_interpolate_with;
    use crate::interpolate::naive::naive_interpolate_with;
    use volut_pointcloud::synthetic::{self, DeltaStream, DeltaStreamConfig};
    use volut_pointcloud::{Color, Point3};

    /// Quantizes a cloud to a coarse grid: many exact duplicate positions
    /// and massive distance ties — the adversarial input for any index-order
    /// dependent path.
    fn quantized(n: usize, seed: u64) -> PointCloud {
        let cloud = synthetic::humanoid(n, 0.3, seed);
        let positions: Vec<Point3> = cloud
            .positions()
            .iter()
            .map(|p| {
                Point3::new(
                    (p.x * 8.0).round() / 8.0,
                    (p.y * 8.0).round() / 8.0,
                    (p.z * 8.0).round() / 8.0,
                )
            })
            .collect();
        let colors = vec![Color::new(128, 128, 128); n];
        PointCloud::from_positions_and_colors(positions, colors).unwrap()
    }

    /// Runs a churned sequence twice — incremental on vs off — through both
    /// interpolators and asserts bit-identical outputs frame by frame.
    fn assert_sequence_bit_identity(base: PointCloud, churn: f64, frames: usize, ratio: f64) {
        let cfg_stream = DeltaStreamConfig {
            churn,
            drift: 0.05,
            jitter: 0.008,
            seed: churn.to_bits(),
        };
        let sequence = synthetic::delta_frame_sequence(&base, frames, cfg_stream);
        for (name, sr_cfg) in [
            ("dilated", SrConfig::default()),
            ("naive", SrConfig::k4d1()),
        ] {
            let mut on = FrameScratch::new();
            let mut off = FrameScratch::new();
            off.set_incremental(false);
            assert!(on.incremental() && !off.incremental());
            for (frame_no, frame) in sequence.iter().enumerate() {
                let (a, b) = if name == "dilated" {
                    (
                        dilated_interpolate_with(frame, &sr_cfg, ratio, &mut on),
                        dilated_interpolate_with(frame, &sr_cfg, ratio, &mut off),
                    )
                } else {
                    (
                        naive_interpolate_with(frame, &sr_cfg, ratio, &mut on),
                        naive_interpolate_with(frame, &sr_cfg, ratio, &mut off),
                    )
                };
                match (a, b) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(
                            a.cloud, b.cloud,
                            "{name} churn {churn} frame {frame_no}: clouds diverge"
                        );
                        assert_eq!(
                            a.neighborhoods, b.neighborhoods,
                            "{name} churn {churn} frame {frame_no}: neighborhoods diverge"
                        );
                        assert_eq!(a.parents, b.parents);
                        on.recycle_neighborhoods(a.neighborhoods);
                        off.recycle_neighborhoods(b.neighborhoods);
                    }
                    (Err(_), Err(_)) => {}
                    (a, b) => panic!("{name}: one path errored: {:?} {:?}", a.is_ok(), b.is_ok()),
                }
            }
        }
    }

    #[test]
    fn incremental_is_bit_identical_across_churn_levels() {
        for churn in [0.0, 0.01, 0.1, 0.5, 1.0] {
            assert_sequence_bit_identity(synthetic::humanoid(1_500, 0.4, 3), churn, 4, 2.0);
        }
    }

    #[test]
    fn incremental_is_bit_identical_on_tie_heavy_quantized_clouds() {
        for churn in [0.05, 0.3] {
            assert_sequence_bit_identity(quantized(1_200, 5), churn, 4, 2.0);
        }
    }

    #[test]
    fn incremental_is_bit_identical_with_duplicate_points() {
        let mut cloud = synthetic::sphere(600, 1.0, 7);
        let dup = cloud.select(&(0..50).collect::<Vec<_>>());
        cloud.merge(&dup);
        cloud.merge(&dup);
        assert_sequence_bit_identity(cloud, 0.1, 4, 2.0);
    }

    #[test]
    fn tiny_clouds_fall_back_to_full_recompute() {
        // Clouds at or below kq: every row holds the whole cloud, the cache
        // is ineligible, and both paths must still agree.
        for n in [3usize, 6, 9] {
            assert_sequence_bit_identity(synthetic::sphere(n, 1.0, 11), 0.3, 3, 2.0);
        }
    }

    #[test]
    fn heavy_churn_takes_the_full_path_and_counts_it() {
        let base = synthetic::humanoid(1_000, 0.2, 13);
        let seq = synthetic::delta_frame_sequence(
            &base,
            3,
            DeltaStreamConfig {
                churn: 0.9,
                ..DeltaStreamConfig::default()
            },
        );
        let mut scratch = FrameScratch::new();
        for frame in &seq {
            let r =
                dilated_interpolate_with(frame, &SrConfig::default(), 2.0, &mut scratch).unwrap();
            scratch.recycle_neighborhoods(r.neighborhoods);
        }
        let t = scratch.temporal_stats();
        assert_eq!(t.incremental_frames, 0, "{t:?}");
        assert_eq!(t.full_frames, 3, "{t:?}");
        assert_eq!(t.rows_reused, 0, "{t:?}");
    }

    #[test]
    fn light_churn_reuses_most_rows() {
        let base = synthetic::humanoid(2_000, 0.2, 17);
        let seq = synthetic::delta_frame_sequence(
            &base,
            4,
            DeltaStreamConfig {
                churn: 0.05,
                drift: 0.03,
                jitter: 0.005,
                seed: 19,
            },
        );
        let mut scratch = FrameScratch::new();
        for frame in &seq {
            let r =
                dilated_interpolate_with(frame, &SrConfig::default(), 2.0, &mut scratch).unwrap();
            scratch.recycle_neighborhoods(r.neighborhoods);
        }
        let t = scratch.temporal_stats();
        assert_eq!(t.incremental_frames, 3, "{t:?}");
        assert!(
            t.rows_reused as f64 > t.rows_recomputed as f64 * 2.0,
            "coherent 5% churn should reuse most rows: {t:?}"
        );
    }

    #[test]
    fn changed_k_invalidates_the_row_cache_safely() {
        // Alternate interpolator configs (different kq) over one scratch:
        // the cache must never serve rows captured for another stride.
        let base = synthetic::sphere(800, 1.0, 23);
        let mut stream = DeltaStream::new(
            base,
            DeltaStreamConfig {
                churn: 0.1,
                ..DeltaStreamConfig::default()
            },
        );
        let mut scratch = FrameScratch::new();
        for i in 0..4 {
            let frame = stream.frame().clone();
            let cfg = if i % 2 == 0 {
                SrConfig::default() // kq = 9
            } else {
                SrConfig::k4d1() // kq = 5
            };
            let fresh =
                dilated_interpolate_with(&frame, &cfg, 2.0, &mut FrameScratch::new()).unwrap();
            let reused = dilated_interpolate_with(&frame, &cfg, 2.0, &mut scratch).unwrap();
            assert_eq!(fresh.cloud, reused.cloud, "frame {i}");
            scratch.recycle_neighborhoods(reused.neighborhoods);
            stream.advance();
        }
    }

    #[test]
    fn index_cache_digest_short_circuits_mismatches() {
        use crate::interpolate::IndexCache;
        let a = synthetic::sphere(500, 1.0, 29);
        let b = synthetic::sphere(500, 1.0, 31);
        let mut cache = IndexCache::default();
        let (_, rebuilt) = cache.get_or_build(a.positions(), None, a.geometry_digest());
        assert!(rebuilt);
        // Same digest + content: reuse.
        let (_, rebuilt) = cache.get_or_build(a.positions(), None, a.geometry_digest());
        assert!(!rebuilt);
        // Different digest: rebuild without a content scan (observable only
        // as a rebuild; the digest gate is what makes it cheap).
        let (_, rebuilt) = cache.get_or_build(b.positions(), None, b.geometry_digest());
        assert!(rebuilt);
        assert_eq!(cache.stats().rebuilds, 2);
        assert_eq!(cache.stats().reuses, 1);
    }
}

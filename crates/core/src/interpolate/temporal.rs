//! Temporally coherent incremental kNN across streaming delta-frames.
//!
//! The kNN *self-join* — every frame point queries the index over the frame
//! cloud — dominates steady-state SR frame time (≈65% at 50k points; see the
//! `sr_stage_breakdown` bench), and volumetric streams rarely change that
//! cloud wholesale: consecutive frames share most of their geometry, with
//! churn arriving as spatially coherent removals and insertions (chunked
//! delivery, moving subjects). This module exploits that coherence: the
//! session's [`FrameScratch`] keeps the previous frame's raw self-join rows
//! and each row's k-th-distance radius, and a new frame only recomputes the
//! rows the churn can actually affect. Everything else is copied forward —
//! and the result is **bit-identical to a full recompute**.
//!
//! # The invalidation rule
//!
//! For a new frame differing from the cached one by removals `R` and
//! insertions `I` (diffed bitwise by [`FrameDelta::diff`], or supplied
//! explicitly through `SrSession::upsample_frame_delta`), a surviving
//! query's cached row must be recomputed when — and only when — one of:
//!
//! 1. the row references a removed neighbor (a member of its k-set is gone);
//! 2. an inserted point lies within the row's kNN ball: squared distance
//!    `<=` the row's k-th (worst) distance, the `<=` covering distance ties,
//!    tested exactly against a scratch-resident kd-tree over the inserted
//!    points ([`KdTree::any_within`]).
//!
//! Rows for inserted query points are always computed fresh. Everything
//! else is copied forward with its neighbor indices remapped through the
//! delta's survivor map.
//!
//! # Why the copied rows are bit-identical
//!
//! A cached row holds the `k` nearest old-cloud points of its query, sorted
//! by `(distance, index)` with ties broken by ascending index. If none of
//! its members were removed, every other *old* point still loses to them —
//! removals only shrink the competition. If additionally no inserted point
//! is inside (or on) the row's kNN ball, no *new* point can displace a
//! member or change the k-th distance. What remains is the tie order under
//! the new indices: [`FrameDelta`] guarantees survivors keep their relative
//! order (the diff conservatively churns anything reordered), distances are
//! unchanged (survivor positions are bitwise identical), so remapping the
//! indices preserves the row's `(distance, index)` sort exactly. Rows that
//! fail either test are recomputed through the very same batch machinery a
//! cold frame uses (`super::batched_knn_into` — a bichromatic batch on
//! the warm single-tree sweep), so recomputed rows match by construction.
//!
//! The engine falls back to the untouched full-recompute path whenever the
//! cache cannot help: the first frame of a session, a changed `k`, clouds
//! smaller than `k` (every row holds the whole cloud), survivor fractions
//! below [`MIN_SURVIVOR_FRACTION`] (at 100% churn the only cost over the
//! cold path is the failed diff — one linear pass), or when incremental
//! reuse is disabled via [`FrameScratch::set_incremental`].
//!
//! [`FrameDelta`]: volut_pointcloud::delta::FrameDelta
//! [`FrameDelta::diff`]: volut_pointcloud::delta::FrameDelta::diff
//! [`KdTree::any_within`]: volut_pointcloud::kdtree::KdTree::any_within
//! [`FrameScratch`]: super::FrameScratch
//! [`FrameScratch::set_incremental`]: super::FrameScratch::set_incremental

use super::{batched_knn_into, FrameScratch, InterpolationTimings};
use std::time::Instant;
use volut_pointcloud::delta::{FrameDelta, REMOVED};
use volut_pointcloud::kdtree::KdTree;
use volut_pointcloud::{Neighborhoods, Point3, PointCloud};

/// Smallest fraction of surviving points for which the incremental path is
/// attempted; below it (heavy churn) the copy-forward bookkeeping cannot
/// beat the plain full sweep, so the engine takes the untouched cold path.
pub const MIN_SURVIVOR_FRACTION: f64 = 0.5;

/// Row-reuse counters of the incremental kNN path (see the module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TemporalStats {
    /// Self-join rows copied forward from the previous frame's cache.
    pub rows_reused: u64,
    /// Self-join rows recomputed: inserted queries plus invalidated rows.
    pub rows_recomputed: u64,
    /// Frames answered incrementally (including identical-frame wholesale
    /// row reuse).
    pub incremental_frames: u64,
    /// Frames that took the full-recompute path (cold frames, heavy churn,
    /// ineligible shapes).
    pub full_frames: u64,
}

/// The previous frame's self-join state plus the scratch the incremental
/// update needs, owned by [`FrameScratch`]. All buffers are reused across
/// frames: a steady-state churned sequence performs no allocation here.
#[derive(Debug)]
pub(crate) struct TemporalCache {
    /// `false` forces the engine onto the full-recompute path (and stops
    /// capturing) — the ablation/bench switch.
    pub(crate) enabled: bool,
    /// `true` when `positions`/`rows` describe the last processed frame.
    valid: bool,
    /// Row stride of the cached self-join (`k + 1` of the interpolator that
    /// captured it); a changed stride invalidates the cache.
    kq: usize,
    /// Geometry digest of the cached frame (first-pass identity check).
    digest: u64,
    /// Positions of the cached frame (the diff's "old" side).
    positions: Vec<Point3>,
    /// The cached raw self-join rows (uniform stride `kq`, ascending
    /// `(distance, index)` within each row).
    rows: Neighborhoods,
    /// Scratch: removed-id membership bitmap over old indices.
    removed_mark: Vec<bool>,
    /// Scratch: gathered positions of the inserted points.
    insert_positions: Vec<Point3>,
    /// Scratch: kd-tree over the inserted points (ball-intersection tests).
    insert_tree: KdTree,
    /// Scratch: new-frame indices whose rows must be recomputed.
    recompute: Vec<u32>,
    /// Scratch: query positions of `recompute`.
    queries: Vec<Point3>,
    /// Scratch: freshly computed rows for `recompute`, scattered into the
    /// output slab afterwards.
    fresh_rows: Neighborhoods,
    /// Delta supplied explicitly by the streaming layer for the next frame
    /// (verified before use; wrong deltas fall back to the bitwise diff).
    pub(crate) pending_delta: Option<FrameDelta>,
    pub(crate) stats: TemporalStats,
}

impl Default for TemporalCache {
    fn default() -> Self {
        Self {
            enabled: true,
            valid: false,
            kq: 0,
            digest: 0,
            positions: Vec::new(),
            rows: Neighborhoods::new(),
            removed_mark: Vec::new(),
            insert_positions: Vec::new(),
            insert_tree: KdTree::default(),
            recompute: Vec::new(),
            queries: Vec::new(),
            fresh_rows: Neighborhoods::new(),
            pending_delta: None,
            stats: TemporalStats::default(),
        }
    }
}

impl TemporalCache {
    /// Drops the cached frame (the next frame recomputes in full).
    pub(crate) fn invalidate(&mut self) {
        self.valid = false;
        self.pending_delta = None;
    }

    /// Capacity (bytes) currently reserved by the cache and its scratch.
    pub(crate) fn reserved_bytes(&self) -> usize {
        (self.positions.capacity() + self.insert_positions.capacity() + self.queries.capacity())
            * std::mem::size_of::<Point3>()
            + self.rows.reserved_bytes()
            + self.fresh_rows.reserved_bytes()
            + self.removed_mark.capacity()
            + self.recompute.capacity() * std::mem::size_of::<u32>()
            + self.insert_tree.reserved_bytes()
    }
}

/// The self-join kNN pass of both interpolators: appends one `kq`-wide row
/// per point of `low` to `out` (cleared first), bit-identical to
/// `batched_knn_into` over a fresh index, while reusing the scratch's
/// spatial index and — when the previous frame is coherent with this one —
/// the previous frame's rows. Updates `timings.index_build` (index
/// validation, patch or rebuild) and `timings.knn` (diff, invalidation,
/// copy-forward and recompute).
pub(crate) fn self_join(
    low: &PointCloud,
    kq: usize,
    scratch: &mut FrameScratch,
    out: &mut Neighborhoods,
    timings: &mut InterpolationTimings,
) {
    out.clear();
    let positions = low.positions();
    let n = positions.len();
    let digest = low.geometry_digest();
    let generation = scratch.geometry_generation;
    let pending = scratch.temporal.pending_delta.take();

    // Eligibility of the cached rows (not yet of this specific frame).
    let cache_ready = scratch.temporal.enabled
        && scratch.temporal.valid
        && scratch.temporal.kq == kq
        && scratch.temporal.positions.len() > kq
        && n > kq;

    // --- Unchanged frame: cached index, and (when available) every cached
    // row reused wholesale.
    let t0 = Instant::now();
    if scratch.index.is_fresh(positions, generation, digest) {
        scratch.index.reuse(generation);
        timings.index_build += t0.elapsed();
        let t1 = Instant::now();
        if cache_ready
            && scratch.temporal.digest == digest
            && scratch.temporal.positions.as_slice() == positions
        {
            let slab = out.push_uniform_rows(n, kq);
            slab.copy_from_slice(scratch.temporal.rows.indices());
            scratch.temporal.stats.rows_reused += n as u64;
            scratch.temporal.stats.incremental_frames += 1;
            timings.knn += t1.elapsed();
            return;
        }
        batched_knn_into(
            scratch.index.cached_tree(),
            positions,
            kq,
            &mut scratch.dualtree,
            out,
        );
        timings.knn += t1.elapsed();
        capture(scratch, positions, digest, kq, out);
        scratch.temporal.stats.full_frames += 1;
        return;
    }
    timings.index_build += t0.elapsed();

    // --- Changed frame: relate it to the cached one. The diff aborts as
    // soon as the survivor threshold is unreachable, so a scene cut pays
    // about half a diff walk on top of the cold path it then takes.
    let t1 = Instant::now();
    let delta = if cache_ready {
        let min_survivors = (scratch.temporal.positions.len().max(n) as f64 * MIN_SURVIVOR_FRACTION)
            .ceil() as usize;
        match pending {
            Some(d) if d.verify(&scratch.temporal.positions, positions) => Some(d),
            // A wrong or absent external delta falls back to the diff.
            _ => FrameDelta::diff_bounded(&scratch.temporal.positions, positions, min_survivors),
        }
    } else {
        None
    };
    let incremental = delta.as_ref().is_some_and(|d| {
        d.new_len() == n
            && d.survivors() as f64 >= d.old_len().max(n) as f64 * MIN_SURVIVOR_FRACTION
    });
    timings.knn += t1.elapsed();

    if !incremental {
        // The untouched cold path: full rebuild, full sweep.
        let t2 = Instant::now();
        scratch.index.rebuild(positions, generation, digest);
        timings.index_build += t2.elapsed();
        let t3 = Instant::now();
        batched_knn_into(
            scratch.index.cached_tree(),
            positions,
            kq,
            &mut scratch.dualtree,
            out,
        );
        timings.knn += t3.elapsed();
        capture(scratch, positions, digest, kq, out);
        scratch.temporal.stats.full_frames += 1;
        return;
    }
    let delta = delta.expect("incremental implies a delta");

    // Patch the index — but only when it indexes exactly the cached old
    // frame (a stale index, e.g. after an ineligible in-between frame,
    // rebuilds instead).
    let t2 = Instant::now();
    if scratch.index.indexes(&scratch.temporal.positions) {
        scratch.index.patch(positions, generation, digest, &delta);
    } else {
        scratch.index.rebuild(positions, generation, digest);
    }
    timings.index_build += t2.elapsed();

    let t3 = Instant::now();
    incremental_rows(scratch, positions, kq, &delta, out);
    timings.knn += t3.elapsed();
    capture(scratch, positions, digest, kq, out);
    scratch.temporal.stats.incremental_frames += 1;
}

/// Produces the new frame's rows from the cached ones: copy-forward with
/// index remap for rows the churn cannot affect, a bichromatic batch
/// recompute for the rest (see the module docs for the invalidation rule).
fn incremental_rows(
    scratch: &mut FrameScratch,
    positions: &[Point3],
    kq: usize,
    delta: &FrameDelta,
    out: &mut Neighborhoods,
) {
    let n = positions.len();
    let old_n = delta.old_len();
    debug_assert_eq!(scratch.temporal.rows.total_indices(), old_n * kq);

    // Removed-neighbor membership bitmap.
    scratch.temporal.removed_mark.clear();
    scratch.temporal.removed_mark.resize(old_n, false);
    for &i in delta.removed() {
        scratch.temporal.removed_mark[i as usize] = true;
    }
    // Ball-intersection index over the inserted points.
    let has_inserts = !delta.inserted().is_empty();
    scratch.temporal.insert_positions.clear();
    scratch
        .temporal
        .insert_positions
        .extend(delta.inserted().iter().map(|&i| positions[i as usize]));
    {
        let t = &mut scratch.temporal;
        t.insert_tree.build_in(&t.insert_positions);
    }

    // Classify every surviving row; copy the valid ones forward.
    scratch.temporal.recompute.clear();
    let slab = out.push_uniform_rows(n, kq);
    {
        let t = &mut scratch.temporal;
        let old_to_new = delta.old_to_new();
        for old_i in 0..old_n {
            let new_i = old_to_new[old_i];
            if new_i == REMOVED {
                continue;
            }
            let row = t.rows.row(old_i);
            let mut invalid = row.iter().any(|&j| t.removed_mark[j as usize]);
            if !invalid && has_inserts {
                // The row's kNN ball: squared distance to its k-th (worst)
                // entry, recomputed lazily from the cached frame with
                // [`Point3::distance_squared`] — the scan kernels' exact
                // arithmetic, so the `<=` intersection test below covers
                // distance ties precisely.
                let r2 = t.positions[old_i].distance_squared(t.positions[row[kq - 1] as usize]);
                invalid = t.insert_tree.any_within(t.positions[old_i], r2);
            }
            if invalid {
                t.recompute.push(new_i);
            } else {
                let dst = &mut slab[new_i as usize * kq..(new_i as usize + 1) * kq];
                for (d, &j) in dst.iter_mut().zip(row) {
                    *d = old_to_new[j as usize];
                }
            }
        }
        t.recompute.extend_from_slice(delta.inserted());
        t.stats.rows_reused += (n - t.recompute.len()) as u64;
        t.stats.rows_recomputed += t.recompute.len() as u64;
    }

    // Recompute the dirty rows as one bichromatic batch against the patched
    // index (the auto policy keeps it on the warm single-tree sweep) and
    // scatter them into their final slots.
    scratch.temporal.queries.clear();
    {
        let t = &mut scratch.temporal;
        t.queries
            .extend(t.recompute.iter().map(|&i| positions[i as usize]));
    }
    scratch.temporal.fresh_rows.clear();
    batched_knn_into(
        scratch.index.cached_tree(),
        &scratch.temporal.queries,
        kq,
        &mut scratch.dualtree,
        &mut scratch.temporal.fresh_rows,
    );
    for (r, &new_i) in scratch.temporal.recompute.iter().enumerate() {
        let src = scratch.temporal.fresh_rows.row(r);
        slab[new_i as usize * kq..(new_i as usize + 1) * kq].copy_from_slice(src);
    }
}

/// Snapshots this frame's rows as the next frame's reuse source. Frames the
/// cache cannot describe (tiny clouds whose rows are shorter than `kq`)
/// invalidate it instead.
fn capture(
    scratch: &mut FrameScratch,
    positions: &[Point3],
    digest: u64,
    kq: usize,
    out: &Neighborhoods,
) {
    let t = &mut scratch.temporal;
    if !t.enabled {
        return;
    }
    if kq == 0 || positions.len() <= kq {
        t.valid = false;
        return;
    }
    debug_assert_eq!(out.len(), positions.len());
    debug_assert_eq!(out.total_indices(), positions.len() * kq);
    t.kq = kq;
    t.digest = digest;
    t.positions.clear();
    t.positions.extend_from_slice(positions);
    t.rows.clear();
    t.rows.append(out);
    t.valid = true;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SrConfig;
    use crate::interpolate::dilated::dilated_interpolate_with;
    use crate::interpolate::naive::naive_interpolate_with;
    use volut_pointcloud::synthetic::{self, DeltaStream, DeltaStreamConfig};
    use volut_pointcloud::{Color, Point3};

    /// Quantizes a cloud to a coarse grid: many exact duplicate positions
    /// and massive distance ties — the adversarial input for any index-order
    /// dependent path.
    fn quantized(n: usize, seed: u64) -> PointCloud {
        let cloud = synthetic::humanoid(n, 0.3, seed);
        let positions: Vec<Point3> = cloud
            .positions()
            .iter()
            .map(|p| {
                Point3::new(
                    (p.x * 8.0).round() / 8.0,
                    (p.y * 8.0).round() / 8.0,
                    (p.z * 8.0).round() / 8.0,
                )
            })
            .collect();
        let colors = vec![Color::new(128, 128, 128); n];
        PointCloud::from_positions_and_colors(positions, colors).unwrap()
    }

    /// Runs a churned sequence twice — incremental on vs off — through both
    /// interpolators and asserts bit-identical outputs frame by frame.
    fn assert_sequence_bit_identity(base: PointCloud, churn: f64, frames: usize, ratio: f64) {
        let cfg_stream = DeltaStreamConfig {
            churn,
            drift: 0.05,
            jitter: 0.008,
            seed: churn.to_bits(),
        };
        let sequence = synthetic::delta_frame_sequence(&base, frames, cfg_stream);
        for (name, sr_cfg) in [
            ("dilated", SrConfig::default()),
            ("naive", SrConfig::k4d1()),
        ] {
            let mut on = FrameScratch::new();
            let mut off = FrameScratch::new();
            off.set_incremental(false);
            assert!(on.incremental() && !off.incremental());
            for (frame_no, frame) in sequence.iter().enumerate() {
                let (a, b) = if name == "dilated" {
                    (
                        dilated_interpolate_with(frame, &sr_cfg, ratio, &mut on),
                        dilated_interpolate_with(frame, &sr_cfg, ratio, &mut off),
                    )
                } else {
                    (
                        naive_interpolate_with(frame, &sr_cfg, ratio, &mut on),
                        naive_interpolate_with(frame, &sr_cfg, ratio, &mut off),
                    )
                };
                match (a, b) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(
                            a.cloud, b.cloud,
                            "{name} churn {churn} frame {frame_no}: clouds diverge"
                        );
                        assert_eq!(
                            a.neighborhoods, b.neighborhoods,
                            "{name} churn {churn} frame {frame_no}: neighborhoods diverge"
                        );
                        assert_eq!(a.parents, b.parents);
                        on.recycle_neighborhoods(a.neighborhoods);
                        off.recycle_neighborhoods(b.neighborhoods);
                    }
                    (Err(_), Err(_)) => {}
                    (a, b) => panic!("{name}: one path errored: {:?} {:?}", a.is_ok(), b.is_ok()),
                }
            }
        }
    }

    #[test]
    fn incremental_is_bit_identical_across_churn_levels() {
        for churn in [0.0, 0.01, 0.1, 0.5, 1.0] {
            assert_sequence_bit_identity(synthetic::humanoid(1_500, 0.4, 3), churn, 4, 2.0);
        }
    }

    #[test]
    fn incremental_is_bit_identical_on_tie_heavy_quantized_clouds() {
        for churn in [0.05, 0.3] {
            assert_sequence_bit_identity(quantized(1_200, 5), churn, 4, 2.0);
        }
    }

    #[test]
    fn incremental_is_bit_identical_with_duplicate_points() {
        let mut cloud = synthetic::sphere(600, 1.0, 7);
        let dup = cloud.select(&(0..50).collect::<Vec<_>>());
        cloud.merge(&dup);
        cloud.merge(&dup);
        assert_sequence_bit_identity(cloud, 0.1, 4, 2.0);
    }

    #[test]
    fn tiny_clouds_fall_back_to_full_recompute() {
        // Clouds at or below kq: every row holds the whole cloud, the cache
        // is ineligible, and both paths must still agree.
        for n in [3usize, 6, 9] {
            assert_sequence_bit_identity(synthetic::sphere(n, 1.0, 11), 0.3, 3, 2.0);
        }
    }

    #[test]
    fn heavy_churn_takes_the_full_path_and_counts_it() {
        let base = synthetic::humanoid(1_000, 0.2, 13);
        let seq = synthetic::delta_frame_sequence(
            &base,
            3,
            DeltaStreamConfig {
                churn: 0.9,
                ..DeltaStreamConfig::default()
            },
        );
        let mut scratch = FrameScratch::new();
        for frame in &seq {
            let r =
                dilated_interpolate_with(frame, &SrConfig::default(), 2.0, &mut scratch).unwrap();
            scratch.recycle_neighborhoods(r.neighborhoods);
        }
        let t = scratch.temporal_stats();
        assert_eq!(t.incremental_frames, 0, "{t:?}");
        assert_eq!(t.full_frames, 3, "{t:?}");
        assert_eq!(t.rows_reused, 0, "{t:?}");
    }

    #[test]
    fn light_churn_reuses_most_rows() {
        let base = synthetic::humanoid(2_000, 0.2, 17);
        let seq = synthetic::delta_frame_sequence(
            &base,
            4,
            DeltaStreamConfig {
                churn: 0.05,
                drift: 0.03,
                jitter: 0.005,
                seed: 19,
            },
        );
        let mut scratch = FrameScratch::new();
        for frame in &seq {
            let r =
                dilated_interpolate_with(frame, &SrConfig::default(), 2.0, &mut scratch).unwrap();
            scratch.recycle_neighborhoods(r.neighborhoods);
        }
        let t = scratch.temporal_stats();
        assert_eq!(t.incremental_frames, 3, "{t:?}");
        assert!(
            t.rows_reused as f64 > t.rows_recomputed as f64 * 2.0,
            "coherent 5% churn should reuse most rows: {t:?}"
        );
    }

    #[test]
    fn changed_k_invalidates_the_row_cache_safely() {
        // Alternate interpolator configs (different kq) over one scratch:
        // the cache must never serve rows captured for another stride.
        let base = synthetic::sphere(800, 1.0, 23);
        let mut stream = DeltaStream::new(
            base,
            DeltaStreamConfig {
                churn: 0.1,
                ..DeltaStreamConfig::default()
            },
        );
        let mut scratch = FrameScratch::new();
        for i in 0..4 {
            let frame = stream.frame().clone();
            let cfg = if i % 2 == 0 {
                SrConfig::default() // kq = 9
            } else {
                SrConfig::k4d1() // kq = 5
            };
            let fresh =
                dilated_interpolate_with(&frame, &cfg, 2.0, &mut FrameScratch::new()).unwrap();
            let reused = dilated_interpolate_with(&frame, &cfg, 2.0, &mut scratch).unwrap();
            assert_eq!(fresh.cloud, reused.cloud, "frame {i}");
            scratch.recycle_neighborhoods(reused.neighborhoods);
            stream.advance();
        }
    }

    #[test]
    fn index_cache_digest_short_circuits_mismatches() {
        use crate::interpolate::IndexCache;
        let a = synthetic::sphere(500, 1.0, 29);
        let b = synthetic::sphere(500, 1.0, 31);
        let mut cache = IndexCache::default();
        let (_, rebuilt) = cache.get_or_build(a.positions(), None, a.geometry_digest());
        assert!(rebuilt);
        // Same digest + content: reuse.
        let (_, rebuilt) = cache.get_or_build(a.positions(), None, a.geometry_digest());
        assert!(!rebuilt);
        // Different digest: rebuild without a content scan (observable only
        // as a rebuild; the digest gate is what makes it cheap).
        let (_, rebuilt) = cache.get_or_build(b.positions(), None, b.geometry_digest());
        assert!(rebuilt);
        assert_eq!(cache.stats().rebuilds, 2);
        assert_eq!(cache.stats().reuses, 1);
    }
}

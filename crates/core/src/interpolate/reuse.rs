//! Neighbor relationship reuse (paper Eq. 2).
//!
//! For an interpolated point `p'` generated between original points `p` and
//! `q`, the paper observes that `N_k(p') ≈ MergeAndPrune(N_k(p), N_k(q))`:
//! the union of the parents' neighbor lists, re-ranked by distance to `p'`
//! and truncated to `k`, is an excellent approximation of a fresh kNN query
//! — and it costs only `O(k)` distance evaluations instead of a tree
//! traversal.

use volut_pointcloud::Point3;

/// Merges the neighbor index lists of the two parent points, re-ranks them
/// by distance to the interpolated point `p_new`, removes duplicates and
/// returns the closest `k` indices.
///
/// `positions` must be the original (low-resolution) point array that the
/// indices refer to.
///
/// # Example
///
/// ```
/// use volut_core::interpolate::reuse::merge_and_prune;
/// use volut_pointcloud::Point3;
/// let positions = vec![
///     Point3::new(0.0, 0.0, 0.0),
///     Point3::new(1.0, 0.0, 0.0),
///     Point3::new(2.0, 0.0, 0.0),
///     Point3::new(10.0, 0.0, 0.0),
/// ];
/// let merged = merge_and_prune(
///     Point3::new(0.5, 0.0, 0.0),
///     &[0, 1, 3],
///     &[1, 2],
///     &positions,
///     2,
/// );
/// assert_eq!(merged, vec![0, 1]);
/// ```
pub fn merge_and_prune(
    p_new: Point3,
    neighbors_p: &[usize],
    neighbors_q: &[usize],
    positions: &[Point3],
    k: usize,
) -> Vec<usize> {
    if k == 0 {
        return Vec::new();
    }
    let mut candidates: Vec<usize> = Vec::with_capacity(neighbors_p.len() + neighbors_q.len());
    candidates.extend_from_slice(neighbors_p);
    candidates.extend_from_slice(neighbors_q);
    candidates.sort_unstable();
    candidates.dedup();
    let mut ranked: Vec<(f32, usize)> = candidates
        .into_iter()
        .filter(|&i| i < positions.len())
        .map(|i| (positions[i].distance_squared(p_new), i))
        .collect();
    ranked.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    ranked.truncate(k);
    ranked.into_iter().map(|(_, i)| i).collect()
}

/// Allocation-free variant of [`merge_and_prune`] used by the batched
/// interpolation hot path: candidates arrive as CSR `u32` rows and the
/// pruned result is appended directly to `out` as a new row.
///
/// The merged candidate set is at most `2k` entries (the parents' `k`-head
/// lists), so a fixed-capacity stack buffer replaces the heap allocations of
/// the nested-`Vec` formulation. Results are identical to
/// [`merge_and_prune`] for `k ≤ 32` (the pipeline's documented domain).
///
/// # Panics
/// Debug-panics when `k > 32`; release builds truncate the candidate set.
pub fn merge_and_prune_into(
    p_new: Point3,
    neighbors_p: &[u32],
    neighbors_q: &[u32],
    positions: &[Point3],
    k: usize,
    out: &mut volut_pointcloud::Neighborhoods,
) {
    debug_assert!(
        k <= 32,
        "receptive fields beyond k=32 are out of the supported domain"
    );
    if k == 0 {
        out.push_row(std::iter::empty());
        return;
    }
    // Merged candidates, deduplicated and ranked by (distance, index).
    let mut ranked: [(f32, u32); 64] = [(f32::INFINITY, u32::MAX); 64];
    let mut len = 0usize;
    for &i in neighbors_p.iter().chain(neighbors_q.iter()) {
        if (i as usize) >= positions.len() || len == ranked.len() {
            continue;
        }
        if ranked[..len].iter().any(|&(_, j)| j == i) {
            continue;
        }
        let d = positions[i as usize].distance_squared(p_new);
        // Insertion sort: candidate sets are tiny (≤ 2k).
        let pos = ranked[..len].partition_point(|&(rd, rj)| (rd, rj) < (d, i));
        ranked.copy_within(pos..len, pos + 1);
        ranked[pos] = (d, i);
        len += 1;
    }
    out.push_row_u32_iter(ranked[..len.min(k)].iter().map(|&(_, i)| i));
}

/// Batched neighbor-relationship reuse: derives one neighborhood row per
/// generated point from the dilated lists of its two parents.
///
/// For each `i`, row `i` of `out` receives
/// `merge_and_prune(new_points[i], head_k(hoods[parents[i].0]),
/// head_k(hoods[parents[i].1]), positions, k)` — the `k`-nearest heads of
/// the parents' dilated rows merged, re-ranked by distance to the new point
/// and pruned to `k` (Eq. 2). One call processes a whole worker chunk
/// through the fixed-capacity [`merge_and_prune_into`] kernel, so the hot
/// path performs zero heap allocations per generated point.
///
/// # Panics
/// Panics when `new_points` and `parents` disagree in length, or when a
/// parent index has no row in `hoods`.
pub fn merge_and_prune_rows(
    new_points: &[Point3],
    parents: &[(usize, usize)],
    hoods: volut_pointcloud::NeighborhoodsView<'_>,
    positions: &[Point3],
    k: usize,
    out: &mut volut_pointcloud::Neighborhoods,
) {
    assert_eq!(
        new_points.len(),
        parents.len(),
        "one parent pair per generated point"
    );
    out.reserve_rows(new_points.len(), new_points.len() * k);
    for (&p_new, &(i, j)) in new_points.iter().zip(parents.iter()) {
        let np_full = hoods.row(i);
        let np = &np_full[..np_full.len().min(k)];
        let nq_full = hoods.row(j);
        let nq = &nq_full[..nq_full.len().min(k)];
        merge_and_prune_into(p_new, np, nq, positions, k, out);
    }
}

/// Measures how well [`merge_and_prune`] approximates an exact kNN result:
/// returns the recall (fraction of exact neighbors present in the
/// approximation). Used by tests and the ablation benchmarks.
pub fn reuse_recall(approx: &[usize], exact: &[usize]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let hits = exact.iter().filter(|i| approx.contains(i)).count();
    hits as f64 / exact.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use volut_pointcloud::kdtree::KdTree;
    use volut_pointcloud::knn::NeighborSearch;
    use volut_pointcloud::synthetic;

    #[test]
    fn k_zero_returns_empty() {
        assert!(merge_and_prune(Point3::ZERO, &[0, 1], &[2], &[Point3::ZERO; 3], 0).is_empty());
    }

    #[test]
    fn duplicates_are_removed() {
        let positions = vec![Point3::ZERO, Point3::ONE, Point3::splat(2.0)];
        let merged = merge_and_prune(Point3::ZERO, &[0, 1, 2], &[0, 1, 2], &positions, 3);
        assert_eq!(merged, vec![0, 1, 2]);
    }

    #[test]
    fn out_of_range_indices_are_ignored() {
        let positions = vec![Point3::ZERO, Point3::ONE];
        let merged = merge_and_prune(Point3::ZERO, &[0, 99], &[1], &positions, 3);
        assert_eq!(merged, vec![0, 1]);
    }

    #[test]
    fn approximation_has_high_recall_on_surfaces() {
        // Build a realistic scenario: parents are true neighbors on a surface,
        // the interpolated midpoint should inherit most of their neighbors.
        let cloud = synthetic::sphere(2000, 1.0, 9);
        let tree = KdTree::build(cloud.positions());
        let k = 4;
        let mut total_recall = 0.0;
        let mut samples = 0;
        for i in (0..cloud.len()).step_by(101) {
            let p = cloud.position(i);
            let np: Vec<usize> = tree
                .knn(p, k + 1)
                .iter()
                .map(|n| n.index)
                .filter(|&j| j != i)
                .collect();
            if np.is_empty() {
                continue;
            }
            let j = np[0];
            let q = cloud.position(j);
            let nq: Vec<usize> = tree
                .knn(q, k + 1)
                .iter()
                .map(|n| n.index)
                .filter(|&x| x != j)
                .collect();
            let mid = p.midpoint(q);
            let approx = merge_and_prune(mid, &np, &nq, cloud.positions(), k);
            let exact: Vec<usize> = tree.knn(mid, k).iter().map(|n| n.index).collect();
            total_recall += reuse_recall(&approx, &exact);
            samples += 1;
        }
        let mean_recall = total_recall / samples as f64;
        assert!(mean_recall > 0.75, "mean recall too low: {mean_recall}");
    }

    #[test]
    fn into_variant_matches_allocating_variant() {
        let cloud = synthetic::torus(800, 1.0, 0.3, 4);
        let tree = KdTree::build(cloud.positions());
        let k = 4;
        let mut csr = volut_pointcloud::Neighborhoods::new();
        let mut expected_rows = Vec::new();
        for i in (0..cloud.len()).step_by(37) {
            let p = cloud.position(i);
            let np: Vec<usize> = tree
                .knn(p, k + 1)
                .iter()
                .map(|n| n.index)
                .filter(|&j| j != i)
                .collect();
            if np.is_empty() {
                continue;
            }
            let j = np[0];
            let nq: Vec<usize> = tree
                .knn(cloud.position(j), k + 1)
                .iter()
                .map(|n| n.index)
                .filter(|&x| x != j)
                .collect();
            let mid = p.midpoint(cloud.position(j));
            expected_rows.push(merge_and_prune(mid, &np, &nq, cloud.positions(), k));
            let np32: Vec<u32> = np.iter().map(|&v| v as u32).collect();
            let nq32: Vec<u32> = nq.iter().map(|&v| v as u32).collect();
            merge_and_prune_into(mid, &np32, &nq32, cloud.positions(), k, &mut csr);
        }
        assert_eq!(csr.to_nested(), expected_rows);
        // k = 0 appends an empty row instead of skipping.
        let before = csr.len();
        merge_and_prune_into(Point3::ZERO, &[0], &[1], cloud.positions(), 0, &mut csr);
        assert_eq!(csr.len(), before + 1);
        assert!(csr.row(before).is_empty());
    }

    #[test]
    fn batched_rows_match_per_point_kernel() {
        let cloud = synthetic::sphere(500, 1.0, 6);
        let tree = KdTree::build(cloud.positions());
        let k = 4;
        // Dilated-style per-source rows.
        let mut hoods = volut_pointcloud::Neighborhoods::new();
        tree.knn_batch(cloud.positions(), k + 1, &mut hoods);
        let mut new_points = Vec::new();
        let mut parents = Vec::new();
        for i in (0..cloud.len()).step_by(11) {
            let j = (i + 7) % cloud.len();
            new_points.push(cloud.position(i).midpoint(cloud.position(j)));
            parents.push((i, j));
        }
        let mut batched = volut_pointcloud::Neighborhoods::new();
        merge_and_prune_rows(
            &new_points,
            &parents,
            hoods.view(),
            cloud.positions(),
            k,
            &mut batched,
        );
        let mut expected = volut_pointcloud::Neighborhoods::new();
        for (&p, &(i, j)) in new_points.iter().zip(parents.iter()) {
            let np = &hoods.row(i)[..hoods.row(i).len().min(k)];
            let nq = &hoods.row(j)[..hoods.row(j).len().min(k)];
            merge_and_prune_into(p, np, nq, cloud.positions(), k, &mut expected);
        }
        assert_eq!(batched, expected);
    }

    #[test]
    fn recall_helper_edge_cases() {
        assert_eq!(reuse_recall(&[1, 2], &[]), 1.0);
        assert_eq!(reuse_recall(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(reuse_recall(&[], &[1, 2]), 0.0);
        assert_eq!(reuse_recall(&[1], &[1, 2]), 0.5);
    }
}

//! Colorization of interpolated points (§4.1).
//!
//! New points inherit the color of the nearest *original* point, reusing the
//! spatial relationships already computed during geometric interpolation so
//! that no additional neighbor searches are required. The per-point color
//! assignment is embarrassingly parallel and runs across worker threads
//! when the `parallel` feature is enabled.

use volut_pointcloud::{par, Color, NeighborhoodsView, PointCloud};

/// Assigns colors to the newly generated points of `cloud`.
///
/// * `cloud` — the upsampled cloud (original points at `0..original_len`,
///   new points after that); modified in place.
/// * `low` — the original low-resolution cloud that carries source colors.
/// * `neighborhoods.row(i)` — nearest original-point indices (closest first)
///   of new point `original_len + i`.
/// * `parents[i]` — the two parent indices of new point `original_len + i`,
///   used as a fallback when the neighborhood row is empty.
///
/// When `low` has no colors this is a no-op.
pub fn colorize_new_points(
    cloud: &mut PointCloud,
    low: &PointCloud,
    original_len: usize,
    neighborhoods: NeighborhoodsView<'_>,
    parents: &[(usize, usize)],
) {
    let Some(low_colors) = low.colors() else {
        return;
    };
    // Mutate the cloud's existing color storage in place: no position clone,
    // and when the cloud is already colored (the usual case — `low.clone()`
    // seeds it) the allocation is reused rather than rebuilt per frame.
    let mut colors = cloud.take_colors().unwrap_or_else(|| {
        let mut seeded: Vec<Color> = Vec::with_capacity(cloud.len());
        seeded.extend_from_slice(&low_colors[..original_len.min(low_colors.len())]);
        seeded.resize(original_len, Color::BLACK);
        seeded
    });
    colors.truncate(original_len);
    colors.resize(cloud.len(), Color::BLACK);
    {
        let positions = cloud.positions();
        let new_colors = &mut colors[original_len..];
        par::fill_with(new_colors, 8_192, |i| {
            let pos = positions[original_len + i];
            // Candidate sources: neighborhood head (already distance-ordered),
            // falling back to the closer of the two parents.
            let head = if i < neighborhoods.len() {
                neighborhoods.row(i).first().map(|&j| j as usize)
            } else {
                None
            };
            let source = head.or_else(|| {
                parents.get(i).map(|&(a, b)| {
                    let da = low.position(a).distance_squared(pos);
                    let db = low.position(b).distance_squared(pos);
                    if da <= db {
                        a
                    } else {
                        b
                    }
                })
            });
            source
                .and_then(|s| low_colors.get(s).copied())
                .unwrap_or(Color::BLACK)
        });
    }
    cloud
        .set_colors(colors)
        .expect("color array sized to the point count by construction");
}

/// [`colorize_new_points`] restricted to a subset of new-point ordinals.
///
/// Only the tail colors listed in `ordinals` are (re)assigned — every other
/// tail color is left exactly as it is (the temporal layer has already
/// copied those forward from the previous frame). The per-point color
/// choice is identical to the full pass, so running this over the fresh
/// subset after a cached-color scatter is bit-identical to a full
/// [`colorize_new_points`] pass.
pub fn colorize_rows(
    cloud: &mut PointCloud,
    low: &PointCloud,
    original_len: usize,
    neighborhoods: NeighborhoodsView<'_>,
    parents: &[(usize, usize)],
    ordinals: &[u32],
) {
    let Some(low_colors) = low.colors() else {
        return;
    };
    let Some(mut colors) = cloud.take_colors() else {
        // A colored source over an uncolored upsampled cloud does not happen
        // in the engine's flow (the tail is seeded at extension time); fall
        // back to the full pass, which rebuilds the array from scratch.
        colorize_new_points(cloud, low, original_len, neighborhoods, parents);
        return;
    };
    debug_assert_eq!(colors.len(), cloud.len());
    {
        let positions = cloud.positions();
        for &ord in ordinals {
            let i = ord as usize;
            let pos = positions[original_len + i];
            let head = if i < neighborhoods.len() {
                neighborhoods.row(i).first().map(|&j| j as usize)
            } else {
                None
            };
            let source = head.or_else(|| {
                parents.get(i).map(|&(a, b)| {
                    let da = low.position(a).distance_squared(pos);
                    let db = low.position(b).distance_squared(pos);
                    if da <= db {
                        a
                    } else {
                        b
                    }
                })
            });
            colors[original_len + i] = source
                .and_then(|s| low_colors.get(s).copied())
                .unwrap_or(Color::BLACK);
        }
    }
    cloud
        .set_colors(colors)
        .expect("color array length unchanged by the subset pass");
}

/// Blended variant: averages the colors of the two parents instead of
/// copying the nearest one. Used by the Yuzu baseline, which interpolates
/// attributes jointly with geometry. Chunked across workers like
/// [`colorize_new_points`].
pub fn colorize_blend_parents(
    cloud: &mut PointCloud,
    low: &PointCloud,
    original_len: usize,
    parents: &[(usize, usize)],
) {
    let Some(low_colors) = low.colors() else {
        return;
    };
    let mut colors = cloud.take_colors().unwrap_or_else(|| {
        let mut seeded: Vec<Color> = Vec::with_capacity(cloud.len());
        seeded.extend_from_slice(&low_colors[..original_len.min(low_colors.len())]);
        seeded.resize(original_len, Color::BLACK);
        seeded
    });
    colors.truncate(original_len);
    colors.resize(cloud.len(), Color::BLACK);
    par::fill_with(&mut colors[original_len..], 8_192, |i| {
        parents
            .get(i)
            .map(|&(a, b)| low_colors[a].lerp(low_colors[b], 0.5))
            .unwrap_or(Color::BLACK)
    });
    cloud
        .set_colors(colors)
        .expect("color array sized to the point count by construction");
}

#[cfg(test)]
mod tests {
    use super::*;
    use volut_pointcloud::{Neighborhoods, Point3};

    fn csr(rows: &[Vec<usize>]) -> Neighborhoods {
        Neighborhoods::from_nested(rows)
    }

    fn two_point_cloud() -> PointCloud {
        PointCloud::from_positions_and_colors(
            vec![Point3::ZERO, Point3::new(2.0, 0.0, 0.0)],
            vec![Color::new(255, 0, 0), Color::new(0, 0, 255)],
        )
        .unwrap()
    }

    #[test]
    fn nearest_source_color_is_used() {
        let low = two_point_cloud();
        let mut up = low.clone();
        // New point close to the first original point.
        up.push(Point3::new(0.4, 0.0, 0.0), None);
        let hoods = csr(&[vec![0, 1]]);
        colorize_new_points(&mut up, &low, 2, hoods.view(), &[(0, 1)]);
        assert_eq!(up.color(2), Some(Color::new(255, 0, 0)));
    }

    #[test]
    fn falls_back_to_closest_parent() {
        let low = two_point_cloud();
        let mut up = low.clone();
        up.push(Point3::new(1.8, 0.0, 0.0), None);
        // Empty neighborhood forces the parent fallback; parent 1 is closer.
        let hoods = csr(&[vec![]]);
        colorize_new_points(&mut up, &low, 2, hoods.view(), &[(0, 1)]);
        assert_eq!(up.color(2), Some(Color::new(0, 0, 255)));
    }

    #[test]
    fn uncolored_source_is_a_noop() {
        let low = PointCloud::from_positions(vec![Point3::ZERO, Point3::ONE]);
        let mut up = low.clone();
        up.push(Point3::splat(0.5), None);
        let hoods = csr(&[vec![0]]);
        colorize_new_points(&mut up, &low, 2, hoods.view(), &[(0, 1)]);
        assert!(!up.has_colors());
    }

    #[test]
    fn blend_averages_parent_colors() {
        let low = two_point_cloud();
        let mut up = low.clone();
        up.push(Point3::new(1.0, 0.0, 0.0), None);
        colorize_blend_parents(&mut up, &low, 2, &[(0, 1)]);
        let c = up.color(2).unwrap();
        assert!(c.r > 100 && c.r < 160);
        assert!(c.b > 100 && c.b < 160);
    }

    #[test]
    fn original_colors_are_preserved() {
        let low = two_point_cloud();
        let mut up = low.clone();
        up.push(Point3::splat(0.1), None);
        let hoods = csr(&[vec![1]]);
        colorize_new_points(&mut up, &low, 2, hoods.view(), &[(0, 1)]);
        assert_eq!(up.color(0), Some(Color::new(255, 0, 0)));
        assert_eq!(up.color(1), Some(Color::new(0, 0, 255)));
    }

    #[test]
    fn subset_pass_matches_full_pass() {
        let n = 300;
        let low = PointCloud::from_positions_and_colors(
            (0..n).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect(),
            (0..n)
                .map(|i| Color::new((i % 256) as u8, (i / 2 % 256) as u8, 7))
                .collect(),
        )
        .unwrap();
        let mut hoods = Neighborhoods::new();
        let mut parents = Vec::new();
        let mut up = low.clone();
        for i in 0..n {
            up.push(Point3::new(i as f32 + 0.3, 0.5, 0.0), None);
            // Every third row empty to exercise the parent fallback.
            if i % 3 == 0 {
                hoods.push_row([0usize; 0]);
            } else {
                hoods.push_row([i]);
            }
            parents.push((i, (i + 1) % n));
        }
        let mut full = up.clone();
        colorize_new_points(&mut full, &low, n, hoods.view(), &parents);
        // Corrupt a subset of the full result, then repair exactly that
        // subset with the row-restricted pass: bit-identical to the full
        // pass everywhere.
        let mut partial = full.clone();
        let ordinals: Vec<u32> = (0..n as u32).filter(|o| o % 5 != 2).collect();
        {
            let mut colors = partial.take_colors().unwrap();
            for &o in &ordinals {
                colors[n + o as usize] = Color::new(1, 2, 3);
            }
            partial.set_colors(colors).unwrap();
        }
        colorize_rows(&mut partial, &low, n, hoods.view(), &parents, &ordinals);
        assert_eq!(partial.colors(), full.colors());
    }

    #[test]
    fn large_batch_is_colored_consistently() {
        // Exercise the parallel fill path with enough points for chunking.
        let n = 1000;
        let low = PointCloud::from_positions_and_colors(
            (0..n).map(|i| Point3::new(i as f32, 0.0, 0.0)).collect(),
            (0..n).map(|i| Color::new((i % 256) as u8, 0, 0)).collect(),
        )
        .unwrap();
        let mut up = low.clone();
        let mut hoods = Neighborhoods::new();
        let mut parents = Vec::new();
        for i in 0..n {
            up.push(Point3::new(i as f32 + 0.1, 0.0, 0.0), None);
            hoods.push_row([i]);
            parents.push((i, (i + 1) % n));
        }
        colorize_new_points(&mut up, &low, n, hoods.view(), &parents);
        for i in 0..n {
            assert_eq!(up.color(n + i), Some(Color::new((i % 256) as u8, 0, 0)));
        }
    }
}

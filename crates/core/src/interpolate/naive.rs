//! Vanilla kNN midpoint interpolation — the paper's baseline.
//!
//! Every generated point triggers a fresh kNN query against a k-d tree, no
//! dilation is applied (the candidate set is exactly the `k` closest
//! neighbors) and no neighbor relationships are reused. This reproduces both
//! the quality artifacts (density patterns are reinforced, Figure 4) and the
//! cost profile (≥70% of frame time, §4.1) that motivate VoLUT's enhanced
//! interpolation. Unlike the dilated path it stays single-threaded — the
//! per-point query cost is the baseline being measured.

use super::{
    colorize, distribute_new_points_into, FrameScratch, InterpolationResult, InterpolationTimings,
    OpCounts,
};
use crate::config::SrConfig;
use crate::error::Error;
use crate::Result;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::time::Instant;
use volut_pointcloud::kdtree::KdTree;
use volut_pointcloud::knn::NeighborSearch;
use volut_pointcloud::PointCloud;

/// Upsamples `low` to roughly `ratio ×` its point count using vanilla kNN
/// midpoint interpolation.
///
/// # Errors
/// Returns an error when the configuration or ratio is invalid, or when the
/// input has fewer than two points.
///
/// # Example
///
/// ```
/// use volut_core::{config::SrConfig, interpolate::naive::naive_interpolate};
/// use volut_pointcloud::synthetic;
///
/// # fn main() -> Result<(), volut_core::Error> {
/// let low = synthetic::sphere(500, 1.0, 1);
/// let out = naive_interpolate(&low, &SrConfig::k4d1(), 2.0)?;
/// assert_eq!(out.cloud.len(), 1000);
/// # Ok(())
/// # }
/// ```
pub fn naive_interpolate(
    low: &PointCloud,
    config: &SrConfig,
    ratio: f64,
) -> Result<InterpolationResult> {
    naive_interpolate_with(low, config, ratio, &mut FrameScratch::new())
}

/// [`naive_interpolate`] with caller-provided scratch buffers (reused across
/// frames of a streaming session).
///
/// # Errors
/// Same as [`naive_interpolate`].
pub fn naive_interpolate_with(
    low: &PointCloud,
    config: &SrConfig,
    ratio: f64,
    scratch: &mut FrameScratch,
) -> Result<InterpolationResult> {
    config.validate()?;
    config.validate_ratio(ratio)?;
    if low.len() < 2 {
        return Err(Error::InsufficientPoints {
            required: 2,
            available: low.len(),
        });
    }

    let mut ops = OpCounts::default();
    let mut timings = InterpolationTimings::default();

    // Build the index. The naive baseline pays a fresh per-new-point query
    // on top of this.
    let t0 = Instant::now();
    let tree = KdTree::build(low.positions());
    timings.knn += t0.elapsed();

    distribute_new_points_into(low.len(), ratio, &mut scratch.counts);
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut cloud = low.clone();
    let mut parents = Vec::new();
    let mut neighborhoods = scratch.take_neighborhoods();

    for i in 0..low.len() {
        let count = scratch.counts[i];
        if count == 0 {
            continue;
        }
        let p = low.position(i);
        // One fresh query per source point plus one per generated point
        // (used to re-derive the new point's own neighborhood).
        let tq = Instant::now();
        let neighbors = tree.knn(p, config.k + 1);
        timings.knn += tq.elapsed();
        ops.knn_queries += 1;
        ops.candidates_examined += (low.len().min(64)) as u64;
        // Drop the self-match.
        let neighbor_ids: Vec<usize> = neighbors
            .iter()
            .map(|n| n.index)
            .filter(|&j| j != i)
            .collect();
        if neighbor_ids.is_empty() {
            continue;
        }
        for _ in 0..count {
            let ti = Instant::now();
            let j = neighbor_ids[rng.random_range(0..neighbor_ids.len())];
            let new_point = p.midpoint(low.position(j));
            timings.interpolation += ti.elapsed();

            // Naive pipeline: fresh kNN query for the *new* point as well.
            let tq = Instant::now();
            let nn = tree.knn(new_point, config.k);
            timings.knn += tq.elapsed();
            ops.knn_queries += 1;
            ops.candidates_examined += (low.len().min(64)) as u64;

            cloud.push(new_point, None);
            parents.push((i, j));
            neighborhoods.push_row(nn.iter().map(|n| n.index));
            ops.points_generated += 1;
        }
    }

    // Colorize the generated points from their nearest original point.
    let tc = Instant::now();
    colorize::colorize_new_points(&mut cloud, low, low.len(), neighborhoods.view(), &parents);
    timings.colorization += tc.elapsed();

    Ok(InterpolationResult {
        cloud,
        original_len: low.len(),
        parents,
        neighborhoods,
        timings,
        ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use volut_pointcloud::{metrics, sampling, synthetic};

    #[test]
    fn reaches_requested_ratio() {
        let low = synthetic::sphere(400, 1.0, 1);
        let out = naive_interpolate(&low, &SrConfig::k4d1(), 2.0).unwrap();
        assert_eq!(out.cloud.len(), 800);
        assert!((out.achieved_ratio() - 2.0).abs() < 1e-9);
        assert_eq!(out.new_points(), 400);
        assert_eq!(out.parents.len(), 400);
        assert_eq!(out.neighborhoods.len(), 400);
    }

    #[test]
    fn supports_fractional_ratios() {
        let low = synthetic::sphere(300, 1.0, 2);
        let out = naive_interpolate(&low, &SrConfig::k4d1(), 1.7).unwrap();
        assert_eq!(out.cloud.len(), (300.0f64 * 1.7).round() as usize);
    }

    #[test]
    fn improves_coverage_of_ground_truth() {
        // The low cloud is an exact subset of the ground truth, so the
        // symmetric Chamfer distance is dominated by the coverage term
        // (ground truth -> reconstruction); interpolation must improve it.
        let gt = synthetic::torus(3000, 1.0, 0.3, 3);
        let low = sampling::random_downsample_exact(&gt, 1000, 1).unwrap();
        let out = naive_interpolate(&low, &SrConfig::k4d1(), 3.0).unwrap();
        let before = metrics::one_sided_chamfer(&gt, &low);
        let after = metrics::one_sided_chamfer(&gt, &out.cloud);
        assert!(after < before, "after {after} should be < before {before}");
    }

    #[test]
    fn colors_are_propagated() {
        let low = synthetic::sphere(200, 1.0, 4);
        let out = naive_interpolate(&low, &SrConfig::k4d1(), 2.0).unwrap();
        assert!(out.cloud.has_colors());
    }

    #[test]
    fn rejects_bad_inputs() {
        let low = synthetic::sphere(10, 1.0, 5);
        assert!(naive_interpolate(&low, &SrConfig::k4d1(), 0.5).is_err());
        let tiny =
            volut_pointcloud::PointCloud::from_positions(vec![volut_pointcloud::Point3::ZERO]);
        assert!(naive_interpolate(&tiny, &SrConfig::k4d1(), 2.0).is_err());
        let bad_cfg = SrConfig {
            k: 0,
            ..SrConfig::default()
        };
        assert!(naive_interpolate(&low, &bad_cfg, 2.0).is_err());
    }

    #[test]
    fn ratio_one_is_identity_size() {
        let low = synthetic::sphere(100, 1.0, 6);
        let out = naive_interpolate(&low, &SrConfig::k4d1(), 1.0).unwrap();
        assert_eq!(out.cloud.len(), 100);
        assert_eq!(out.new_points(), 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let low = synthetic::sphere(150, 1.0, 7);
        let a = naive_interpolate(&low, &SrConfig::k4d1(), 2.0).unwrap();
        let b = naive_interpolate(&low, &SrConfig::k4d1(), 2.0).unwrap();
        assert_eq!(a.cloud, b.cloud);
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        let low = synthetic::sphere(150, 1.0, 8);
        let fresh = naive_interpolate(&low, &SrConfig::k4d1(), 2.0).unwrap();
        let mut scratch = FrameScratch::new();
        // Run two frames through the same scratch; the second must be
        // unaffected by buffers left over from the first.
        let first = naive_interpolate_with(&low, &SrConfig::k4d1(), 2.0, &mut scratch).unwrap();
        scratch.recycle_neighborhoods(first.neighborhoods);
        let second = naive_interpolate_with(&low, &SrConfig::k4d1(), 2.0, &mut scratch).unwrap();
        assert_eq!(second.cloud, fresh.cloud);
        assert_eq!(second.neighborhoods, fresh.neighborhoods);
    }
}

//! Vanilla kNN midpoint interpolation — the paper's baseline.
//!
//! Every generated point costs a fresh kNN query (no dilation: the candidate
//! set is exactly the `k` closest neighbors, and no neighbor relationships
//! are reused). This reproduces both the quality artifacts (density patterns
//! are reinforced, Figure 4) and the cost profile (≥70% of frame time, §4.1)
//! that motivate VoLUT's enhanced interpolation — the baseline still pays
//! one query per source point *plus* one per generated point, roughly twice
//! the dilated path's query budget.
//!
//! The queries themselves run through the same batch machinery as the rest
//! of the engine: the spatial index is the scratch-resident cached k-d tree
//! (rebuilt only when the frame geometry changes) and both query passes go
//! through `super::batched_knn_into` — the source pass is a self-join the
//! batch layer answers with the dual-tree leaf-pair kernel
//! ([`volut_pointcloud::dualtree`]) at production sizes, the new-point pass
//! a bichromatic batch on the warm single-tree sweep. Partner selection
//! draws from a small RNG seeded per *source point* by the point's position
//! bits (`super::row_seed`), which keeps the output independent of row
//! order — the invariance that lets the temporal layer copy a surviving
//! row's generated points (and their exact kNN rows, colors and refined
//! positions) forward across delta frames; on such frames only the
//! churn-invalidated rows are regenerated, as one compacted batch
//! ([`naive_interpolate_rows_into`]) whose midpoints run through the SIMD
//! SoA kernel [`volut_pointcloud::kernels::pair_midpoints_into`].

use super::temporal::{FreshOutputs, OutputKind};
use super::{
    colorize, distribute_new_points_into, FrameScratch, InterpolationResult, InterpolationTimings,
    OpCounts,
};
use crate::config::SrConfig;
use crate::error::Error;
use crate::Result;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::time::Instant;
use volut_pointcloud::kernels;
use volut_pointcloud::soa::SoaPositions;
use volut_pointcloud::{NeighborhoodsView, Point3, PointCloud};

/// Upsamples `low` to roughly `ratio ×` its point count using vanilla kNN
/// midpoint interpolation.
///
/// # Errors
/// Returns an error when the configuration or ratio is invalid, or when the
/// input has fewer than two points.
///
/// # Example
///
/// ```
/// use volut_core::{config::SrConfig, interpolate::naive::naive_interpolate};
/// use volut_pointcloud::synthetic;
///
/// # fn main() -> Result<(), volut_core::Error> {
/// let low = synthetic::sphere(500, 1.0, 1);
/// let out = naive_interpolate(&low, &SrConfig::k4d1(), 2.0)?;
/// assert_eq!(out.cloud.len(), 1000);
/// # Ok(())
/// # }
/// ```
pub fn naive_interpolate(
    low: &PointCloud,
    config: &SrConfig,
    ratio: f64,
) -> Result<InterpolationResult> {
    naive_interpolate_with(low, config, ratio, &mut FrameScratch::new())
}

/// Generates the midpoints of a *subset* of source rows, appending to
/// `out_points` / `out_parents`.
///
/// `source_hoods.row(i)` is the batched `(k+1)`-NN row of source point `i`
/// *including* its self-match (stripped here); `counts[i]` is the per-row
/// generation count; `soa` must mirror `positions` ([`SoaPositions::fill`]).
/// Calling this over the full row set is bit-identical to the whole-frame
/// pass — the partial-batch entry exists so the temporal layer can
/// regenerate *only* churn-invalidated rows. Midpoints are computed by the
/// SIMD SoA kernel [`kernels::pair_midpoints_into`] (scalar fallback
/// bit-identical).
#[allow(clippy::too_many_arguments)]
pub fn naive_interpolate_rows_into(
    positions: &[Point3],
    soa: &SoaPositions,
    source_hoods: NeighborhoodsView<'_>,
    config: &SrConfig,
    counts: &[usize],
    rows: &[u32],
    out_points: &mut Vec<Point3>,
    out_parents: &mut Vec<(usize, usize)>,
) {
    let start = out_points.len();
    let total: usize = rows.iter().map(|&r| counts[r as usize]).sum();
    debug_assert!(total == 0 || soa.len() == positions.len());
    let mut pair_a: Vec<u32> = Vec::with_capacity(total);
    let mut pair_b: Vec<u32> = Vec::with_capacity(total);
    let mut neighbor_ids: Vec<u32> = Vec::with_capacity(config.k + 1);
    for &row in rows {
        let i = row as usize;
        let count = counts[i];
        if count == 0 {
            continue;
        }
        // Drop the self-match from the batched row.
        neighbor_ids.clear();
        neighbor_ids.extend(
            source_hoods
                .row(i)
                .iter()
                .copied()
                .filter(|&j| j as usize != i),
        );
        debug_assert!(!neighbor_ids.is_empty(), "stripped kNN row {i} is empty");
        if neighbor_ids.is_empty() {
            continue;
        }
        // Seeding per source point — by position bits — keeps the draw
        // sequence independent of the row's index across frames.
        let mut rng = StdRng::seed_from_u64(super::row_seed(config.seed, positions[i]));
        for _ in 0..count {
            let j = neighbor_ids[rng.random_range(0..neighbor_ids.len())];
            pair_a.push(row);
            pair_b.push(j);
            out_parents.push((i, j as usize));
        }
    }
    out_points.resize(start + pair_a.len(), Point3::ZERO);
    kernels::pair_midpoints_into(soa, &pair_a, &pair_b, &mut out_points[start..]);
}

/// [`naive_interpolate`] with caller-provided scratch buffers (reused across
/// frames of a streaming session).
///
/// # Errors
/// Same as [`naive_interpolate`].
pub fn naive_interpolate_with(
    low: &PointCloud,
    config: &SrConfig,
    ratio: f64,
    scratch: &mut FrameScratch,
) -> Result<InterpolationResult> {
    config.validate()?;
    config.validate_ratio(ratio)?;
    if low.len() < 2 {
        return Err(Error::InsufficientPoints {
            required: 2,
            available: low.len(),
        });
    }

    let mut ops = OpCounts::default();
    let mut timings = InterpolationTimings::default();
    let positions = low.positions();

    distribute_new_points_into(low.len(), ratio, &mut scratch.counts);
    // Counts are distributed round-robin with the remainder on the earliest
    // points, so the sources that generate anything form a prefix.
    let active = scratch
        .counts
        .iter()
        .rposition(|&c| c > 0)
        .map_or(0, |i| i + 1);
    let mut neighborhoods = scratch.take_neighborhoods();

    // --- Source queries: one batched (k+1)-NN pass over the active prefix.
    // With a full prefix this is the frame's kNN self-join, which the
    // temporal layer owns end to end: index reuse/patch/rebuild plus
    // incremental row reuse across delta frames (bit-identical to a full
    // recompute — see [`super::temporal`]). Partial prefixes (ratios below
    // 2×) are not a self-join over the whole cloud, so they take the plain
    // batched path against the cached index — and register as an unplanned
    // frame so no cross-frame output reuse spans them.
    let full_prefix = active == low.len();
    if full_prefix {
        // (Taken out of the scratch for the call so the temporal layer can
        // borrow the rest of the scratch mutably.)
        let mut hoods = std::mem::take(&mut scratch.dilated);
        super::temporal::self_join(low, config.k + 1, scratch, &mut hoods, &mut timings);
        scratch.dilated = hoods;
    } else {
        super::temporal::note_unplanned_frame(&mut scratch.temporal);
        let t0 = Instant::now();
        let (tree, _rebuilt) = scratch.index.get_or_build(
            positions,
            scratch.geometry_generation,
            low.geometry_digest(),
        );
        timings.index_build += t0.elapsed();
        let tq = Instant::now();
        scratch.dilated.clear();
        super::batched_knn_into(
            tree,
            &positions[..active],
            config.k + 1,
            &mut scratch.dualtree,
            &mut scratch.dilated,
        );
        timings.knn += tq.elapsed();
    }
    ops.knn_queries += active as u64;
    ops.candidates_examined += active as u64 * (low.len().min(64)) as u64;

    // --- Plan: classify every row as copy-forward or recompute against the
    // previous frame's cached outputs (partial prefixes already registered a
    // Cold plan above).
    let ti = Instant::now();
    if full_prefix {
        super::temporal::plan_outputs(
            &mut scratch.temporal,
            &scratch.counts,
            low,
            config,
            ratio,
            OutputKind::Naive,
        );
    } else {
        let total: usize = scratch.counts.iter().sum();
        scratch.temporal.stats.gen_points_recomputed += total as u64;
    }

    // --- Midpoint generation: only the fresh rows, as one compacted batch.
    // On a Cold plan this is every active row — the whole-frame baseline.
    let partial_rows: Vec<u32>;
    let fresh_rows: &[u32] = if full_prefix {
        &scratch.temporal.plan.fresh_rows
    } else {
        partial_rows = (0..active as u32).collect();
        &partial_rows
    };
    if !fresh_rows.is_empty() {
        scratch.soa.fill(positions);
    }
    let mut fresh_points: Vec<Point3> = Vec::new();
    let mut fresh_parents: Vec<(usize, usize)> = Vec::new();
    naive_interpolate_rows_into(
        positions,
        &scratch.soa,
        scratch.dilated.view(),
        config,
        &scratch.counts,
        fresh_rows,
        &mut fresh_points,
        &mut fresh_parents,
    );
    timings.interpolation += ti.elapsed();

    // --- New-point queries: the naive pipeline re-derives every *fresh*
    // generated point's own neighborhood with a batched kNN pass; reused
    // points copy their cached rows forward index-remapped. The queries are
    // bichromatic (midpoints against the original cloud), which the auto
    // policy keeps on the warm single-tree sweep — measured faster than a
    // leaf-pair traversal plus a query-tree build (see
    // `volut_pointcloud::dualtree`).
    let tq = Instant::now();
    scratch.subset_hoods.clear();
    super::batched_knn_into(
        scratch.index.cached_tree(),
        &fresh_points,
        config.k,
        &mut scratch.dualtree,
        &mut scratch.subset_hoods,
    );
    timings.knn += tq.elapsed();
    ops.knn_queries += fresh_points.len() as u64;
    ops.candidates_examined += fresh_points.len() as u64 * (low.len().min(64)) as u64;

    // --- Assemble: interleave copied-forward (index-remapped) and fresh
    // outputs into final frame order.
    let ta = Instant::now();
    let mut cloud = low.clone();
    let mut parents = Vec::new();
    super::temporal::assemble_outputs(
        &scratch.temporal,
        &scratch.counts,
        FreshOutputs {
            points: &fresh_points,
            parents: &fresh_parents,
            hoods: Some(&scratch.subset_hoods),
        },
        &mut cloud,
        &mut parents,
        Some(&mut neighborhoods),
    );
    ops.points_generated = (cloud.len() - low.len()) as u64;
    timings.interpolation += ta.elapsed();

    // --- Colorization: copy cached tail colors forward when every source
    // color is unchanged, blending only the fresh ordinals.
    let tc = Instant::now();
    if super::temporal::scatter_cached_colors(&scratch.temporal, &mut cloud, low.len()) {
        colorize::colorize_rows(
            &mut cloud,
            low,
            low.len(),
            neighborhoods.view(),
            &parents,
            &scratch.temporal.plan.fresh_ordinals,
        );
    } else {
        colorize::colorize_new_points(&mut cloud, low, low.len(), neighborhoods.view(), &parents);
    }
    timings.colorization += tc.elapsed();

    // --- Capture this frame's outputs as the next frame's reuse source.
    // Partial prefixes skip the capture: their generation did not run over
    // the self-join rows the next frame's plan would correlate against.
    if full_prefix {
        let t3 = Instant::now();
        super::temporal::capture_outputs(
            &mut scratch.temporal,
            &scratch.counts,
            low,
            config,
            ratio,
            OutputKind::Naive,
            &cloud,
            &parents,
            &neighborhoods,
        );
        timings.interpolation += t3.elapsed();
    }

    Ok(InterpolationResult {
        cloud,
        original_len: low.len(),
        parents,
        neighborhoods,
        timings,
        ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use volut_pointcloud::{metrics, sampling, synthetic};

    #[test]
    fn reaches_requested_ratio() {
        let low = synthetic::sphere(400, 1.0, 1);
        let out = naive_interpolate(&low, &SrConfig::k4d1(), 2.0).unwrap();
        assert_eq!(out.cloud.len(), 800);
        assert!((out.achieved_ratio() - 2.0).abs() < 1e-9);
        assert_eq!(out.new_points(), 400);
        assert_eq!(out.parents.len(), 400);
        assert_eq!(out.neighborhoods.len(), 400);
    }

    #[test]
    fn supports_fractional_ratios() {
        let low = synthetic::sphere(300, 1.0, 2);
        let out = naive_interpolate(&low, &SrConfig::k4d1(), 1.7).unwrap();
        assert_eq!(out.cloud.len(), (300.0f64 * 1.7).round() as usize);
    }

    #[test]
    fn improves_coverage_of_ground_truth() {
        // The low cloud is an exact subset of the ground truth, so the
        // symmetric Chamfer distance is dominated by the coverage term
        // (ground truth -> reconstruction); interpolation must improve it.
        let gt = synthetic::torus(3000, 1.0, 0.3, 3);
        let low = sampling::random_downsample_exact(&gt, 1000, 1).unwrap();
        let out = naive_interpolate(&low, &SrConfig::k4d1(), 3.0).unwrap();
        let before = metrics::one_sided_chamfer(&gt, &low);
        let after = metrics::one_sided_chamfer(&gt, &out.cloud);
        assert!(after < before, "after {after} should be < before {before}");
    }

    #[test]
    fn colors_are_propagated() {
        let low = synthetic::sphere(200, 1.0, 4);
        let out = naive_interpolate(&low, &SrConfig::k4d1(), 2.0).unwrap();
        assert!(out.cloud.has_colors());
    }

    #[test]
    fn rejects_bad_inputs() {
        let low = synthetic::sphere(10, 1.0, 5);
        assert!(naive_interpolate(&low, &SrConfig::k4d1(), 0.5).is_err());
        let tiny =
            volut_pointcloud::PointCloud::from_positions(vec![volut_pointcloud::Point3::ZERO]);
        assert!(naive_interpolate(&tiny, &SrConfig::k4d1(), 2.0).is_err());
        let bad_cfg = SrConfig {
            k: 0,
            ..SrConfig::default()
        };
        assert!(naive_interpolate(&low, &bad_cfg, 2.0).is_err());
    }

    #[test]
    fn ratio_one_is_identity_size() {
        let low = synthetic::sphere(100, 1.0, 6);
        let out = naive_interpolate(&low, &SrConfig::k4d1(), 1.0).unwrap();
        assert_eq!(out.cloud.len(), 100);
        assert_eq!(out.new_points(), 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let low = synthetic::sphere(150, 1.0, 7);
        let a = naive_interpolate(&low, &SrConfig::k4d1(), 2.0).unwrap();
        let b = naive_interpolate(&low, &SrConfig::k4d1(), 2.0).unwrap();
        assert_eq!(a.cloud, b.cloud);
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        let low = synthetic::sphere(150, 1.0, 8);
        let fresh = naive_interpolate(&low, &SrConfig::k4d1(), 2.0).unwrap();
        let mut scratch = FrameScratch::new();
        // Run two frames through the same scratch; the second must be
        // unaffected by buffers left over from the first.
        let first = naive_interpolate_with(&low, &SrConfig::k4d1(), 2.0, &mut scratch).unwrap();
        scratch.recycle_neighborhoods(first.neighborhoods);
        let second = naive_interpolate_with(&low, &SrConfig::k4d1(), 2.0, &mut scratch).unwrap();
        assert_eq!(second.cloud, fresh.cloud);
        assert_eq!(second.neighborhoods, fresh.neighborhoods);
    }

    #[test]
    fn fractional_ratio_frames_interleave_safely_with_full_ones() {
        // A partial-prefix (unplanned) frame between two full frames must
        // not let stale cached outputs cross the discontinuity: every frame
        // still matches a cold-scratch recompute bit for bit.
        let low = synthetic::sphere(500, 1.0, 12);
        let mut scratch = FrameScratch::new();
        for ratio in [2.0, 1.3, 2.0, 1.7, 2.0] {
            let reused =
                naive_interpolate_with(&low, &SrConfig::k4d1(), ratio, &mut scratch).unwrap();
            let fresh = naive_interpolate(&low, &SrConfig::k4d1(), ratio).unwrap();
            assert_eq!(reused.cloud, fresh.cloud, "ratio {ratio}");
            assert_eq!(reused.neighborhoods, fresh.neighborhoods, "ratio {ratio}");
            assert_eq!(reused.parents, fresh.parents, "ratio {ratio}");
            scratch.recycle_neighborhoods(reused.neighborhoods);
        }
    }

    #[test]
    fn rows_into_over_full_set_matches_whole_frame_batch() {
        // The partial-batch entry over the complete row list must reproduce
        // the whole-frame midpoints bit for bit.
        let low = synthetic::humanoid(700, 0.35, 23);
        let cfg = SrConfig::k4d1();
        let ratio = 2.0;
        let full = naive_interpolate(&low, &cfg, ratio).unwrap();

        let mut scratch = FrameScratch::new();
        let warm = naive_interpolate_with(&low, &cfg, ratio, &mut scratch).unwrap();
        assert_eq!(warm.cloud, full.cloud);
        let positions = low.positions();
        let mut soa = SoaPositions::default();
        soa.fill(positions);
        let mut counts = Vec::new();
        distribute_new_points_into(low.len(), ratio, &mut counts);
        let rows: Vec<u32> = (0..low.len() as u32).collect();
        let mut pts = Vec::new();
        let mut prs = Vec::new();
        naive_interpolate_rows_into(
            positions,
            &soa,
            scratch.dilated.view(),
            &cfg,
            &counts,
            &rows,
            &mut pts,
            &mut prs,
        );
        assert_eq!(pts.as_slice(), &full.cloud.positions()[low.len()..]);
        assert_eq!(prs, full.parents);
    }
}

//! Vanilla kNN midpoint interpolation — the paper's baseline.
//!
//! Every generated point costs a fresh kNN query (no dilation: the candidate
//! set is exactly the `k` closest neighbors, and no neighbor relationships
//! are reused). This reproduces both the quality artifacts (density patterns
//! are reinforced, Figure 4) and the cost profile (≥70% of frame time, §4.1)
//! that motivate VoLUT's enhanced interpolation — the baseline still pays
//! one query per source point *plus* one per generated point, roughly twice
//! the dilated path's query budget.
//!
//! The queries themselves run through the same batch machinery as the rest
//! of the engine: the spatial index is the scratch-resident cached k-d tree
//! (rebuilt only when the frame geometry changes) and both query passes go
//! through `super::batched_knn_into` — the source pass is a self-join the
//! batch layer answers with the dual-tree leaf-pair kernel
//! ([`volut_pointcloud::dualtree`]) at production sizes, the new-point pass
//! a bichromatic batch on the warm single-tree sweep. Partner selection
//! stays sequential over one global RNG so the output is bit-identical to
//! the historical per-point formulation.

use super::{
    colorize, distribute_new_points_into, FrameScratch, InterpolationResult, InterpolationTimings,
    OpCounts,
};
use crate::config::SrConfig;
use crate::error::Error;
use crate::Result;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::time::Instant;
use volut_pointcloud::PointCloud;

/// Upsamples `low` to roughly `ratio ×` its point count using vanilla kNN
/// midpoint interpolation.
///
/// # Errors
/// Returns an error when the configuration or ratio is invalid, or when the
/// input has fewer than two points.
///
/// # Example
///
/// ```
/// use volut_core::{config::SrConfig, interpolate::naive::naive_interpolate};
/// use volut_pointcloud::synthetic;
///
/// # fn main() -> Result<(), volut_core::Error> {
/// let low = synthetic::sphere(500, 1.0, 1);
/// let out = naive_interpolate(&low, &SrConfig::k4d1(), 2.0)?;
/// assert_eq!(out.cloud.len(), 1000);
/// # Ok(())
/// # }
/// ```
pub fn naive_interpolate(
    low: &PointCloud,
    config: &SrConfig,
    ratio: f64,
) -> Result<InterpolationResult> {
    naive_interpolate_with(low, config, ratio, &mut FrameScratch::new())
}

/// [`naive_interpolate`] with caller-provided scratch buffers (reused across
/// frames of a streaming session).
///
/// # Errors
/// Same as [`naive_interpolate`].
pub fn naive_interpolate_with(
    low: &PointCloud,
    config: &SrConfig,
    ratio: f64,
    scratch: &mut FrameScratch,
) -> Result<InterpolationResult> {
    config.validate()?;
    config.validate_ratio(ratio)?;
    if low.len() < 2 {
        return Err(Error::InsufficientPoints {
            required: 2,
            available: low.len(),
        });
    }

    let mut ops = OpCounts::default();
    let mut timings = InterpolationTimings::default();
    let positions = low.positions();

    distribute_new_points_into(low.len(), ratio, &mut scratch.counts);
    // Counts are distributed round-robin with the remainder on the earliest
    // points, so the sources that generate anything form a prefix.
    let active = scratch
        .counts
        .iter()
        .rposition(|&c| c > 0)
        .map_or(0, |i| i + 1);
    let mut neighborhoods = scratch.take_neighborhoods();

    // --- Source queries: one batched (k+1)-NN pass over the active prefix.
    // With a full prefix this is the frame's kNN self-join, which the
    // temporal layer owns end to end: index reuse/patch/rebuild plus
    // incremental row reuse across delta frames (bit-identical to a full
    // recompute — see [`super::temporal`]). Partial prefixes (ratios below
    // 2×) are not a self-join over the whole cloud, so they take the plain
    // batched path against the cached index.
    if active == low.len() {
        // (Taken out of the scratch for the call so the temporal layer can
        // borrow the rest of the scratch mutably.)
        let mut hoods = std::mem::take(&mut scratch.dilated);
        super::temporal::self_join(low, config.k + 1, scratch, &mut hoods, &mut timings);
        scratch.dilated = hoods;
    } else {
        let t0 = Instant::now();
        let (tree, _rebuilt) = scratch.index.get_or_build(
            positions,
            scratch.geometry_generation,
            low.geometry_digest(),
        );
        timings.index_build += t0.elapsed();
        let tq = Instant::now();
        scratch.dilated.clear();
        super::batched_knn_into(
            tree,
            &positions[..active],
            config.k + 1,
            &mut scratch.dualtree,
            &mut scratch.dilated,
        );
        timings.knn += tq.elapsed();
    }
    let source_hoods = &scratch.dilated;
    ops.knn_queries += active as u64;
    ops.candidates_examined += active as u64 * (low.len().min(64)) as u64;

    // --- Midpoint generation: sequential draws from one global RNG (the
    // draw sequence defines the baseline's output; chunking must not).
    let ti = Instant::now();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut cloud = low.clone();
    let mut parents = Vec::new();
    let queries = &mut scratch.queries;
    queries.clear();
    let mut neighbor_ids: Vec<usize> = Vec::with_capacity(config.k + 1);
    for i in 0..active {
        let count = scratch.counts[i];
        if count == 0 {
            continue;
        }
        let p = low.position(i);
        // Drop the self-match from the batched row.
        neighbor_ids.clear();
        neighbor_ids.extend(
            source_hoods
                .row(i)
                .iter()
                .map(|&j| j as usize)
                .filter(|&j| j != i),
        );
        if neighbor_ids.is_empty() {
            continue;
        }
        for _ in 0..count {
            let j = neighbor_ids[rng.random_range(0..neighbor_ids.len())];
            let new_point = p.midpoint(low.position(j));
            cloud.push(new_point, None);
            parents.push((i, j));
            queries.push(new_point);
            ops.points_generated += 1;
        }
    }
    timings.interpolation += ti.elapsed();

    // --- New-point queries: the naive pipeline re-derives every generated
    // point's own neighborhood with a fresh (batched) kNN pass. These are
    // bichromatic (midpoints against the original cloud), which the auto
    // policy keeps on the warm single-tree sweep — measured faster than a
    // leaf-pair traversal plus a query-tree build (see
    // `volut_pointcloud::dualtree`).
    let tq = Instant::now();
    super::batched_knn_into(
        scratch.index.cached_tree(),
        queries,
        config.k,
        &mut scratch.dualtree,
        &mut neighborhoods,
    );
    timings.knn += tq.elapsed();
    ops.knn_queries += queries.len() as u64;
    ops.candidates_examined += queries.len() as u64 * (low.len().min(64)) as u64;

    // Colorize the generated points from their nearest original point.
    let tc = Instant::now();
    colorize::colorize_new_points(&mut cloud, low, low.len(), neighborhoods.view(), &parents);
    timings.colorization += tc.elapsed();

    Ok(InterpolationResult {
        cloud,
        original_len: low.len(),
        parents,
        neighborhoods,
        timings,
        ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use volut_pointcloud::{metrics, sampling, synthetic};

    #[test]
    fn reaches_requested_ratio() {
        let low = synthetic::sphere(400, 1.0, 1);
        let out = naive_interpolate(&low, &SrConfig::k4d1(), 2.0).unwrap();
        assert_eq!(out.cloud.len(), 800);
        assert!((out.achieved_ratio() - 2.0).abs() < 1e-9);
        assert_eq!(out.new_points(), 400);
        assert_eq!(out.parents.len(), 400);
        assert_eq!(out.neighborhoods.len(), 400);
    }

    #[test]
    fn supports_fractional_ratios() {
        let low = synthetic::sphere(300, 1.0, 2);
        let out = naive_interpolate(&low, &SrConfig::k4d1(), 1.7).unwrap();
        assert_eq!(out.cloud.len(), (300.0f64 * 1.7).round() as usize);
    }

    #[test]
    fn improves_coverage_of_ground_truth() {
        // The low cloud is an exact subset of the ground truth, so the
        // symmetric Chamfer distance is dominated by the coverage term
        // (ground truth -> reconstruction); interpolation must improve it.
        let gt = synthetic::torus(3000, 1.0, 0.3, 3);
        let low = sampling::random_downsample_exact(&gt, 1000, 1).unwrap();
        let out = naive_interpolate(&low, &SrConfig::k4d1(), 3.0).unwrap();
        let before = metrics::one_sided_chamfer(&gt, &low);
        let after = metrics::one_sided_chamfer(&gt, &out.cloud);
        assert!(after < before, "after {after} should be < before {before}");
    }

    #[test]
    fn colors_are_propagated() {
        let low = synthetic::sphere(200, 1.0, 4);
        let out = naive_interpolate(&low, &SrConfig::k4d1(), 2.0).unwrap();
        assert!(out.cloud.has_colors());
    }

    #[test]
    fn rejects_bad_inputs() {
        let low = synthetic::sphere(10, 1.0, 5);
        assert!(naive_interpolate(&low, &SrConfig::k4d1(), 0.5).is_err());
        let tiny =
            volut_pointcloud::PointCloud::from_positions(vec![volut_pointcloud::Point3::ZERO]);
        assert!(naive_interpolate(&tiny, &SrConfig::k4d1(), 2.0).is_err());
        let bad_cfg = SrConfig {
            k: 0,
            ..SrConfig::default()
        };
        assert!(naive_interpolate(&low, &bad_cfg, 2.0).is_err());
    }

    #[test]
    fn ratio_one_is_identity_size() {
        let low = synthetic::sphere(100, 1.0, 6);
        let out = naive_interpolate(&low, &SrConfig::k4d1(), 1.0).unwrap();
        assert_eq!(out.cloud.len(), 100);
        assert_eq!(out.new_points(), 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let low = synthetic::sphere(150, 1.0, 7);
        let a = naive_interpolate(&low, &SrConfig::k4d1(), 2.0).unwrap();
        let b = naive_interpolate(&low, &SrConfig::k4d1(), 2.0).unwrap();
        assert_eq!(a.cloud, b.cloud);
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        let low = synthetic::sphere(150, 1.0, 8);
        let fresh = naive_interpolate(&low, &SrConfig::k4d1(), 2.0).unwrap();
        let mut scratch = FrameScratch::new();
        // Run two frames through the same scratch; the second must be
        // unaffected by buffers left over from the first.
        let first = naive_interpolate_with(&low, &SrConfig::k4d1(), 2.0, &mut scratch).unwrap();
        scratch.recycle_neighborhoods(first.neighborhoods);
        let second = naive_interpolate_with(&low, &SrConfig::k4d1(), 2.0, &mut scratch).unwrap();
        assert_eq!(second.cloud, fresh.cloud);
        assert_eq!(second.neighborhoods, fresh.neighborhoods);
    }
}

//! Stage one of the VoLUT pipeline: interpolation (§4.1).
//!
//! Two implementations are provided:
//! * [`naive::naive_interpolate`] — the vanilla kNN midpoint interpolation
//!   the paper uses as its baseline (`K4d1`, no dilation, no reuse, fresh
//!   neighbor query per generated point);
//! * [`dilated::dilated_interpolate`] — VoLUT's enhanced interpolation with
//!   dilation (Eq. 1), a two-layer octree for spatial pruning, neighbor
//!   relationship reuse (Eq. 2) and multi-threaded execution.
//!
//! Both return an [`InterpolationResult`] that carries the upsampled cloud,
//! the parent/neighborhood bookkeeping that later stages reuse, and stage
//! timings.

pub mod colorize;
pub mod dilated;
pub mod naive;
pub mod reuse;

use std::time::Duration;
use volut_pointcloud::PointCloud;

/// Output of an interpolation pass.
///
/// The upsampled cloud stores the original points first (indices
/// `0..original_len`) followed by the newly generated points; the
/// `parents` and `neighborhoods` vectors are indexed by *new-point ordinal*
/// (i.e. `cloud index - original_len`).
#[derive(Debug, Clone)]
pub struct InterpolationResult {
    /// The upsampled cloud (original points followed by interpolated points).
    pub cloud: PointCloud,
    /// Number of original (input) points at the front of `cloud`.
    pub original_len: usize,
    /// For each new point, the indices (into the original cloud) of the two
    /// points whose midpoint generated it.
    pub parents: Vec<(usize, usize)>,
    /// For each new point, the (approximate) `k` nearest original-point
    /// indices ordered by increasing distance. Reused by colorization and by
    /// the LUT refinement stage so no further kNN queries are needed.
    pub neighborhoods: Vec<Vec<usize>>,
    /// Stage timings measured on the host.
    pub timings: InterpolationTimings,
    /// Operation counters used for reporting and cost modeling.
    pub ops: OpCounts,
}

impl InterpolationResult {
    /// Number of newly generated points.
    pub fn new_points(&self) -> usize {
        self.cloud.len() - self.original_len
    }

    /// The achieved upsampling ratio (output size / input size).
    pub fn achieved_ratio(&self) -> f64 {
        if self.original_len == 0 {
            1.0
        } else {
            self.cloud.len() as f64 / self.original_len as f64
        }
    }
}

/// Wall-clock time spent in each sub-stage of interpolation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InterpolationTimings {
    /// Time spent building the spatial index and answering kNN queries.
    pub knn: Duration,
    /// Time spent generating midpoints and bookkeeping.
    pub interpolation: Duration,
    /// Time spent assigning colors to the new points.
    pub colorization: Duration,
}

impl InterpolationTimings {
    /// Total time across all sub-stages.
    pub fn total(&self) -> Duration {
        self.knn + self.interpolation + self.colorization
    }
}

/// Counters describing how much work an interpolation pass performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Number of kNN queries issued against a spatial index.
    pub knn_queries: u64,
    /// Number of candidate points examined across all queries
    /// (an upper bound proxy for distance evaluations).
    pub candidates_examined: u64,
    /// Number of interpolated points generated.
    pub points_generated: u64,
    /// Number of neighbor lists produced by reuse instead of a fresh query.
    pub reused_neighborhoods: u64,
}

impl OpCounts {
    /// Component-wise sum of two counters.
    pub fn combine(self, other: OpCounts) -> OpCounts {
        OpCounts {
            knn_queries: self.knn_queries + other.knn_queries,
            candidates_examined: self.candidates_examined + other.candidates_examined,
            points_generated: self.points_generated + other.points_generated,
            reused_neighborhoods: self.reused_neighborhoods + other.reused_neighborhoods,
        }
    }
}

/// Computes how many new points must be generated to reach `ratio`, and how
/// they are distributed over the source points (round-robin, earlier points
/// first). Returns a vector of per-source-point counts of length `n`.
pub(crate) fn distribute_new_points(n: usize, ratio: f64) -> Vec<usize> {
    if n == 0 {
        return Vec::new();
    }
    let target_total = (n as f64 * ratio).round() as usize;
    let new_total = target_total.saturating_sub(n);
    let base = new_total / n;
    let extra = new_total % n;
    (0..n).map(|i| base + usize::from(i < extra)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_reaches_target() {
        let d = distribute_new_points(100, 2.0);
        assert_eq!(d.iter().sum::<usize>(), 100);
        let d = distribute_new_points(100, 2.5);
        assert_eq!(d.iter().sum::<usize>(), 150);
        let d = distribute_new_points(7, 3.3);
        assert_eq!(d.iter().sum::<usize>(), (7.0f64 * 3.3).round() as usize - 7);
    }

    #[test]
    fn distribution_handles_identity_and_empty() {
        assert_eq!(distribute_new_points(10, 1.0).iter().sum::<usize>(), 0);
        assert!(distribute_new_points(0, 4.0).is_empty());
    }

    #[test]
    fn distribution_is_balanced() {
        let d = distribute_new_points(10, 2.35);
        let min = d.iter().min().unwrap();
        let max = d.iter().max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn op_counts_combine() {
        let a = OpCounts { knn_queries: 1, candidates_examined: 10, points_generated: 5, reused_neighborhoods: 2 };
        let b = OpCounts { knn_queries: 2, candidates_examined: 20, points_generated: 1, reused_neighborhoods: 0 };
        let c = a.combine(b);
        assert_eq!(c.knn_queries, 3);
        assert_eq!(c.candidates_examined, 30);
        assert_eq!(c.points_generated, 6);
        assert_eq!(c.reused_neighborhoods, 2);
    }
}

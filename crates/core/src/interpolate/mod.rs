//! Stage one of the VoLUT pipeline: interpolation (§4.1).
//!
//! Two implementations are provided behind the [`Interpolator`] trait:
//! * [`NaiveInterpolator`] / [`naive::naive_interpolate`] — the vanilla kNN
//!   midpoint interpolation the paper uses as its baseline (`K4d1`, no
//!   dilation, no reuse, fresh neighbor query per generated point);
//! * [`DilatedInterpolator`] / [`dilated::dilated_interpolate`] — VoLUT's
//!   enhanced interpolation with dilation (Eq. 1), a two-layer octree for
//!   spatial pruning, neighbor relationship reuse (Eq. 2) and
//!   multi-threaded execution.
//!
//! Both return an [`InterpolationResult`] that carries the upsampled cloud,
//! the parent/neighborhood bookkeeping that later stages reuse (as a flat
//! CSR [`Neighborhoods`] — one allocation for the whole frame instead of
//! one per generated point), and stage timings. [`FrameScratch`] is the
//! per-session arena: passing the same scratch to every `upsample` call of
//! a streaming session lets the engine reuse the index and neighborhood
//! buffers across frames.

pub mod colorize;
pub mod dilated;
pub mod naive;
pub mod reuse;
pub mod temporal;

use crate::config::SrConfig;
use crate::Result;
use std::time::Duration;
pub use temporal::TemporalStats;
use volut_pointcloud::delta::FrameDelta;
use volut_pointcloud::dualtree::{BatchStrategy, DualTreeScratch};
use volut_pointcloud::kdtree::KdTree;
use volut_pointcloud::soa::SoaPositions;
use volut_pointcloud::{par, Neighborhoods, Point3, PointCloud};

/// Output of an interpolation pass.
///
/// The upsampled cloud stores the original points first (indices
/// `0..original_len`) followed by the newly generated points; the
/// `parents` and `neighborhoods` containers are indexed by *new-point
/// ordinal* (i.e. `cloud index - original_len`).
#[derive(Debug, Clone)]
pub struct InterpolationResult {
    /// The upsampled cloud (original points followed by interpolated points).
    pub cloud: PointCloud,
    /// Number of original (input) points at the front of `cloud`.
    pub original_len: usize,
    /// For each new point, the indices (into the original cloud) of the two
    /// points whose midpoint generated it.
    pub parents: Vec<(usize, usize)>,
    /// For each new point, the (approximate) `k` nearest original-point
    /// indices ordered by increasing distance, stored as one flat CSR
    /// container. Reused by colorization and by the LUT refinement stage so
    /// no further kNN queries (and no per-point allocations) are needed.
    pub neighborhoods: Neighborhoods,
    /// Stage timings measured on the host.
    pub timings: InterpolationTimings,
    /// Operation counters used for reporting and cost modeling.
    pub ops: OpCounts,
}

impl InterpolationResult {
    /// Number of newly generated points.
    pub fn new_points(&self) -> usize {
        self.cloud.len() - self.original_len
    }

    /// The achieved upsampling ratio (output size / input size).
    pub fn achieved_ratio(&self) -> f64 {
        if self.original_len == 0 {
            1.0
        } else {
            self.cloud.len() as f64 / self.original_len as f64
        }
    }
}

/// Wall-clock time spent in each sub-stage of interpolation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InterpolationTimings {
    /// Time spent (re)building or validating the spatial index. Streaming
    /// sessions with static geometry amortize this to ~zero after the first
    /// frame thanks to the scratch-resident index cache.
    pub index_build: Duration,
    /// Time spent answering kNN queries against the index.
    pub knn: Duration,
    /// Time spent generating midpoints and bookkeeping.
    pub interpolation: Duration,
    /// Time spent assigning colors to the new points.
    pub colorization: Duration,
}

impl InterpolationTimings {
    /// Total time across all sub-stages.
    pub fn total(&self) -> Duration {
        self.index_build + self.knn + self.interpolation + self.colorization
    }
}

/// Counters describing how much work an interpolation pass performed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Number of kNN queries issued against a spatial index.
    pub knn_queries: u64,
    /// Number of candidate points examined across all queries
    /// (an upper bound proxy for distance evaluations).
    pub candidates_examined: u64,
    /// Number of interpolated points generated.
    pub points_generated: u64,
    /// Number of neighbor lists produced by reuse instead of a fresh query.
    pub reused_neighborhoods: u64,
}

impl OpCounts {
    /// Component-wise sum of two counters.
    pub fn combine(self, other: OpCounts) -> OpCounts {
        OpCounts {
            knn_queries: self.knn_queries + other.knn_queries,
            candidates_examined: self.candidates_examined + other.candidates_examined,
            points_generated: self.points_generated + other.points_generated,
            reused_neighborhoods: self.reused_neighborhoods + other.reused_neighborhoods,
        }
    }
}

/// Usage counters of the scratch-resident spatial index and the temporal
/// (delta-frame) reuse layer built on top of it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IndexCacheStats {
    /// Frames that paid a full index rebuild.
    pub rebuilds: u64,
    /// Frames served from the cached index (matched generation or content).
    pub reuses: u64,
    /// Frames whose index was incrementally patched for a frame delta
    /// ([`KdTree::patch`]) instead of rebuilt.
    pub patches: u64,
    /// kNN self-join rows copied forward from the previous frame by the
    /// incremental path (see [`temporal`]).
    pub rows_reused: u64,
    /// kNN self-join rows recomputed by the incremental path (inserted
    /// queries plus rows invalidated by the churn).
    pub rows_recomputed: u64,
    /// Batches answered by the dual-tree (leaf-pair) all-kNN kernel through
    /// the scratch-resident [`DualTreeScratch`] — the self-join fast path
    /// the interpolators hit once per frame at production sizes.
    pub dual_tree_batches: u64,
}

/// Scratch-resident spatial index shared by the interpolation stages of
/// consecutive frames.
///
/// Streaming sessions repeatedly upsample frames whose geometry is often
/// unchanged (static chunks, paused playback, repeated calibration frames).
/// The cache keeps the k-d tree built for the previous frame and revalidates
/// it per frame, in one of two ways:
/// * **generation match** — when the caller declared a geometry generation
///   (see [`FrameScratch::set_geometry_generation`]) and it equals the one
///   the tree was built from, the tree is trusted outright (O(1));
/// * **content match** — otherwise the cached tree's own point copy is
///   compared against the frame positions (a linear memcmp-speed scan, two
///   orders of magnitude cheaper than the O(n log n) rebuild it avoids).
///
/// Either way a hit skips both the `positions().to_vec()` clone and the
/// rebuild. The content check itself is two-tier: a memoized 64-bit
/// geometry digest ([`PointCloud::geometry_digest`]) is compared first, so
/// mismatched frames short-circuit without scanning the cloud, and only a
/// digest match pays the element-wise verify (which also guards against
/// digest collisions). A miss either rebuilds in place via
/// [`KdTree::build_in`] or — when the temporal layer hands it a frame delta
/// — incrementally patches the tree via [`KdTree::patch`], with a full
/// rebuild forced once cumulative patched churn crosses
/// [`PATCH_REBUILD_FRACTION`] of the cloud (stale split planes and bloated
/// node boxes degrade query time, and an occasional rebuild is cheaper than
/// slowly losing the tree's quality).
#[derive(Debug, Default)]
pub struct IndexCache {
    tree: KdTree,
    built: bool,
    built_generation: Option<u64>,
    built_digest: u64,
    /// Cumulative churn absorbed by patches since the last full build.
    patched_churn: usize,
    stats: IndexCacheStats,
}

/// Cumulative patched churn (fraction of the cloud) that forces the next
/// delta frame onto a full rebuild instead of another patch.
pub const PATCH_REBUILD_FRACTION: f64 = 0.5;

impl IndexCache {
    /// `true` when the cached tree already indexes `positions` — by
    /// declared generation (O(1)) or by digest-then-content comparison.
    pub(crate) fn is_fresh(
        &self,
        positions: &[Point3],
        generation: Option<u64>,
        digest: u64,
    ) -> bool {
        if !self.built {
            return false;
        }
        let trusted = generation.is_some()
            && generation == self.built_generation
            && self.tree.points().len() == positions.len();
        trusted || (self.built_digest == digest && self.tree.points() == positions)
    }

    /// `true` when the cached tree indexes exactly `points` (element-wise;
    /// used by the temporal layer to decide patch vs rebuild).
    pub(crate) fn indexes(&self, points: &[Point3]) -> bool {
        self.built && self.tree.points() == points
    }

    /// Counts a cache hit, records the caller's generation declaration for
    /// the next frame's O(1) check, and returns the cached tree.
    pub(crate) fn reuse(&mut self, generation: Option<u64>) -> &KdTree {
        self.built_generation = generation;
        self.stats.reuses += 1;
        &self.tree
    }

    /// Rebuilds the index over `positions` in place.
    pub(crate) fn rebuild(
        &mut self,
        positions: &[Point3],
        generation: Option<u64>,
        digest: u64,
    ) -> &KdTree {
        self.tree.build_in(positions);
        self.built = true;
        self.built_generation = generation;
        self.built_digest = digest;
        self.patched_churn = 0;
        self.stats.rebuilds += 1;
        &self.tree
    }

    /// Incrementally patches the cached index for a frame delta, falling
    /// back to a full rebuild when the cache is cold, the delta's old side
    /// does not match the indexed cloud, or cumulative patched churn
    /// crosses [`PATCH_REBUILD_FRACTION`]. The caller guarantees `delta`
    /// describes the change from the indexed points to `positions`.
    pub(crate) fn patch(
        &mut self,
        positions: &[Point3],
        generation: Option<u64>,
        digest: u64,
        delta: &FrameDelta,
    ) -> &KdTree {
        if !self.built || self.tree.points().len() != delta.old_len() {
            return self.rebuild(positions, generation, digest);
        }
        self.patched_churn += delta.removed().len().max(delta.inserted().len());
        let budget = (positions.len().max(1) as f64 * PATCH_REBUILD_FRACTION) as usize;
        if self.patched_churn > budget {
            return self.rebuild(positions, generation, digest);
        }
        self.tree.patch(delta, positions);
        self.built_generation = generation;
        self.built_digest = digest;
        self.stats.patches += 1;
        &self.tree
    }

    /// The cached tree. Only meaningful after a `reuse`/`rebuild`/`patch`
    /// established it for the current frame.
    pub(crate) fn cached_tree(&self) -> &KdTree {
        debug_assert!(self.built, "cached_tree before any build");
        &self.tree
    }

    /// Returns the cached tree for `positions`, rebuilding it only when
    /// neither the declared `generation` nor the indexed content (digest
    /// first, then element-wise) matches. The second element reports
    /// whether a rebuild happened.
    pub(crate) fn get_or_build(
        &mut self,
        positions: &[Point3],
        generation: Option<u64>,
        digest: u64,
    ) -> (&KdTree, bool) {
        if self.is_fresh(positions, generation, digest) {
            (self.reuse(generation), false)
        } else {
            (self.rebuild(positions, generation, digest), true)
        }
    }

    /// Usage counters since this cache was created.
    pub fn stats(&self) -> IndexCacheStats {
        self.stats
    }

    /// Drops the cached index (the next frame rebuilds unconditionally).
    pub fn invalidate(&mut self) {
        self.built = false;
        self.built_generation = None;
    }
}

/// Reusable per-session buffers shared by the interpolation and refinement
/// stages.
///
/// A streaming client upsamples tens of frames per second with near-identical
/// point counts; allocating the neighborhood CSR, the dilated neighbor lists,
/// the spatial index and the refinement center buffer from scratch every
/// frame wastes both time and allocator locality. A `FrameScratch` owned by
/// the session (see `volut_stream::client::SrSession`) is threaded through
/// [`crate::SrPipeline::upsample_with`]; buffers grow to the steady-state
/// size during the first frame and are reused afterwards, and the spatial
/// index is cached across frames (see [`IndexCache`]).
#[derive(Debug, Default)]
pub struct FrameScratch {
    /// Recycled CSR container handed to the interpolator each frame.
    neighborhoods: Option<Neighborhoods>,
    /// Recycled dilated-neighbor CSR (one row per *original* point).
    pub(crate) dilated: Neighborhoods,
    /// Per-source-point generation counts.
    pub(crate) counts: Vec<usize>,
    /// Copy of the pre-refinement generated tail (see
    /// [`crate::refine::refine_in_place`]).
    pub(crate) centers: Vec<Point3>,
    /// Reused query-position buffer (batched kNN over generated points).
    pub(crate) queries: Vec<Point3>,
    /// Recycled raw (self-match-included) kNN rows of the dilated stage.
    pub(crate) raw_hoods: Neighborhoods,
    /// Cached spatial index, revalidated per frame.
    pub(crate) index: IndexCache,
    /// Dual-tree all-kNN state (query-side tree, result-row slab, node
    /// bounds), reused across frames so the frame-dominating kNN self-join
    /// performs no steady-state allocation (see
    /// [`volut_pointcloud::dualtree`]).
    pub(crate) dualtree: DualTreeScratch,
    /// The previous frame's self-join rows plus the incremental-update
    /// scratch — the temporal-coherence layer that turns delta frames into
    /// `O(churn)` kNN work (see [`temporal`]).
    pub(crate) temporal: temporal::TemporalCache,
    /// Caller-declared geometry generation for the next frame(s); `None`
    /// means "unknown", which falls back to content verification.
    pub(crate) geometry_generation: Option<u64>,
    /// SoA mirror of the frame positions, feeding the SIMD pair-midpoint
    /// kernel of the interpolators' fresh-row path.
    pub(crate) soa: SoaPositions,
    /// Compacted CSR over the fresh-subset rows handed to
    /// [`crate::refine::refine_rows_in_place`].
    pub(crate) subset_hoods: Neighborhoods,
    /// Refined positions of the fresh subset before scatter-back.
    pub(crate) subset_out: Vec<Point3>,
}

impl FrameScratch {
    /// Creates an empty scratch arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the recycled neighborhood container (cleared, allocation kept).
    pub(crate) fn take_neighborhoods(&mut self) -> Neighborhoods {
        match self.neighborhoods.take() {
            Some(mut n) => {
                n.clear();
                n
            }
            None => Neighborhoods::new(),
        }
    }

    /// Returns a neighborhood container for reuse by the next frame.
    pub fn recycle_neighborhoods(&mut self, neighborhoods: Neighborhoods) {
        self.neighborhoods = Some(neighborhoods);
    }

    /// Declares the geometry generation of the frames that follow. When it
    /// matches the generation the cached index was built from, the per-frame
    /// content check is skipped entirely; bump the value (or call
    /// [`Self::clear_geometry_generation`]) whenever the frame geometry
    /// changes. Stale declarations are the caller's responsibility — an
    /// unchanged generation over changed geometry reuses the old index.
    pub fn set_geometry_generation(&mut self, generation: u64) {
        self.geometry_generation = Some(generation);
    }

    /// Reverts to content-verified index caching (the safe default).
    pub fn clear_geometry_generation(&mut self) {
        self.geometry_generation = None;
    }

    /// Usage counters of the scratch-resident index cache, including the
    /// incremental row-reuse counters of the temporal layer and how many
    /// batches ran through the scratch-resident dual-tree kernel.
    pub fn index_stats(&self) -> IndexCacheStats {
        let mut stats = self.index.stats();
        stats.dual_tree_batches = self.dualtree.invocations();
        stats.rows_reused = self.temporal.stats.rows_reused;
        stats.rows_recomputed = self.temporal.stats.rows_recomputed;
        stats
    }

    /// Frame- and row-level counters of the temporal (delta-frame) reuse
    /// layer.
    pub fn temporal_stats(&self) -> TemporalStats {
        self.temporal.stats
    }

    /// Enables or disables incremental (temporal) kNN reuse for subsequent
    /// frames. Enabled by default; disabling also drops the cached frame,
    /// so re-enabling starts cold. Results are bit-identical either way —
    /// this is the ablation/benchmark switch.
    pub fn set_incremental(&mut self, enabled: bool) {
        self.temporal.enabled = enabled;
        if !enabled {
            self.temporal.invalidate();
        }
    }

    /// Whether incremental (temporal) kNN reuse is enabled.
    pub fn incremental(&self) -> bool {
        self.temporal.enabled
    }

    /// Declares the exact delta from the previous upsampled frame to the
    /// next one, sparing the engine its bitwise diff. The delta is verified
    /// against both frames before use (one linear pass); a delta that does
    /// not match falls back to the engine's own diff, so a wrong
    /// declaration costs time, never correctness. Consumed by the next
    /// frame.
    pub fn set_frame_delta(&mut self, delta: FrameDelta) {
        self.temporal.pending_delta = Some(delta);
    }

    /// Flushes every cross-frame cache: the temporal layer (cached rows,
    /// interpolation outputs, refined tail, reuse plan, any pending delta)
    /// and the spatial-index cache, together. The next frame recomputes
    /// cold, so its output depends only on that frame's bits — the resync
    /// primitive of fault-tolerant streaming sessions whose cached state
    /// may no longer describe a frame that was actually processed (see the
    /// cache-flush invariants in [`temporal`]'s module docs). Buffers keep
    /// their capacity; incremental reuse re-arms on the following frame.
    pub fn flush_temporal(&mut self) {
        self.temporal.invalidate();
        self.index.invalidate();
    }

    /// Why the most recent externally supplied frame delta
    /// ([`Self::set_frame_delta`]) was rejected by verification, or `None`
    /// when it verified (or none was consumed since). A rejected delta never
    /// corrupts output — the engine falls back to its own bitwise diff — but
    /// a resilient transport reads the reason to distinguish mangled
    /// payloads from genuine geometry divergence.
    pub fn last_delta_error(&self) -> Option<volut_pointcloud::DeltaError> {
        self.temporal.last_delta_error
    }

    /// Capacity (bytes) currently reserved by the dual-tree scratch;
    /// steady-state frames of one session must not grow it (asserted by the
    /// streaming-session tests).
    pub fn dual_tree_reserved_bytes(&self) -> usize {
        self.dualtree.reserved_bytes()
    }

    /// Capacity (bytes) currently reserved by every persistent buffer of
    /// this scratch: the neighborhood CSRs, the cached spatial index, the
    /// dual-tree scratch and the temporal cache. Steady-state frames of a
    /// stable-size churned session must not grow it (asserted by the
    /// streaming-session tests).
    pub fn reserved_bytes(&self) -> usize {
        self.neighborhoods
            .as_ref()
            .map_or(0, Neighborhoods::reserved_bytes)
            + self.dilated.reserved_bytes()
            + self.raw_hoods.reserved_bytes()
            + self.counts.capacity() * std::mem::size_of::<usize>()
            + (self.centers.capacity() + self.queries.capacity() + self.subset_out.capacity())
                * std::mem::size_of::<Point3>()
            + self.index.tree.reserved_bytes()
            + self.dualtree.reserved_bytes()
            + self.temporal.reserved_bytes()
            + self.soa.reserved_bytes()
            + self.subset_hoods.reserved_bytes()
    }
}

/// One batched kNN pass over `queries` against the cached `tree`, appending
/// CSR rows to `out` — the shared kNN entry of both interpolators.
///
/// Batches the dual-tree auto policy would claim — the large self-joins
/// that dominate frame time — always go through [`KdTree::knn_batch_with`]
/// whole: the leaf-pair traversal parallelizes *internally* by sharding the
/// query-leaf set across the pool (and uses the engine-owned
/// [`DualTreeScratch`], so steady-state frames allocate nothing). Chunking
/// those here would be strictly worse: each chunk is a bichromatic subset
/// (breaking self-join detection and the diagonal-first bound seeding) and
/// the chunks would fight the traversal's own shards for workers.
///
/// Everything else — bichromatic batches, small self-joins, large `k` —
/// runs the warm single-tree sweep, pre-chunked across the pool when more
/// than one worker is available, exactly as before. Either way rows are
/// bit-identical at every worker count: chunk boundaries only partition the
/// query list, and row contents are per-query.
pub(crate) fn batched_knn_into(
    tree: &KdTree,
    queries: &[Point3],
    k: usize,
    dual: &mut DualTreeScratch,
    out: &mut Neighborhoods,
) {
    let workers = par::worker_count(queries.len(), 2_000);
    if workers <= 1 || tree.auto_selects_dual_tree(queries, k) {
        tree.knn_batch_with(queries, k, out, BatchStrategy::Auto, dual);
        return;
    }
    use volut_pointcloud::knn::NeighborSearch;
    let chunk = queries.len().div_ceil(workers).max(1);
    let partials = par::map_chunks(queries.len(), chunk, |_, range| {
        let mut local = Neighborhoods::with_capacity(range.len(), range.len() * k);
        tree.knn_batch(&queries[range], k, &mut local);
        local
    });
    for part in &partials {
        out.append(part);
    }
}

/// A strategy for the interpolation stage, unifying the naive baseline and
/// VoLUT's dilated interpolation behind [`crate::SrPipeline`].
pub trait Interpolator: Send + Sync {
    /// Short human-readable name used in reports.
    fn name(&self) -> &'static str;

    /// Upsamples `low` to roughly `ratio ×` its point count, reusing the
    /// buffers in `scratch` where possible.
    ///
    /// # Errors
    /// Returns an error when the configuration or ratio is invalid, or when
    /// the input has fewer than two points.
    fn interpolate(
        &self,
        low: &PointCloud,
        config: &SrConfig,
        ratio: f64,
        scratch: &mut FrameScratch,
    ) -> Result<InterpolationResult>;
}

/// Vanilla kNN midpoint interpolation (the paper's baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveInterpolator;

impl Interpolator for NaiveInterpolator {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn interpolate(
        &self,
        low: &PointCloud,
        config: &SrConfig,
        ratio: f64,
        scratch: &mut FrameScratch,
    ) -> Result<InterpolationResult> {
        naive::naive_interpolate_with(low, config, ratio, scratch)
    }
}

/// VoLUT's dilated, reuse-enabled, data-parallel interpolation.
#[derive(Debug, Clone, Copy, Default)]
pub struct DilatedInterpolator;

impl Interpolator for DilatedInterpolator {
    fn name(&self) -> &'static str {
        "dilated"
    }

    fn interpolate(
        &self,
        low: &PointCloud,
        config: &SrConfig,
        ratio: f64,
        scratch: &mut FrameScratch,
    ) -> Result<InterpolationResult> {
        dilated::dilated_interpolate_with(low, config, ratio, scratch)
    }
}

/// Computes how many new points must be generated to reach `ratio`, and how
/// they are distributed over the source points (round-robin, earlier points
/// first). Fills `counts` (cleared first) with one entry per source point.
pub(crate) fn distribute_new_points_into(n: usize, ratio: f64, counts: &mut Vec<usize>) {
    counts.clear();
    if n == 0 {
        return;
    }
    let target_total = (n as f64 * ratio).round() as usize;
    let new_total = target_total.saturating_sub(n);
    let base = new_total / n;
    let extra = new_total % n;
    counts.extend((0..n).map(|i| base + usize::from(i < extra)));
}

/// Per-row RNG seed derived from the session seed and the source point's
/// *position bits* (splitmix64-style finalizer). Seeding partner draws by
/// content rather than by row index makes every row's output sequence
/// invariant under index remapping — the property that lets the temporal
/// layer copy interpolated outputs forward across frames whose surviving
/// rows moved to new indices (see [`temporal`]).
pub(crate) fn row_seed(seed: u64, p: Point3) -> u64 {
    fn mix(mut h: u64) -> u64 {
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^ (h >> 31)
    }
    let xy = u64::from(p.x.to_bits()) | (u64::from(p.y.to_bits()) << 32);
    let h = mix(seed ^ 0x9E37_79B9_7F4A_7C15 ^ xy);
    mix(h.wrapping_add(u64::from(p.z.to_bits())))
}

/// Allocating convenience wrapper around [`distribute_new_points_into`].
#[cfg(test)]
pub(crate) fn distribute_new_points(n: usize, ratio: f64) -> Vec<usize> {
    let mut counts = Vec::new();
    distribute_new_points_into(n, ratio, &mut counts);
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_reaches_target() {
        let d = distribute_new_points(100, 2.0);
        assert_eq!(d.iter().sum::<usize>(), 100);
        let d = distribute_new_points(100, 2.5);
        assert_eq!(d.iter().sum::<usize>(), 150);
        let d = distribute_new_points(7, 3.3);
        assert_eq!(d.iter().sum::<usize>(), (7.0f64 * 3.3).round() as usize - 7);
    }

    #[test]
    fn distribution_handles_identity_and_empty() {
        assert_eq!(distribute_new_points(10, 1.0).iter().sum::<usize>(), 0);
        assert!(distribute_new_points(0, 4.0).is_empty());
    }

    #[test]
    fn distribution_is_balanced() {
        let d = distribute_new_points(10, 2.35);
        let min = d.iter().min().unwrap();
        let max = d.iter().max().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn distribution_into_reuses_buffer() {
        let mut counts = vec![99; 3];
        distribute_new_points_into(5, 2.0, &mut counts);
        assert_eq!(counts.len(), 5);
        assert_eq!(counts.iter().sum::<usize>(), 5);
        distribute_new_points_into(0, 2.0, &mut counts);
        assert!(counts.is_empty());
    }

    #[test]
    fn op_counts_combine() {
        let a = OpCounts {
            knn_queries: 1,
            candidates_examined: 10,
            points_generated: 5,
            reused_neighborhoods: 2,
        };
        let b = OpCounts {
            knn_queries: 2,
            candidates_examined: 20,
            points_generated: 1,
            reused_neighborhoods: 0,
        };
        let c = a.combine(b);
        assert_eq!(c.knn_queries, 3);
        assert_eq!(c.candidates_examined, 30);
        assert_eq!(c.points_generated, 6);
        assert_eq!(c.reused_neighborhoods, 2);
    }

    #[test]
    fn frame_scratch_recycles_neighborhoods() {
        let mut scratch = FrameScratch::new();
        let mut n = scratch.take_neighborhoods();
        n.push_row([1usize, 2]);
        scratch.recycle_neighborhoods(n);
        let n2 = scratch.take_neighborhoods();
        assert!(n2.is_empty(), "recycled container must come back cleared");
    }

    #[test]
    fn interpolator_objects_dispatch() {
        use volut_pointcloud::synthetic;
        let low = synthetic::sphere(200, 1.0, 3);
        let mut scratch = FrameScratch::new();
        let interpolators: Vec<Box<dyn Interpolator>> =
            vec![Box::new(NaiveInterpolator), Box::new(DilatedInterpolator)];
        for interp in &interpolators {
            let cfg = if interp.name() == "naive" {
                SrConfig::k4d1()
            } else {
                SrConfig::default()
            };
            let out = interp.interpolate(&low, &cfg, 2.0, &mut scratch).unwrap();
            assert_eq!(out.cloud.len(), 400, "{}", interp.name());
            assert_eq!(out.neighborhoods.len(), 200);
        }
    }
}

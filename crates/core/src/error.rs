//! Error type for the VoLUT core crate.

use std::fmt;

/// Errors returned by the super-resolution pipeline and its components.
#[derive(Debug)]
pub enum Error {
    /// A configuration value is outside its documented domain.
    InvalidConfig(String),
    /// The requested upsampling ratio cannot be honored.
    InvalidRatio(f64),
    /// The input cloud is too small for the requested operation.
    InsufficientPoints {
        /// Number of points required.
        required: usize,
        /// Number of points available.
        available: usize,
    },
    /// A LUT file or buffer is malformed.
    LutFormat(String),
    /// Training failed (e.g. empty training set, divergence).
    Training(String),
    /// An error bubbled up from the point-cloud substrate.
    PointCloud(volut_pointcloud::Error),
    /// An underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Error::InvalidRatio(r) => {
                write!(f, "invalid upsampling ratio {r}; must be >= 1.0 and finite")
            }
            Error::InsufficientPoints {
                required,
                available,
            } => {
                write!(f, "operation requires at least {required} points but only {available} are available")
            }
            Error::LutFormat(msg) => write!(f, "malformed lut data: {msg}"),
            Error::Training(msg) => write!(f, "training failed: {msg}"),
            Error::PointCloud(e) => write!(f, "point cloud error: {e}"),
            Error::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::PointCloud(e) => Some(e),
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<volut_pointcloud::Error> for Error {
    fn from(e: volut_pointcloud::Error) -> Self {
        Error::PointCloud(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let errs = vec![
            Error::InvalidConfig("k must be >= 1".into()),
            Error::InvalidRatio(0.5),
            Error::InsufficientPoints {
                required: 4,
                available: 1,
            },
            Error::LutFormat("bad magic".into()),
            Error::Training("empty training set".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn conversions_work() {
        let pc_err = volut_pointcloud::Error::EmptyCloud("x".into());
        let e: Error = pc_err.into();
        assert!(matches!(e, Error::PointCloud(_)));
        let e: Error = std::io::Error::other("x").into();
        assert!(matches!(e, Error::Io(_)));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Error>();
    }
}

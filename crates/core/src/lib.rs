//! # volut-core
//!
//! The paper's primary contribution: two-stage point-cloud super-resolution
//! combining **enhanced dilated interpolation** (§4.1) with **position-aware
//! LUT refinement** (§4.2), plus the neural-network training path used to
//! construct the LUT offline and the GradPU / Yuzu baselines the paper
//! compares against.
//!
//! The typical offline → online flow is:
//!
//! 1. Offline: train a small refinement MLP on (downsampled, ground-truth)
//!    frame pairs ([`nn::train`]), then distill it into a lookup table
//!    ([`lut::LutBuilder`]).
//! 2. Online: run [`pipeline::SrPipeline`] on each received low-resolution
//!    frame — dilated interpolation, colorization, then per-point LUT
//!    refinement.
//!
//! # Example
//!
//! ```
//! use volut_core::{config::SrConfig, pipeline::SrPipeline, refine::IdentityRefiner};
//! use volut_pointcloud::{synthetic, sampling, metrics};
//!
//! # fn main() -> Result<(), volut_core::Error> {
//! let ground_truth = synthetic::sphere(2_000, 1.0, 1);
//! let low = sampling::random_downsample(&ground_truth, 0.5, 2)?;
//! let pipeline = SrPipeline::new(SrConfig::default(), Box::new(IdentityRefiner));
//! let result = pipeline.upsample(&low, 2.0)?;
//! assert!(result.cloud.len() > low.len());
//! // Upsampling improves how well the reconstruction covers the ground truth.
//! let after = metrics::one_sided_chamfer(&ground_truth, &result.cloud);
//! let before = metrics::one_sided_chamfer(&ground_truth, &low);
//! assert!(after < before);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baselines;
pub mod config;
pub mod device;
pub mod encoding;
pub mod error;
pub mod interpolate;
pub mod lut;
pub mod nn;
pub mod pipeline;
pub mod refine;
pub mod registry;

pub use config::SrConfig;
pub use device::DeviceProfile;
pub use error::Error;
pub use pipeline::SrPipeline;
pub use registry::{ContentModel, ModelRegistry, SharedLut};

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, Error>;

//! Viewport visibility, used by the ViVo baseline.
//!
//! ViVo streams only the content predicted to fall inside the user's future
//! viewport. Its bandwidth savings therefore depend on the visible fraction
//! of the scene, and its quality degrades when the viewer moves faster than
//! the prediction horizon can track (prediction misses).

use crate::motion::{MotionTrace, Pose};
use serde::{Deserialize, Serialize};
use volut_pointcloud::{Point3, PointCloud};

/// A simple symmetric viewing frustum described by its half field-of-view.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Viewport {
    /// Half field-of-view angle in radians (both axes).
    pub half_fov_rad: f32,
}

impl Default for Viewport {
    fn default() -> Self {
        // ~90° full FoV, typical for VR headsets.
        Self {
            half_fov_rad: std::f32::consts::FRAC_PI_4,
        }
    }
}

impl Viewport {
    /// Returns `true` when `point` is inside the frustum of `pose`.
    pub fn contains(&self, pose: &Pose, point: Point3) -> bool {
        let to_point = point - pose.position;
        let dist = to_point.norm();
        if dist <= f32::EPSILON {
            return true;
        }
        let cos = to_point.dot(pose.direction) / dist;
        cos >= self.half_fov_rad.cos()
    }

    /// Fraction of `cloud`'s points visible from `pose` (sampled on up to
    /// `samples` points for large clouds). Returns 0 for empty clouds.
    pub fn visible_fraction(&self, pose: &Pose, cloud: &PointCloud, samples: usize) -> f64 {
        if cloud.is_empty() {
            return 0.0;
        }
        let stride = (cloud.len() / samples.max(1)).max(1);
        let mut total = 0usize;
        let mut visible = 0usize;
        for i in (0..cloud.len()).step_by(stride) {
            total += 1;
            if self.contains(pose, cloud.position(i)) {
                visible += 1;
            }
        }
        visible as f64 / total as f64
    }

    /// Selects the subset of `cloud` visible from `pose`.
    pub fn cull(&self, pose: &Pose, cloud: &PointCloud) -> PointCloud {
        let indices: Vec<usize> = (0..cloud.len())
            .filter(|&i| self.contains(pose, cloud.position(i)))
            .collect();
        cloud.select(&indices)
    }
}

/// Model of ViVo's viewport prediction behaviour over a chunk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VisibilityModel {
    /// Fraction of the scene inside a static viewport (bandwidth saving).
    pub visible_fraction: f64,
    /// Probability that the predicted viewport still covers the actual one
    /// after the prediction horizon (decreases with angular speed).
    pub prediction_hit_rate: f64,
}

impl VisibilityModel {
    /// Derives a visibility model for a motion trace: faster angular motion
    /// means lower prediction hit rate, per ViVo's own evaluation.
    pub fn for_motion(motion: &MotionTrace, prediction_horizon_s: f64) -> Self {
        let angular = motion.mean_angular_speed(20.0, Point3::ZERO);
        // Hit rate decays with how far the view can rotate within the horizon
        // relative to the viewport half-angle (45°).
        let rotation = angular * prediction_horizon_s;
        let hit = (1.0 - rotation / std::f64::consts::FRAC_PI_2).clamp(0.35, 1.0);
        Self {
            visible_fraction: 0.55,
            prediction_hit_rate: hit,
        }
    }

    /// Effective displayed quality for ViVo when it fetches the visible
    /// region at `density`: missed predictions show holes (zero quality for
    /// the missed fraction).
    pub fn effective_quality(&self, density: f64) -> f64 {
        (density.clamp(0.0, 1.0) * self.prediction_hit_rate).clamp(0.0, 1.0)
    }

    /// Bytes multiplier relative to fetching the full scene at the same
    /// density: ViVo only fetches the visible fraction.
    pub fn bytes_fraction(&self) -> f64 {
        self.visible_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volut_pointcloud::synthetic;

    fn look_at_origin() -> Pose {
        Pose {
            position: Point3::new(0.0, 0.0, 5.0),
            direction: Point3::new(0.0, 0.0, -1.0),
        }
    }

    #[test]
    fn frustum_containment() {
        let vp = Viewport::default();
        let pose = look_at_origin();
        assert!(vp.contains(&pose, Point3::ZERO));
        assert!(vp.contains(&pose, Point3::new(0.5, 0.5, 0.0)));
        // Behind the viewer.
        assert!(!vp.contains(&pose, Point3::new(0.0, 0.0, 10.0)));
        // Far off to the side.
        assert!(!vp.contains(&pose, Point3::new(50.0, 0.0, 4.0)));
        // Coincident with the viewer.
        assert!(vp.contains(&pose, pose.position));
    }

    #[test]
    fn visible_fraction_and_cull_agree() {
        let cloud = synthetic::sphere(2000, 1.0, 3);
        let vp = Viewport::default();
        let pose = look_at_origin();
        let frac = vp.visible_fraction(&pose, &cloud, 2000);
        let culled = vp.cull(&pose, &cloud);
        let cull_frac = culled.len() as f64 / cloud.len() as f64;
        assert!((frac - cull_frac).abs() < 0.05);
        assert!(
            frac > 0.5,
            "a sphere in front of the camera should be mostly visible"
        );
        assert_eq!(vp.visible_fraction(&pose, &PointCloud::new(), 10), 0.0);
    }

    use volut_pointcloud::PointCloud;

    #[test]
    fn faster_motion_lowers_hit_rate() {
        let slow = VisibilityModel::for_motion(&MotionTrace::inspect(), 1.0);
        let fast = VisibilityModel::for_motion(&MotionTrace::walk_by(), 1.0);
        assert!(fast.prediction_hit_rate <= slow.prediction_hit_rate);
        assert!(slow.prediction_hit_rate <= 1.0);
        assert!(fast.prediction_hit_rate >= 0.35);
    }

    #[test]
    fn effective_quality_and_bytes() {
        let model = VisibilityModel {
            visible_fraction: 0.55,
            prediction_hit_rate: 0.8,
        };
        assert!((model.effective_quality(1.0) - 0.8).abs() < 1e-12);
        assert!((model.effective_quality(0.5) - 0.4).abs() < 1e-12);
        assert!((model.bytes_fraction() - 0.55).abs() < 1e-12);
    }
}

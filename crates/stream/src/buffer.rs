//! Playback buffer model.
//!
//! The client downloads chunks ahead of playback into a buffer measured in
//! seconds of content. Downloading adds content; wall-clock time drains it;
//! an empty buffer during playback is a stall (rebuffering), the `S(r)` term
//! of the QoE objective.

use serde::{Deserialize, Serialize};

/// A playback buffer measured in seconds of content.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlaybackBuffer {
    level_s: f64,
    capacity_s: f64,
    total_stall_s: f64,
    started: bool,
    startup_threshold_s: f64,
}

impl PlaybackBuffer {
    /// Creates an empty buffer with the given capacity and startup threshold
    /// (playback begins once the buffer first reaches the threshold).
    pub fn new(capacity_s: f64, startup_threshold_s: f64) -> Self {
        Self {
            level_s: 0.0,
            capacity_s: capacity_s.max(0.1),
            total_stall_s: 0.0,
            started: false,
            startup_threshold_s: startup_threshold_s.clamp(0.0, capacity_s.max(0.1)),
        }
    }

    /// Current buffer level in seconds of content.
    pub fn level_s(&self) -> f64 {
        self.level_s
    }

    /// Accumulated stall (rebuffering) time, excluding initial startup delay.
    pub fn total_stall_s(&self) -> f64 {
        self.total_stall_s
    }

    /// Whether playback has started.
    pub fn playback_started(&self) -> bool {
        self.started
    }

    /// Seconds of headroom before the buffer is full.
    pub fn headroom_s(&self) -> f64 {
        (self.capacity_s - self.level_s).max(0.0)
    }

    /// Adds `content_s` seconds of downloaded content (clamped to capacity).
    pub fn add_content(&mut self, content_s: f64) {
        self.level_s = (self.level_s + content_s.max(0.0)).min(self.capacity_s);
        if !self.started && self.level_s >= self.startup_threshold_s {
            self.started = true;
        }
    }

    /// Advances wall-clock time by `dt_s` seconds while (potentially)
    /// playing back content. Returns the stall time incurred during this
    /// interval (0 when the buffer stayed non-empty or playback has not
    /// started yet).
    pub fn advance(&mut self, dt_s: f64) -> f64 {
        let dt = dt_s.max(0.0);
        if !self.started {
            // Startup delay is tracked separately by the simulator; content
            // does not drain before playback starts.
            return 0.0;
        }
        if self.level_s >= dt {
            self.level_s -= dt;
            0.0
        } else {
            let stall = dt - self.level_s;
            self.level_s = 0.0;
            self.total_stall_s += stall;
            stall
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_and_drains() {
        let mut b = PlaybackBuffer::new(10.0, 1.0);
        assert!(!b.playback_started());
        b.add_content(2.0);
        assert!(b.playback_started());
        assert_eq!(b.level_s(), 2.0);
        let stall = b.advance(1.5);
        assert_eq!(stall, 0.0);
        assert!((b.level_s() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn stall_is_accumulated() {
        let mut b = PlaybackBuffer::new(10.0, 0.5);
        b.add_content(1.0);
        let stall = b.advance(3.0);
        assert!((stall - 2.0).abs() < 1e-12);
        assert!((b.total_stall_s() - 2.0).abs() < 1e-12);
        assert_eq!(b.level_s(), 0.0);
    }

    #[test]
    fn no_drain_before_playback_starts() {
        let mut b = PlaybackBuffer::new(10.0, 5.0);
        b.add_content(1.0);
        assert!(!b.playback_started());
        assert_eq!(b.advance(2.0), 0.0);
        assert_eq!(b.level_s(), 1.0);
        assert_eq!(b.total_stall_s(), 0.0);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut b = PlaybackBuffer::new(4.0, 1.0);
        b.add_content(10.0);
        assert_eq!(b.level_s(), 4.0);
        assert_eq!(b.headroom_s(), 0.0);
        b.advance(1.0);
        assert!((b.headroom_s() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn negative_inputs_are_clamped() {
        let mut b = PlaybackBuffer::new(5.0, 0.0);
        b.add_content(-3.0);
        assert_eq!(b.level_s(), 0.0);
        assert_eq!(b.advance(-1.0), 0.0);
    }
}

//! Simulated network link driven by a bandwidth trace.

use crate::trace::NetworkTrace;

/// A simulated download link: integrates the bandwidth trace over time to
/// compute how long a transfer of a given size takes, including one RTT of
/// request latency per transfer (the DASH-like request/response exchange).
#[derive(Debug, Clone)]
pub struct SimulatedLink<'a> {
    trace: &'a NetworkTrace,
}

impl<'a> SimulatedLink<'a> {
    /// Creates a link over the given trace.
    pub fn new(trace: &'a NetworkTrace) -> Self {
        Self { trace }
    }

    /// The underlying trace.
    pub fn trace(&self) -> &NetworkTrace {
        self.trace
    }

    /// Computes the time (seconds) to download `bytes` starting at absolute
    /// time `start_s`, walking the trace second by second.
    pub fn download_time(&self, bytes: u64, start_s: f64) -> f64 {
        if bytes == 0 {
            return self.trace.rtt_s;
        }
        let mut remaining_bits = bytes as f64 * 8.0;
        let mut t = start_s + self.trace.rtt_s;
        // Finish the partial second we start in, then whole seconds.
        let mut guard = 0usize;
        loop {
            let mbps = self.trace.bandwidth_at(t).max(1e-3);
            let bits_per_sec = mbps * 1e6;
            let second_boundary = t.floor() + 1.0;
            let slice = (second_boundary - t).max(1e-6);
            let capacity = bits_per_sec * slice;
            if capacity >= remaining_bits {
                t += remaining_bits / bits_per_sec;
                break;
            }
            remaining_bits -= capacity;
            t = second_boundary;
            guard += 1;
            if guard > 100_000 {
                break;
            }
        }
        t - start_s
    }

    /// The throughput (Mbps) actually experienced by a transfer of `bytes`
    /// starting at `start_s` — the quantity the client's estimator observes.
    pub fn observed_throughput(&self, bytes: u64, start_s: f64) -> f64 {
        let dt = self.download_time(bytes, start_s);
        if dt <= 0.0 {
            return self.trace.bandwidth_at(start_s);
        }
        bytes as f64 * 8.0 / 1e6 / dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn download_time_on_stable_link() {
        let trace = NetworkTrace::stable(80.0, 60.0);
        let link = SimulatedLink::new(&trace);
        // 10 MB at 80 Mbps = 1 s plus 10 ms RTT.
        let t = link.download_time(10_000_000, 0.0);
        assert!((t - 1.01).abs() < 0.01, "got {t}");
        assert_eq!(link.download_time(0, 5.0), trace.rtt_s);
        assert!(link.trace().mean_mbps() > 0.0);
    }

    #[test]
    fn download_spanning_multiple_seconds() {
        // 20 Mbps: a 10 MB (80 Mbit) transfer takes 4 s.
        let trace = NetworkTrace::stable(20.0, 60.0);
        let link = SimulatedLink::new(&trace);
        let t = link.download_time(10_000_000, 0.3);
        assert!((t - 4.01).abs() < 0.05, "got {t}");
    }

    #[test]
    fn variable_bandwidth_is_integrated() {
        // First second 10 Mbps, second 90 Mbps: 50 Mbit needs 1 s + (40/90) s.
        let trace = NetworkTrace::from_samples("v", vec![10.0, 90.0, 90.0], 0.0).unwrap();
        let link = SimulatedLink::new(&trace);
        let t = link.download_time(6_250_000, 0.0);
        assert!((t - (1.0 + 40.0 / 90.0)).abs() < 0.02, "got {t}");
    }

    #[test]
    fn observed_throughput_reflects_bottleneck() {
        let trace = NetworkTrace::stable(40.0, 30.0);
        let link = SimulatedLink::new(&trace);
        let tp = link.observed_throughput(5_000_000, 0.0);
        assert!(tp > 30.0 && tp <= 40.5, "got {tp}");
    }
}

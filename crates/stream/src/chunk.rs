//! Chunking of volumetric videos.
//!
//! The server segments videos into fixed-length chunks (§3) and encodes each
//! chunk at the point density requested by the client's ABR controller.

use crate::video::{wire_bytes_per_point, VideoMeta};
use serde::{Deserialize, Serialize};

/// Description of one fixed-length chunk of a video.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Chunk {
    /// Zero-based chunk index.
    pub index: usize,
    /// Index of the first frame contained in the chunk.
    pub first_frame: usize,
    /// Number of frames in this chunk (the last chunk may be shorter).
    pub frame_count: usize,
    /// Playback duration of the chunk in seconds.
    pub duration_s: f64,
    /// Full-density point count per frame.
    pub points_per_frame: usize,
}

impl Chunk {
    /// Total full-density points across all frames of this chunk.
    pub fn full_points(&self) -> u64 {
        self.frame_count as u64 * self.points_per_frame as u64
    }

    /// Bytes required to transmit this chunk at the given density ratio
    /// (`0 < ratio <= 1`), using the compressed wire format
    /// ([`wire_bytes_per_point`] bytes per transmitted point).
    pub fn encoded_bytes(&self, density_ratio: f64) -> u64 {
        let ratio = density_ratio.clamp(0.0, 1.0);
        (self.full_points() as f64 * ratio * wire_bytes_per_point()).round() as u64
    }

    /// Bitrate in Mbps needed to stream this chunk at `density_ratio` in
    /// real time (i.e. within its own playback duration).
    pub fn bitrate_mbps(&self, density_ratio: f64) -> f64 {
        if self.duration_s <= 0.0 {
            return 0.0;
        }
        self.encoded_bytes(density_ratio) as f64 * 8.0 / 1e6 / self.duration_s
    }
}

/// Splits a video into fixed-length chunks of `chunk_duration_s` seconds.
///
/// The final chunk is truncated to the remaining frames. An empty vector is
/// returned for zero-length videos or non-positive durations.
pub fn chunk_video(meta: &VideoMeta, chunk_duration_s: f64) -> Vec<Chunk> {
    if meta.frame_count == 0 || chunk_duration_s <= 0.0 || meta.fps <= 0.0 {
        return Vec::new();
    }
    let frames_per_chunk = ((meta.fps * chunk_duration_s).round() as usize).max(1);
    let mut chunks = Vec::new();
    let mut first = 0usize;
    let mut index = 0usize;
    while first < meta.frame_count {
        let count = frames_per_chunk.min(meta.frame_count - first);
        chunks.push(Chunk {
            index,
            first_frame: first,
            frame_count: count,
            duration_s: count as f64 / meta.fps,
            points_per_frame: meta.points_per_frame,
        });
        first += count;
        index += 1;
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_covers_all_frames_without_overlap() {
        let meta = VideoMeta::long_dress();
        let chunks = chunk_video(&meta, 1.0);
        assert_eq!(chunks.len(), 100);
        let total: usize = chunks.iter().map(|c| c.frame_count).sum();
        assert_eq!(total, meta.frame_count);
        for w in chunks.windows(2) {
            assert_eq!(w[0].first_frame + w[0].frame_count, w[1].first_frame);
        }
    }

    #[test]
    fn last_chunk_is_truncated() {
        let meta = VideoMeta::tiny(95, 1000);
        let chunks = chunk_video(&meta, 1.0);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[3].frame_count, 5);
        assert!((chunks[3].duration_s - 5.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_inputs_yield_no_chunks() {
        assert!(chunk_video(&VideoMeta::tiny(0, 100), 1.0).is_empty());
        assert!(chunk_video(&VideoMeta::long_dress(), 0.0).is_empty());
    }

    #[test]
    fn encoded_bytes_scale_with_density() {
        let meta = VideoMeta::long_dress();
        let chunk = chunk_video(&meta, 1.0)[0];
        let full = chunk.encoded_bytes(1.0);
        let half = chunk.encoded_bytes(0.5);
        assert_eq!(
            full,
            (30.0 * 100_000.0 * wire_bytes_per_point()).round() as u64
        );
        assert!((half as f64 / full as f64 - 0.5).abs() < 1e-6);
        // Density is clamped.
        assert_eq!(chunk.encoded_bytes(2.0), full);
        assert_eq!(chunk.encoded_bytes(-1.0), 0);
    }

    #[test]
    fn bitrate_matches_compressed_estimate() {
        let meta = VideoMeta::long_dress();
        let chunk = chunk_video(&meta, 1.0)[0];
        let mbps = chunk.bitrate_mbps(1.0);
        assert!((mbps - meta.compressed_bitrate_mbps()).abs() < 1.0);
        assert!(meta.raw_bitrate_mbps() > mbps);
    }
}

//! End-to-end streaming session simulator.
//!
//! Drives one playback session chunk by chunk: the ABR controller picks a
//! `{density, SR ratio}`, the simulated link downloads the encoded chunk,
//! the client compute model charges SR time, the playback buffer drains in
//! wall-clock time, and the QoE accumulator scores the outcome. This
//! reproduces the setups behind Figures 12, 13 and 14.

use crate::abr::AbrContext;
use crate::buffer::PlaybackBuffer;
use crate::chunk::chunk_video;
use crate::link::SimulatedLink;
use crate::motion::MotionTrace;
use crate::qoe::{ChunkQoe, QoeAccumulator, QoeParams, QoeSummary};
use crate::resilience::{
    DegradationConfig, DegradationController, DegradationLevel, RobustnessStats,
};
use crate::systems::{SystemKind, SystemSpec};
use crate::trace::NetworkTrace;
use crate::video::VideoMeta;
use crate::viewport::VisibilityModel;
use crate::Result;
use serde::{Deserialize, Serialize};
use volut_core::device::{DeviceProfile, StageKind};

/// Static configuration of a streaming session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Chunk duration in seconds.
    pub chunk_duration_s: f64,
    /// Playback buffer capacity in seconds.
    pub buffer_capacity_s: f64,
    /// Startup threshold before playback begins, in seconds.
    pub startup_threshold_s: f64,
    /// QoE weights.
    pub qoe: QoeParams,
    /// Client device profile.
    pub device: DeviceProfile,
    /// Viewer motion pattern.
    pub motion: MotionTrace,
    /// Viewport-prediction horizon used by viewport-adaptive systems.
    pub prediction_horizon_s: f64,
    /// Deadline-aware graceful degradation (see [`crate::resilience`]).
    /// `None` (the default) disables the controller: every chunk runs the
    /// full pipeline exactly as before.
    pub degradation: Option<DegradationConfig>,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            chunk_duration_s: 1.0,
            buffer_capacity_s: 8.0,
            startup_threshold_s: 1.0,
            qoe: QoeParams::default(),
            device: DeviceProfile::desktop_3080ti(),
            motion: MotionTrace::orbit(),
            prediction_horizon_s: 1.0,
            degradation: None,
        }
    }
}

/// Per-chunk record of the session timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChunkRecord {
    /// Chunk index.
    pub index: usize,
    /// Density fetched from the server.
    pub fetch_density: f64,
    /// Upsampling ratio applied client-side.
    pub sr_ratio: f64,
    /// Displayed (post-SR) quality in `[0, 1]`.
    pub displayed_quality: f64,
    /// Bytes downloaded for this chunk.
    pub bytes: u64,
    /// Download time in seconds.
    pub download_s: f64,
    /// Client compute time in seconds.
    pub compute_s: f64,
    /// Stall incurred while waiting for this chunk, in seconds.
    pub stall_s: f64,
    /// Buffer level after this chunk was added.
    pub buffer_after_s: f64,
    /// Degradation level the chunk ran at (index into
    /// [`DegradationLevel::ALL`]; 0 = full pipeline).
    pub degradation_level: usize,
}

/// Outcome of one simulated session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionResult {
    /// System variant that was simulated.
    pub system: SystemKind,
    /// Video name.
    pub video: String,
    /// Network trace name.
    pub trace: String,
    /// QoE summary (Eq. 10).
    pub qoe: QoeSummary,
    /// Total bytes downloaded, including any startup model download.
    pub data_bytes: u64,
    /// Total stall time in seconds.
    pub stall_s: f64,
    /// Mean fetched density across chunks.
    pub mean_fetch_density: f64,
    /// Mean displayed (post-SR) quality across chunks.
    pub mean_displayed_quality: f64,
    /// Robustness telemetry; present when the session ran with a
    /// [`DegradationConfig`].
    pub robustness: Option<RobustnessStats>,
    /// Full per-chunk timeline.
    pub timeline: Vec<ChunkRecord>,
}

impl SessionResult {
    /// Data usage as a fraction of streaming every chunk at full density.
    pub fn data_fraction_of_full(&self, meta: &VideoMeta, chunk_duration_s: f64) -> f64 {
        let full: u64 = chunk_video(meta, chunk_duration_s)
            .iter()
            .map(|c| c.encoded_bytes(1.0))
            .sum();
        if full == 0 {
            0.0
        } else {
            self.data_bytes as f64 / full as f64
        }
    }
}

/// The streaming session simulator.
#[derive(Debug, Clone)]
pub struct StreamingSimulator {
    config: SessionConfig,
}

impl StreamingSimulator {
    /// Creates a simulator with the given session configuration.
    pub fn new(config: SessionConfig) -> Self {
        Self { config }
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Runs one session of `video` over `trace` with the given system
    /// variant, overriding the system's default compute model with one
    /// calibrated from a live [`crate::client::SrSession`] (or any other
    /// measurement source). This ties the analytic simulator to the actual
    /// batched SR engine instead of the baked-in per-point constants.
    ///
    /// # Errors
    /// Returns an error when the video produces no chunks.
    pub fn run_with_model(
        &self,
        video: &VideoMeta,
        trace: &NetworkTrace,
        system: SystemKind,
        compute: crate::client::SrComputeModel,
    ) -> Result<SessionResult> {
        let mut spec = SystemSpec::build(system, self.config.qoe);
        spec.compute = compute;
        self.run_with_spec(video, trace, spec)
    }

    /// Runs one session of `video` over `trace` with the given system variant.
    ///
    /// # Errors
    /// Returns an error when the video produces no chunks.
    pub fn run(
        &self,
        video: &VideoMeta,
        trace: &NetworkTrace,
        system: SystemKind,
    ) -> Result<SessionResult> {
        let spec = SystemSpec::build(system, self.config.qoe);
        self.run_with_spec(video, trace, spec)
    }

    fn run_with_spec(
        &self,
        video: &VideoMeta,
        trace: &NetworkTrace,
        mut spec: SystemSpec,
    ) -> Result<SessionResult> {
        let chunks = chunk_video(video, self.config.chunk_duration_s);
        if chunks.is_empty() {
            return Err(crate::Error::InvalidConfig(
                "video produced no chunks; check frame count and chunk duration".into(),
            ));
        }
        let link = SimulatedLink::new(trace);
        let mut buffer = PlaybackBuffer::new(
            self.config.buffer_capacity_s,
            self.config.startup_threshold_s,
        );
        let mut qoe = QoeAccumulator::new();
        let mut timeline = Vec::with_capacity(chunks.len());
        let mut degradation = self.config.degradation.map(DegradationController::new);

        let visibility =
            VisibilityModel::for_motion(&self.config.motion, self.config.prediction_horizon_s);

        // Session clock and counters.
        let mut now_s = 0.0f64;
        let mut data_bytes = spec.startup_download_bytes;
        if spec.startup_download_bytes > 0 {
            now_s += link.download_time(spec.startup_download_bytes, now_s);
        }
        let mut prev_quality = 0.0f64;
        let mut density_sum = 0.0f64;
        let mut quality_sum = 0.0f64;

        for chunk in &chunks {
            let throughput = spec
                .abr
                .throughput_estimate()
                .unwrap_or_else(|| trace.bandwidth_at(now_s));
            // SR compute cost for synthesizing one full chunk's worth of
            // points: measured at the smallest density / largest ratio and
            // normalized by the synthesized fraction.
            let min_density = 1.0 / spec.max_sr_ratio.max(1.0);
            let full_synth_cost = spec.compute.chunk_time_on_device(
                chunk,
                min_density,
                spec.max_sr_ratio,
                &self.config.device,
                spec.nn_inference,
            );
            let sr_seconds_per_chunk = if spec.max_sr_ratio > 1.0 {
                full_synth_cost / (1.0 - min_density)
            } else {
                0.0
            };
            let ctx = AbrContext {
                throughput_mbps: throughput,
                buffer_level_s: buffer.level_s(),
                chunk_duration_s: chunk.duration_s,
                full_chunk_bytes: chunk.encoded_bytes(1.0),
                previous_quality: prev_quality,
                max_sr_ratio: spec.max_sr_ratio,
                sr_seconds_per_chunk,
                sr_quality_factor: spec.sr_quality_factor,
            };
            let decision = spec.abr.decide(&ctx);

            // Bytes actually fetched: viewport-adaptive systems fetch only the
            // predicted-visible region.
            let bytes_fraction = if spec.viewport_adaptive {
                visibility.bytes_fraction()
            } else {
                1.0
            };
            let bytes = (chunk.encoded_bytes(decision.fetch_density) as f64 * bytes_fraction)
                .round() as u64;

            let download_s = link.download_time(bytes, now_s);
            // Deadline-aware degradation: the controller picks the cheapest
            // level that fits the chunk's compute budget (with hysteresis)
            // and the chunk's compute time and quality are charged at that
            // level. Without a controller every chunk runs the full
            // pipeline, exactly as before.
            let (level, compute_s) = match degradation.as_mut() {
                Some(ctl) => {
                    let budget_s = ctl.budget_s(chunk.duration_s);
                    let level = ctl.plan(
                        |l| {
                            l.chunk_time_on_device(
                                &spec.compute,
                                chunk,
                                decision.fetch_density,
                                decision.sr_ratio,
                                &self.config.device,
                                spec.nn_inference,
                            )
                        },
                        budget_s,
                    );
                    let compute_s = level.chunk_time_on_device(
                        &spec.compute,
                        chunk,
                        decision.fetch_density,
                        decision.sr_ratio,
                        &self.config.device,
                        spec.nn_inference,
                    );
                    ctl.observe(compute_s, budget_s);
                    (level, compute_s)
                }
                None => (
                    DegradationLevel::Full,
                    spec.compute.chunk_time_on_device(
                        chunk,
                        decision.fetch_density,
                        decision.sr_ratio,
                        &self.config.device,
                        spec.nn_inference,
                    ),
                ),
            };
            // Download and client-side SR are pipelined (the paper's client
            // overlaps fetching chunk i+1 with upsampling chunk i), plus a
            // small serial overhead for decode/protocol handling.
            let serial_overhead_s = 0.01 * self.config.device.scale_for(StageKind::SerialCpu);
            let ready_after = download_s.max(compute_s) + serial_overhead_s;

            // Wall-clock advances while the chunk is being fetched/processed;
            // playback drains the buffer during that interval.
            let stall_s = buffer.advance(ready_after);
            now_s += ready_after;
            buffer.add_content(chunk.duration_s);

            // Displayed quality: real + SR-synthesized points, with ViVo's
            // viewport-miss model applied when relevant.
            let displayed_quality = level.quality_factor()
                * if spec.viewport_adaptive {
                    visibility.effective_quality(decision.fetch_density)
                } else {
                    ctx.displayed_quality(decision.fetch_density, decision.sr_ratio)
                };

            // Feed the estimator with what the transfer actually achieved.
            let observed = link.observed_throughput(bytes.max(1), now_s - ready_after);
            spec.abr.observe_throughput(observed);

            qoe.push(ChunkQoe {
                quality: displayed_quality,
                previous_quality: prev_quality,
                stall_s,
                duration_s: chunk.duration_s,
            });
            timeline.push(ChunkRecord {
                index: chunk.index,
                fetch_density: decision.fetch_density,
                sr_ratio: decision.sr_ratio,
                displayed_quality,
                bytes,
                download_s,
                compute_s,
                stall_s,
                buffer_after_s: buffer.level_s(),
                degradation_level: level.index(),
            });

            data_bytes += bytes;
            prev_quality = displayed_quality;
            density_sum += decision.fetch_density;
            quality_sum += displayed_quality;
        }

        let n = chunks.len() as f64;
        Ok(SessionResult {
            system: spec.kind,
            video: video.name.clone(),
            trace: trace.name.clone(),
            qoe: qoe.summarize(&self.config.qoe),
            data_bytes,
            stall_s: buffer.total_stall_s(),
            mean_fetch_density: density_sum / n,
            mean_displayed_quality: quality_sum / n,
            robustness: degradation.map(|ctl| {
                let mut stats = RobustnessStats::default();
                ctl.fill_stats(&mut stats);
                stats.frames = chunks.len() as u64;
                stats
            }),
            timeline,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_video() -> VideoMeta {
        // 60 seconds of 100K-point content keeps the test fast.
        VideoMeta {
            name: "test-dress".into(),
            frame_count: 1800,
            fps: 30.0,
            points_per_frame: 100_000,
            content: crate::video::ContentKind::Humanoid,
        }
    }

    #[test]
    fn volut_beats_yuzu_and_vivo_on_stable_50mbps() {
        // The Figure 12 (stable bandwidth) ordering: VoLUT > Yuzu-SR > ViVo.
        let sim = StreamingSimulator::new(SessionConfig::default());
        let video = short_video();
        let trace = NetworkTrace::stable(50.0, 120.0);
        let volut = sim
            .run(&video, &trace, SystemKind::VolutContinuous)
            .unwrap();
        let yuzu = sim.run(&video, &trace, SystemKind::YuzuSr).unwrap();
        let vivo = sim.run(&video, &trace, SystemKind::Vivo).unwrap();
        assert!(
            volut.qoe.normalized > yuzu.qoe.normalized,
            "volut {} vs yuzu {}",
            volut.qoe.normalized,
            yuzu.qoe.normalized
        );
        assert!(
            yuzu.qoe.normalized > vivo.qoe.normalized,
            "yuzu {} vs vivo {}",
            yuzu.qoe.normalized,
            vivo.qoe.normalized
        );
    }

    #[test]
    fn volut_uses_less_data_than_raw_streaming() {
        let sim = StreamingSimulator::new(SessionConfig::default());
        let video = short_video();
        let trace = NetworkTrace::stable(100.0, 120.0);
        let volut = sim
            .run(&video, &trace, SystemKind::VolutContinuous)
            .unwrap();
        let raw_bytes: u64 = chunk_video(&video, 1.0)
            .iter()
            .map(|c| c.encoded_bytes(1.0))
            .sum();
        // The headline bandwidth claim: up to ~70% reduction vs raw streaming.
        let fraction = volut.data_bytes as f64 / raw_bytes as f64;
        assert!(
            fraction < 0.6,
            "volut should use well under 60% of raw bytes, got {fraction}"
        );
        assert!(volut.qoe.normalized > 60.0);
    }

    #[test]
    fn continuous_abr_beats_discrete_ablation_under_lte() {
        // Figure 14 / §7.5: H1 ≥ H2 > H3 in QoE, and H1 uses the least data.
        let sim = StreamingSimulator::new(SessionConfig::default());
        let video = short_video();
        let trace = NetworkTrace::synthetic_lte(40.0, 15.0, 180.0, 9);
        let h1 = sim
            .run(&video, &trace, SystemKind::VolutContinuous)
            .unwrap();
        let h2 = sim.run(&video, &trace, SystemKind::VolutDiscrete).unwrap();
        let h3 = sim.run(&video, &trace, SystemKind::DiscreteYuzuSr).unwrap();
        assert!(
            h1.qoe.normalized >= h2.qoe.normalized - 2.0,
            "h1 {} h2 {}",
            h1.qoe.normalized,
            h2.qoe.normalized
        );
        assert!(
            h2.qoe.normalized > h3.qoe.normalized,
            "h2 {} h3 {}",
            h2.qoe.normalized,
            h3.qoe.normalized
        );
        assert!(
            h1.data_bytes < h2.data_bytes,
            "h1 {} h2 {}",
            h1.data_bytes,
            h2.data_bytes
        );
    }

    #[test]
    fn session_accounting_is_consistent() {
        let sim = StreamingSimulator::new(SessionConfig::default());
        let video = VideoMeta::tiny(300, 50_000);
        let trace = NetworkTrace::stable(40.0, 60.0);
        let r = sim
            .run(&video, &trace, SystemKind::VolutContinuous)
            .unwrap();
        assert_eq!(r.timeline.len(), 10);
        let timeline_bytes: u64 = r.timeline.iter().map(|c| c.bytes).sum();
        assert!(r.data_bytes >= timeline_bytes);
        let timeline_stall: f64 = r.timeline.iter().map(|c| c.stall_s).sum();
        assert!((timeline_stall - r.stall_s).abs() < 1e-6);
        assert!(r.mean_fetch_density > 0.0 && r.mean_fetch_density <= 1.0);
        assert!(r.mean_displayed_quality >= r.mean_fetch_density - 1e-9);
        assert!(r.data_fraction_of_full(&video, 1.0) > 0.0);
    }

    #[test]
    fn empty_video_is_rejected() {
        let sim = StreamingSimulator::new(SessionConfig::default());
        let video = VideoMeta::tiny(0, 1000);
        let trace = NetworkTrace::stable(40.0, 30.0);
        assert!(sim
            .run(&video, &trace, SystemKind::VolutContinuous)
            .is_err());
    }

    #[test]
    fn degradation_disabled_leaves_sessions_unchanged() {
        let sim = StreamingSimulator::new(SessionConfig::default());
        let video = VideoMeta::tiny(300, 50_000);
        let trace = NetworkTrace::stable(40.0, 60.0);
        let r = sim
            .run(&video, &trace, SystemKind::VolutContinuous)
            .unwrap();
        assert!(r.robustness.is_none());
        assert!(r.timeline.iter().all(|c| c.degradation_level == 0));
    }

    #[test]
    fn fast_device_with_headroom_never_degrades() {
        let config = SessionConfig {
            degradation: Some(DegradationConfig::default()),
            ..SessionConfig::default()
        };
        let sim = StreamingSimulator::new(config);
        let video = short_video();
        let trace = NetworkTrace::stable(50.0, 120.0);
        let r = sim
            .run(&video, &trace, SystemKind::VolutContinuous)
            .unwrap();
        let stats = r.robustness.expect("controller was enabled");
        assert_eq!(stats.deadline_misses, 0);
        assert_eq!(
            stats.degradation_residency[0],
            r.timeline.len() as u64,
            "desktop + LUT SR has plenty of headroom: {stats:?}"
        );
        // At Full level the quality factor is 1.0, so enabling the
        // controller must not change the scored outcome.
        let baseline = StreamingSimulator::new(SessionConfig::default())
            .run(&video, &trace, SystemKind::VolutContinuous)
            .unwrap();
        assert_eq!(r.qoe.score, baseline.qoe.score);
        assert_eq!(r.data_bytes, baseline.data_bytes);
    }

    #[test]
    fn overloaded_device_degrades_instead_of_missing_deadlines() {
        // GradPU-class neural refinement on an embedded device cannot hold
        // the real-time line at Full; the controller must shed stages and
        // keep the realized miss rate at zero (predictions are exact in the
        // analytic model) while actually spending time below budget.
        let config = SessionConfig {
            device: DeviceProfile::orange_pi(),
            degradation: Some(DegradationConfig::default()),
            ..SessionConfig::default()
        };
        let sim = StreamingSimulator::new(config.clone());
        let video = short_video();
        let trace = NetworkTrace::stable(50.0, 120.0);
        let r = sim.run(&video, &trace, SystemKind::DiscreteYuzuSr).unwrap();
        let stats = r.robustness.expect("controller was enabled");
        let degraded: u64 = stats.degradation_residency[1..].iter().sum();
        assert!(degraded > 0, "expected shedding on orange-pi: {stats:?}");
        assert!(
            stats.deadline_miss_rate() <= 0.05,
            "miss rate {} stats {stats:?}",
            stats.deadline_miss_rate()
        );
        // Degraded chunks must actually be cheaper than the budget they
        // were planned against.
        for c in &r.timeline {
            assert!(
                c.compute_s <= config.chunk_duration_s + 1e-9,
                "chunk {} spent {}s against a {}s budget at level {}",
                c.index,
                c.compute_s,
                config.chunk_duration_s,
                c.degradation_level
            );
        }
        // The same session without the controller stalls on compute.
        let unmanaged = StreamingSimulator::new(SessionConfig {
            device: DeviceProfile::orange_pi(),
            ..SessionConfig::default()
        })
        .run(&video, &trace, SystemKind::DiscreteYuzuSr)
        .unwrap();
        assert!(
            r.stall_s < unmanaged.stall_s,
            "managed {} unmanaged {}",
            r.stall_s,
            unmanaged.stall_s
        );
    }

    #[test]
    fn low_bandwidth_forces_lower_density_but_sr_recovers_quality() {
        let sim = StreamingSimulator::new(SessionConfig::default());
        let video = short_video();
        let low = sim
            .run(
                &video,
                &NetworkTrace::stable(30.0, 120.0),
                SystemKind::VolutContinuous,
            )
            .unwrap();
        let high = sim
            .run(
                &video,
                &NetworkTrace::stable(150.0, 120.0),
                SystemKind::VolutContinuous,
            )
            .unwrap();
        // With SR saturating the displayed density, the controller never
        // fetches more than the higher-bandwidth session would.
        assert!(low.mean_fetch_density <= high.mean_fetch_density + 1e-9);
        assert!(low.data_bytes <= high.data_bytes);
        // SR keeps displayed quality much higher than the fetched density.
        assert!(low.mean_displayed_quality > low.mean_fetch_density + 0.2);
        // Both sessions play back without heavy stalling.
        assert!(low.qoe.normalized > 60.0);
        assert!(high.qoe.normalized > 60.0);
    }
}

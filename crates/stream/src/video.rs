//! The volumetric-video model.
//!
//! Two representations are used:
//! * [`VideoMeta`] — lightweight per-video metadata (frame count, FPS,
//!   points per frame) that the streaming simulator consumes; stand-ins for
//!   the paper's four test videos are provided as constructors.
//! * [`VolumetricVideo`] — actual frame geometry (procedurally generated)
//!   used by the SR-quality experiments (Figures 7–10).

use serde::{Deserialize, Serialize};
use volut_pointcloud::{synthetic, PointCloud};

/// Average bytes per point before compression (12 B position + 3 B color).
pub const BYTES_PER_POINT: f64 = 15.0;

/// Compression ratio achieved by the wire codec. The paper's systems ship
/// octree-compressed point clouds (GROOT-style codecs reach roughly 4×), so
/// the streaming simulator charges `BYTES_PER_POINT / WIRE_COMPRESSION`
/// bytes per transmitted point while the raw-bitrate figures quoted in the
/// introduction remain uncompressed.
pub const WIRE_COMPRESSION: f64 = 4.0;

/// Bytes per point actually charged to the network.
pub fn wire_bytes_per_point() -> f64 {
    BYTES_PER_POINT / WIRE_COMPRESSION
}

/// Lightweight metadata describing a volumetric video.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoMeta {
    /// Human-readable name.
    pub name: String,
    /// Total number of frames.
    pub frame_count: usize,
    /// Playback rate in frames per second.
    pub fps: f64,
    /// Full-density point count per frame.
    pub points_per_frame: usize,
    /// Content category used by the synthetic frame generator.
    pub content: ContentKind,
}

/// Which procedural generator stands in for the captured content.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContentKind {
    /// Single animated humanoid (Long Dress / Loot stand-in).
    Humanoid,
    /// Multi-person room scene (Haggle / Lab stand-in).
    RoomScene,
    /// Simple geometric object (unit tests / micro-benchmarks).
    Geometric,
}

impl VideoMeta {
    /// Stand-in for the "Long Dress" video: 300 frames / 10 s, ~100K points,
    /// looped ten times during evaluation like in the paper.
    pub fn long_dress() -> Self {
        Self {
            name: "long-dress".into(),
            frame_count: 3000,
            fps: 30.0,
            points_per_frame: 100_000,
            content: ContentKind::Humanoid,
        }
    }

    /// Stand-in for the "Loot" video (300 frames looped ten times).
    pub fn loot() -> Self {
        Self {
            name: "loot".into(),
            frame_count: 3000,
            fps: 30.0,
            points_per_frame: 100_000,
            content: ContentKind::Humanoid,
        }
    }

    /// Stand-in for the "Haggle" video: 7 800 frames (4.3 minutes).
    pub fn haggle() -> Self {
        Self {
            name: "haggle".into(),
            frame_count: 7800,
            fps: 30.0,
            points_per_frame: 100_000,
            content: ContentKind::RoomScene,
        }
    }

    /// Stand-in for the "Lab" video: 3 622 frames (2 minutes).
    pub fn lab() -> Self {
        Self {
            name: "lab".into(),
            frame_count: 3622,
            fps: 30.0,
            points_per_frame: 100_000,
            content: ContentKind::RoomScene,
        }
    }

    /// The four evaluation videos of §7.1.
    pub fn evaluation_set() -> Vec<VideoMeta> {
        vec![
            Self::long_dress(),
            Self::loot(),
            Self::haggle(),
            Self::lab(),
        ]
    }

    /// A scaled-down video for fast tests.
    pub fn tiny(frames: usize, points_per_frame: usize) -> Self {
        Self {
            name: "tiny".into(),
            frame_count: frames,
            fps: 30.0,
            points_per_frame,
            content: ContentKind::Geometric,
        }
    }

    /// Video duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.frame_count as f64 / self.fps
    }

    /// Bytes of one full-density frame.
    pub fn frame_bytes(&self) -> f64 {
        self.points_per_frame as f64 * BYTES_PER_POINT
    }

    /// Raw (uncompressed, full-density) bitrate in megabits per second —
    /// ~360 Mbps for 100K points at 30 FPS, matching the paper's motivation
    /// numbers for high-density content.
    pub fn raw_bitrate_mbps(&self) -> f64 {
        self.frame_bytes() * self.fps * 8.0 / 1e6
    }

    /// Full-density bitrate after wire compression — what the network
    /// actually has to carry.
    pub fn compressed_bitrate_mbps(&self) -> f64 {
        self.raw_bitrate_mbps() / WIRE_COMPRESSION
    }
}

/// A volumetric video with actual frame geometry.
#[derive(Debug, Clone)]
pub struct VolumetricVideo {
    /// Metadata for this video.
    pub meta: VideoMeta,
    frames: Vec<PointCloud>,
}

impl VolumetricVideo {
    /// Generates `frame_count` procedural frames of `points_per_frame`
    /// points for the given content kind. Frame-to-frame animation is driven
    /// by a phase parameter so consecutive frames differ smoothly.
    pub fn generate(
        meta: &VideoMeta,
        frame_count: usize,
        points_per_frame: usize,
        seed: u64,
    ) -> Self {
        let frames = (0..frame_count)
            .map(|i| {
                let phase = i as f32 * 0.21;
                match meta.content {
                    ContentKind::Humanoid => synthetic::humanoid(points_per_frame, phase, seed),
                    ContentKind::RoomScene => synthetic::room_scene(points_per_frame, phase, seed),
                    ContentKind::Geometric => {
                        synthetic::torus(points_per_frame, 1.0, 0.3, seed.wrapping_add(i as u64))
                    }
                }
            })
            .collect();
        let mut meta = meta.clone();
        meta.frame_count = frame_count;
        meta.points_per_frame = points_per_frame;
        Self { meta, frames }
    }

    /// Number of materialized frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Returns `true` when no frames are materialized.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Frame `i`, or `None` when out of range.
    pub fn frame(&self, i: usize) -> Option<&PointCloud> {
        self.frames.get(i)
    }

    /// Iterator over the frames.
    pub fn frames(&self) -> impl Iterator<Item = &PointCloud> {
        self.frames.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_videos_match_paper_description() {
        let dress = VideoMeta::long_dress();
        assert_eq!(dress.frame_count, 3000);
        assert!((dress.duration_s() - 100.0).abs() < 1e-9);
        let haggle = VideoMeta::haggle();
        assert!((haggle.duration_s() - 260.0).abs() < 1.0);
        let lab = VideoMeta::lab();
        assert!((lab.duration_s() - 120.7).abs() < 1.0);
        assert_eq!(VideoMeta::evaluation_set().len(), 4);
    }

    #[test]
    fn raw_bitrate_is_in_expected_range() {
        // ~100K points * 15 B * 30 fps * 8 = 360 Mbps, the right order of
        // magnitude versus the paper's 720 Mbps for 200K points.
        let v = VideoMeta::long_dress();
        let mbps = v.raw_bitrate_mbps();
        assert!(mbps > 300.0 && mbps < 400.0, "got {mbps}");
    }

    #[test]
    fn generated_video_has_smoothly_varying_frames() {
        let meta = VideoMeta::tiny(5, 400);
        let video = VolumetricVideo::generate(&meta, 5, 400, 1);
        assert_eq!(video.len(), 5);
        assert!(video.frame(0).is_some());
        assert!(video.frame(5).is_none());
        // Consecutive frames differ (animation) but have the same size.
        assert_ne!(video.frame(0), video.frame(1));
        assert_eq!(video.frame(0).unwrap().len(), video.frame(1).unwrap().len());
        assert_eq!(video.frames().count(), 5);
    }

    #[test]
    fn humanoid_and_room_content_generate() {
        let v = VolumetricVideo::generate(&VideoMeta::long_dress(), 2, 500, 3);
        assert_eq!(v.frame(0).unwrap().len(), 500);
        let v = VolumetricVideo::generate(&VideoMeta::haggle(), 2, 500, 3);
        assert_eq!(v.frame(0).unwrap().len(), 500);
    }
}

//! Adaptive bitrate control (§5).
//!
//! The paper's contribution here is a *continuous* MPC controller: because
//! the two-stage SR pipeline supports arbitrary upsampling ratios at stable
//! latency, the ABR may pick any `{fetch density, SR ratio}` pair instead of
//! being restricted to a few discrete levels. This module provides that
//! controller ([`ContinuousMpcAbr`]), the discrete variant used in the H2/H3
//! ablations ([`DiscreteMpcAbr`]), and two classical baselines
//! ([`BufferBasedAbr`], [`RateBasedAbr`]).

use crate::qoe::QoeParams;
use crate::throughput::HarmonicMeanEstimator;
use serde::{Deserialize, Serialize};

/// Information available to the controller when deciding the next chunk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbrContext {
    /// Conservative throughput estimate in Mbps (harmonic mean).
    pub throughput_mbps: f64,
    /// Current playback-buffer level in seconds.
    pub buffer_level_s: f64,
    /// Playback duration of the next chunk in seconds.
    pub chunk_duration_s: f64,
    /// Bytes of the next chunk at full density.
    pub full_chunk_bytes: u64,
    /// Displayed quality of the previous chunk in `[0, 1]`.
    pub previous_quality: f64,
    /// Maximum upsampling ratio the client device sustains at line rate.
    pub max_sr_ratio: f64,
    /// Client-side compute seconds needed to synthesize one full chunk's
    /// worth of points (the cost of SR when the whole displayed density is
    /// generated). The MPC scales this by the synthesized fraction of each
    /// candidate, which is how slow SR back-ends get charged for upsampling.
    pub sr_seconds_per_chunk: f64,
    /// Quality discount factor for SR-generated points in `[0, 1]`.
    pub sr_quality_factor: f64,
}

impl AbrContext {
    /// Displayed quality obtained by fetching `density` and upsampling by
    /// `sr_ratio`: real points count fully, SR-generated points count at the
    /// SR quality factor, capped at full density.
    pub fn displayed_quality(&self, density: f64, sr_ratio: f64) -> f64 {
        let density = density.clamp(0.0, 1.0);
        let displayed_density = (density * sr_ratio.max(1.0)).min(1.0);
        let synthesized = (displayed_density - density).max(0.0);
        (density + synthesized * self.sr_quality_factor).clamp(0.0, 1.0)
    }
}

/// The `{to-be-fetched point density, SR ratio}` pair selected for a chunk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AbrDecision {
    /// Fraction of full point density to download, in `(0, 1]`.
    pub fetch_density: f64,
    /// Client-side upsampling ratio (≥ 1).
    pub sr_ratio: f64,
}

impl AbrDecision {
    /// Full-density passthrough (no downsampling, no SR).
    pub fn full() -> Self {
        Self {
            fetch_density: 1.0,
            sr_ratio: 1.0,
        }
    }
}

/// An adaptive-bitrate controller.
pub trait AbrController: Send {
    /// Short name used in reports.
    fn name(&self) -> &str;

    /// Records an observed download throughput (Mbps).
    fn observe_throughput(&mut self, mbps: f64);

    /// Current throughput estimate, if any observation has been made.
    fn throughput_estimate(&self) -> Option<f64>;

    /// Decides the `{density, SR ratio}` for the next chunk.
    fn decide(&mut self, ctx: &AbrContext) -> AbrDecision;
}

/// Bandwidth-cost tie-breaker: a small per-unit-density penalty added to the
/// MPC objective so the controller does not fetch data whose quality
/// contribution is negligible once SR saturates the displayed density. This
/// is what realizes the paper's "reduce bandwidth by 70%" behaviour — the
/// controller fetches the *cheapest* density that the SR pipeline can
/// upscale to full quality, instead of greedily filling the link.
const DATA_PENALTY_PER_DENSITY: f64 = 0.25;

/// Shared MPC lookahead: evaluates the QoE (Eq. 10) of fetching the next
/// `horizon` chunks at a constant candidate density, and returns that score.
/// Download and SR compute are pipelined, so the per-chunk delay is their
/// maximum.
fn mpc_score(ctx: &AbrContext, params: &QoeParams, density: f64, horizon: usize) -> f64 {
    let density = density.clamp(1e-3, 1.0);
    let sr_ratio = (1.0 / density).min(ctx.max_sr_ratio).max(1.0);
    let quality = ctx.displayed_quality(density, sr_ratio);
    let chunk_bits = ctx.full_chunk_bytes as f64 * 8.0 * density;
    let throughput_bits = ctx.throughput_mbps.max(0.1) * 1e6;
    let download_s = chunk_bits / throughput_bits;
    // SR compute scales with how much of the displayed density is synthesized.
    let synthesized = ((density * sr_ratio).min(1.0) - density).max(0.0);
    let compute_s = ctx.sr_seconds_per_chunk * synthesized;
    let per_chunk_delay = download_s.max(compute_s);

    let mut buffer = ctx.buffer_level_s;
    let mut prev_quality = ctx.previous_quality;
    let mut score = 0.0;
    for _ in 0..horizon.max(1) {
        let stall = (per_chunk_delay - buffer).max(0.0);
        buffer = (buffer - per_chunk_delay).max(0.0) + ctx.chunk_duration_s;
        let variation = (quality - prev_quality).abs();
        let drop_extra = if quality < prev_quality {
            params.drop_penalty
        } else {
            1.0
        };
        score += params.alpha * quality * ctx.chunk_duration_s
            - params.beta * variation * drop_extra
            - params.gamma * stall
            - DATA_PENALTY_PER_DENSITY * density * ctx.chunk_duration_s;
        prev_quality = quality;
    }
    // Terminal buffer-health term: penalize candidates that drain the buffer
    // over the horizon even if no stall happens within it.
    let deficit = (ctx.buffer_level_s - buffer).max(0.0);
    score - params.gamma * 0.5 * deficit
}

/// VoLUT's continuous MPC controller: searches a fine grid of candidate
/// densities over a finite horizon and picks the QoE-maximizing one.
#[derive(Debug)]
pub struct ContinuousMpcAbr {
    estimator: HarmonicMeanEstimator,
    params: QoeParams,
    horizon: usize,
    candidates: usize,
}

impl ContinuousMpcAbr {
    /// Creates a controller with the given lookahead horizon (chunks) and
    /// number of density candidates evaluated per decision.
    pub fn new(params: QoeParams, horizon: usize, candidates: usize) -> Self {
        Self {
            estimator: HarmonicMeanEstimator::new(5),
            params,
            horizon: horizon.max(1),
            candidates: candidates.max(8),
        }
    }
}

impl Default for ContinuousMpcAbr {
    fn default() -> Self {
        Self::new(QoeParams::default(), 5, 96)
    }
}

impl AbrController for ContinuousMpcAbr {
    fn name(&self) -> &str {
        "continuous-mpc"
    }

    fn observe_throughput(&mut self, mbps: f64) {
        self.estimator.observe(mbps);
    }

    fn throughput_estimate(&self) -> Option<f64> {
        self.estimator.estimate()
    }

    fn decide(&mut self, ctx: &AbrContext) -> AbrDecision {
        let mut best_density = 1.0 / ctx.max_sr_ratio.max(1.0);
        let mut best_score = f64::NEG_INFINITY;
        let min_density = (1.0 / ctx.max_sr_ratio.max(1.0)).max(0.01);
        for i in 0..self.candidates {
            let density =
                min_density + (1.0 - min_density) * (i as f64 / (self.candidates - 1) as f64);
            let score = mpc_score(ctx, &self.params, density, self.horizon);
            if score > best_score {
                best_score = score;
                best_density = density;
            }
        }
        AbrDecision {
            fetch_density: best_density,
            sr_ratio: (1.0 / best_density).min(ctx.max_sr_ratio).max(1.0),
        }
    }
}

/// Discrete MPC controller: same lookahead, but only a fixed ladder of
/// densities is available (the H2 ablation and the Yuzu baseline).
#[derive(Debug)]
pub struct DiscreteMpcAbr {
    estimator: HarmonicMeanEstimator,
    params: QoeParams,
    horizon: usize,
    levels: Vec<f64>,
}

impl DiscreteMpcAbr {
    /// Creates a controller restricted to the given density levels.
    ///
    /// # Panics
    /// Panics when `levels` is empty.
    pub fn new(params: QoeParams, horizon: usize, mut levels: Vec<f64>) -> Self {
        assert!(!levels.is_empty(), "discrete abr needs at least one level");
        levels.sort_by(|a, b| a.total_cmp(b));
        Self {
            estimator: HarmonicMeanEstimator::new(5),
            params,
            horizon: horizon.max(1),
            levels,
        }
    }

    /// Yuzu's effective density ladder (its SR options are ×2/×3/×4 plus
    /// full density).
    pub fn yuzu_ladder(params: QoeParams) -> Self {
        Self::new(params, 5, vec![0.25, 1.0 / 3.0, 0.5, 1.0])
    }

    /// The available density levels.
    pub fn levels(&self) -> &[f64] {
        &self.levels
    }
}

impl AbrController for DiscreteMpcAbr {
    fn name(&self) -> &str {
        "discrete-mpc"
    }

    fn observe_throughput(&mut self, mbps: f64) {
        self.estimator.observe(mbps);
    }

    fn throughput_estimate(&self) -> Option<f64> {
        self.estimator.estimate()
    }

    fn decide(&mut self, ctx: &AbrContext) -> AbrDecision {
        let mut best = self.levels[0];
        let mut best_score = f64::NEG_INFINITY;
        for &density in &self.levels {
            let score = mpc_score(ctx, &self.params, density, self.horizon);
            if score > best_score {
                best_score = score;
                best = density;
            }
        }
        AbrDecision {
            fetch_density: best,
            sr_ratio: (1.0 / best).min(ctx.max_sr_ratio).max(1.0),
        }
    }
}

/// Buffer-based controller (BBA-style): density is a linear function of the
/// buffer level between a low and a high reservoir.
#[derive(Debug)]
pub struct BufferBasedAbr {
    estimator: HarmonicMeanEstimator,
    low_reservoir_s: f64,
    high_reservoir_s: f64,
}

impl BufferBasedAbr {
    /// Creates a controller with the given reservoir bounds (seconds).
    pub fn new(low_reservoir_s: f64, high_reservoir_s: f64) -> Self {
        Self {
            estimator: HarmonicMeanEstimator::new(5),
            low_reservoir_s: low_reservoir_s.max(0.0),
            high_reservoir_s: high_reservoir_s.max(low_reservoir_s + 0.1),
        }
    }
}

impl Default for BufferBasedAbr {
    fn default() -> Self {
        Self::new(2.0, 8.0)
    }
}

impl AbrController for BufferBasedAbr {
    fn name(&self) -> &str {
        "buffer-based"
    }

    fn observe_throughput(&mut self, mbps: f64) {
        self.estimator.observe(mbps);
    }

    fn throughput_estimate(&self) -> Option<f64> {
        self.estimator.estimate()
    }

    fn decide(&mut self, ctx: &AbrContext) -> AbrDecision {
        // Systems without SR can still fetch sparse content; they simply
        // display fewer points, so the floor is not tied to the SR ratio.
        let min_density = 0.05;
        let t = ((ctx.buffer_level_s - self.low_reservoir_s)
            / (self.high_reservoir_s - self.low_reservoir_s))
            .clamp(0.0, 1.0);
        let density = min_density + (1.0 - min_density) * t;
        AbrDecision {
            fetch_density: density,
            sr_ratio: (1.0 / density).min(ctx.max_sr_ratio).max(1.0),
        }
    }
}

/// Rate-based controller: fetches whatever density the estimated throughput
/// can sustain in real time (with a small safety margin).
#[derive(Debug)]
pub struct RateBasedAbr {
    estimator: HarmonicMeanEstimator,
    safety: f64,
}

impl RateBasedAbr {
    /// Creates a controller with the given safety factor in `(0, 1]`.
    pub fn new(safety: f64) -> Self {
        Self {
            estimator: HarmonicMeanEstimator::new(5),
            safety: safety.clamp(0.1, 1.0),
        }
    }
}

impl Default for RateBasedAbr {
    fn default() -> Self {
        Self::new(0.85)
    }
}

impl AbrController for RateBasedAbr {
    fn name(&self) -> &str {
        "rate-based"
    }

    fn observe_throughput(&mut self, mbps: f64) {
        self.estimator.observe(mbps);
    }

    fn throughput_estimate(&self) -> Option<f64> {
        self.estimator.estimate()
    }

    fn decide(&mut self, ctx: &AbrContext) -> AbrDecision {
        let budget_bits = ctx.throughput_mbps * 1e6 * ctx.chunk_duration_s * self.safety;
        let full_bits = ctx.full_chunk_bytes as f64 * 8.0;
        // Fetch whatever the link sustains, independent of SR capability.
        let min_density = 0.05;
        let density = (budget_bits / full_bits).clamp(min_density, 1.0);
        AbrDecision {
            fetch_density: density,
            sr_ratio: (1.0 / density).min(ctx.max_sr_ratio).max(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(throughput: f64, buffer: f64) -> AbrContext {
        AbrContext {
            throughput_mbps: throughput,
            buffer_level_s: buffer,
            chunk_duration_s: 1.0,
            full_chunk_bytes: 45_000_000, // 30 frames x 100K pts x 15 B (uncompressed)
            previous_quality: 0.8,
            max_sr_ratio: 8.0,
            // A quality factor well below 1 keeps the marginal value of real
            // points above the data penalty, so these unit tests exercise the
            // bandwidth-tracking regime of the controller.
            sr_quality_factor: 0.5,
            sr_seconds_per_chunk: 0.2,
        }
    }

    #[test]
    fn displayed_quality_model() {
        let c = ctx(50.0, 5.0);
        assert!((c.displayed_quality(1.0, 1.0) - 1.0).abs() < 1e-12);
        // 25% fetched, x4 SR -> 0.25 real + 0.75 synthesized * factor.
        let q = c.displayed_quality(0.25, 4.0);
        assert!((q - (0.25 + 0.75 * 0.5)).abs() < 1e-12);
        // SR cannot exceed full density.
        assert!(c.displayed_quality(0.5, 8.0) <= 1.0);
        assert!(c.displayed_quality(0.25, 4.0) > c.displayed_quality(0.25, 1.0));
    }

    #[test]
    fn continuous_mpc_adapts_to_bandwidth() {
        let mut abr = ContinuousMpcAbr::default();
        // Full chunk is 360 Mbit; 400 Mbps can afford full density.
        let high = abr.decide(&ctx(400.0, 6.0));
        // 30 Mbps cannot; it must downsample aggressively.
        let low = abr.decide(&ctx(30.0, 6.0));
        assert!(
            high.fetch_density > 0.9,
            "high bw density {}",
            high.fetch_density
        );
        assert!(
            low.fetch_density < 0.3,
            "low bw density {}",
            low.fetch_density
        );
        assert!(low.sr_ratio > 3.0);
        assert_eq!(abr.name(), "continuous-mpc");
    }

    #[test]
    fn continuous_mpc_uses_finer_grid_than_discrete() {
        let mut cont = ContinuousMpcAbr::default();
        let mut disc = DiscreteMpcAbr::yuzu_ladder(QoeParams::default());
        // At a bandwidth where the optimum lies between two discrete rungs,
        // the continuous controller should fetch at least as much data
        // without stalling.
        let c = ctx(160.0, 6.0);
        let cd = cont.decide(&c);
        let dd = disc.decide(&c);
        assert!(cd.fetch_density >= dd.fetch_density - 1e-9);
        assert!(disc.levels().len() >= 3);
    }

    #[test]
    fn discrete_mpc_only_returns_ladder_levels() {
        let mut abr = DiscreteMpcAbr::yuzu_ladder(QoeParams::default());
        for bw in [20.0, 60.0, 120.0, 300.0, 500.0] {
            let d = abr.decide(&ctx(bw, 5.0));
            assert!(abr
                .levels()
                .iter()
                .any(|&l| (l - d.fetch_density).abs() < 1e-9));
        }
    }

    #[test]
    fn buffer_based_scales_with_buffer() {
        let mut abr = BufferBasedAbr::default();
        let empty = abr.decide(&ctx(100.0, 0.5));
        let full = abr.decide(&ctx(100.0, 10.0));
        assert!(empty.fetch_density < full.fetch_density);
        assert!((full.fetch_density - 1.0).abs() < 1e-9);
        assert_eq!(abr.name(), "buffer-based");
    }

    #[test]
    fn rate_based_matches_throughput_budget() {
        let mut abr = RateBasedAbr::default();
        let d = abr.decide(&ctx(180.0, 5.0));
        // 180 Mbps * 1 s * 0.85 = 153 Mbit vs 360 Mbit full -> ~0.42.
        assert!(
            (d.fetch_density - 0.425).abs() < 0.05,
            "got {}",
            d.fetch_density
        );
        assert_eq!(abr.name(), "rate-based");
    }

    #[test]
    fn throughput_observations_flow_to_estimate() {
        let mut abr = ContinuousMpcAbr::default();
        assert!(abr.throughput_estimate().is_none());
        abr.observe_throughput(50.0);
        abr.observe_throughput(100.0);
        let est = abr.throughput_estimate().unwrap();
        assert!(est > 50.0 && est < 100.0);
    }

    #[test]
    fn stall_risk_lowers_density() {
        let mut abr = ContinuousMpcAbr::default();
        let healthy = abr.decide(&ctx(120.0, 8.0));
        let starving = abr.decide(&ctx(120.0, 0.2));
        assert!(starving.fetch_density <= healthy.fetch_density);
    }
}

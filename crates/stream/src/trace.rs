//! Bandwidth traces.
//!
//! The paper evaluates under (1) stable wired bandwidth of 50–100 Mbps with
//! ~10 ms RTT and (2) real LTE traces with average throughput 32.5–176.5
//! Mbps and standard deviation 13.5–26.8 Mbps. Real traces are not
//! redistributable, so [`NetworkTrace::synthetic_lte`] generates a bounded
//! AR(1) process matched to a requested mean/standard deviation, which
//! preserves the first/second moments and the temporal burstiness the ABR
//! reacts to (see DESIGN.md §2).

use crate::error::Error;
use crate::Result;
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// A piecewise-constant bandwidth trace sampled at 1-second intervals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkTrace {
    /// Human-readable name (e.g. "stable-50", "lte-32.5").
    pub name: String,
    /// Bandwidth samples in Mbps, one per second.
    samples: Vec<f64>,
    /// Round-trip time in seconds.
    pub rtt_s: f64,
}

impl NetworkTrace {
    /// A perfectly stable trace at `mbps` for `duration_s` seconds with the
    /// paper's wired RTT of 10 ms.
    pub fn stable(mbps: f64, duration_s: f64) -> Self {
        let n = duration_s.ceil().max(1.0) as usize;
        Self {
            name: format!("stable-{mbps:.0}"),
            samples: vec![mbps.max(0.1); n],
            rtt_s: 0.010,
        }
    }

    /// A synthetic LTE trace: a mean-reverting AR(1) process with the
    /// requested mean and standard deviation, clamped to stay positive,
    /// with a 50 ms RTT typical of LTE.
    pub fn synthetic_lte(mean_mbps: f64, std_mbps: f64, duration_s: f64, seed: u64) -> Self {
        let n = duration_s.ceil().max(1.0) as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let phi = 0.85f64; // temporal correlation
        let noise_std = std_mbps * (1.0 - phi * phi).sqrt();
        let mut samples = Vec::with_capacity(n);
        let mut current = mean_mbps;
        for _ in 0..n {
            let z = gaussian(&mut rng);
            current = mean_mbps + phi * (current - mean_mbps) + z * noise_std;
            samples.push(current.max(1.0));
        }
        Self {
            name: format!("lte-{mean_mbps:.1}"),
            samples,
            rtt_s: 0.050,
        }
    }

    /// The set of LTE traces used in the evaluation, spanning the paper's
    /// published range (32.5–176.5 Mbps average).
    pub fn lte_evaluation_set(duration_s: f64) -> Vec<NetworkTrace> {
        vec![
            Self::synthetic_lte(32.5, 13.5, duration_s, 101),
            Self::synthetic_lte(75.0, 20.0, duration_s, 102),
            Self::synthetic_lte(120.0, 24.0, duration_s, 103),
            Self::synthetic_lte(176.5, 26.8, duration_s, 104),
        ]
    }

    /// Builds a trace from explicit 1-second samples.
    ///
    /// # Errors
    /// Returns [`Error::Trace`] when `samples` is empty or contains
    /// non-positive values.
    pub fn from_samples(name: &str, samples: Vec<f64>, rtt_s: f64) -> Result<Self> {
        if samples.is_empty() {
            return Err(Error::Trace("trace has no samples".into()));
        }
        if samples.iter().any(|&s| s <= 0.0 || !s.is_finite()) {
            return Err(Error::Trace(
                "trace samples must be positive and finite".into(),
            ));
        }
        Ok(Self {
            name: name.to_string(),
            samples,
            rtt_s,
        })
    }

    /// Trace duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.samples.len() as f64
    }

    /// Bandwidth in Mbps at absolute time `t` (seconds). Times beyond the
    /// end of the trace wrap around, so traces can be shorter than sessions.
    pub fn bandwidth_at(&self, t: f64) -> f64 {
        let idx = (t.max(0.0) as usize) % self.samples.len();
        self.samples[idx]
    }

    /// Mean bandwidth over the whole trace.
    pub fn mean_mbps(&self) -> f64 {
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Standard deviation of the bandwidth samples.
    pub fn std_mbps(&self) -> f64 {
        let mean = self.mean_mbps();
        let var = self
            .samples
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / self.samples.len() as f64;
        var.sqrt()
    }

    /// The raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.random_range(f64::EPSILON..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_trace_is_constant() {
        let t = NetworkTrace::stable(50.0, 60.0);
        assert_eq!(t.duration_s(), 60.0);
        assert_eq!(t.bandwidth_at(0.0), 50.0);
        assert_eq!(t.bandwidth_at(59.9), 50.0);
        assert_eq!(t.bandwidth_at(1000.0), 50.0); // wraps
        assert!(t.std_mbps() < 1e-9);
        assert!((t.rtt_s - 0.01).abs() < 1e-9);
    }

    #[test]
    fn synthetic_lte_matches_requested_moments() {
        let t = NetworkTrace::synthetic_lte(32.5, 13.5, 600.0, 7);
        assert!((t.mean_mbps() - 32.5).abs() < 6.0, "mean {}", t.mean_mbps());
        assert!(
            t.std_mbps() > 5.0 && t.std_mbps() < 25.0,
            "std {}",
            t.std_mbps()
        );
        assert!(t.samples().iter().all(|&s| s >= 1.0));
        assert!((t.rtt_s - 0.05).abs() < 1e-9);
    }

    #[test]
    fn lte_set_spans_paper_range() {
        let set = NetworkTrace::lte_evaluation_set(300.0);
        assert_eq!(set.len(), 4);
        assert!(set[0].mean_mbps() < set[3].mean_mbps());
    }

    #[test]
    fn from_samples_validation() {
        assert!(NetworkTrace::from_samples("x", vec![], 0.01).is_err());
        assert!(NetworkTrace::from_samples("x", vec![10.0, -1.0], 0.01).is_err());
        assert!(NetworkTrace::from_samples("x", vec![10.0, f64::NAN], 0.01).is_err());
        let t = NetworkTrace::from_samples("x", vec![10.0, 20.0], 0.01).unwrap();
        assert_eq!(t.mean_mbps(), 15.0);
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let a = NetworkTrace::synthetic_lte(50.0, 10.0, 100.0, 1);
        let b = NetworkTrace::synthetic_lte(50.0, 10.0, 100.0, 1);
        assert_eq!(a, b);
        let c = NetworkTrace::synthetic_lte(50.0, 10.0, 100.0, 2);
        assert_ne!(a, c);
    }
}

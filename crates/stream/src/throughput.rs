//! Throughput estimation (§5.1): harmonic mean over a sliding window of
//! recent chunk downloads, the estimator the MPC controller feeds on.

use std::collections::VecDeque;

/// Harmonic-mean throughput estimator over a sliding window.
///
/// The harmonic mean is conservative: it is dominated by the slowest recent
/// samples, which protects the MPC controller against over-fetching right
/// after a bandwidth dip.
#[derive(Debug, Clone)]
pub struct HarmonicMeanEstimator {
    window: usize,
    samples: VecDeque<f64>,
}

impl HarmonicMeanEstimator {
    /// Creates an estimator with the given window size (in samples).
    ///
    /// # Panics
    /// Panics when `window` is zero.
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be at least 1");
        Self {
            window,
            samples: VecDeque::with_capacity(window),
        }
    }

    /// Records an observed throughput sample (Mbps); non-positive or
    /// non-finite samples are ignored.
    pub fn observe(&mut self, mbps: f64) {
        if mbps <= 0.0 || !mbps.is_finite() {
            return;
        }
        if self.samples.len() == self.window {
            self.samples.pop_front();
        }
        self.samples.push_back(mbps);
    }

    /// The current estimate (Mbps), or `None` before any sample arrives.
    pub fn estimate(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let denom: f64 = self.samples.iter().map(|s| 1.0 / s).sum();
        Some(self.samples.len() as f64 / denom)
    }

    /// The estimate, falling back to `default_mbps` before any observation.
    pub fn estimate_or(&self, default_mbps: f64) -> f64 {
        self.estimate().unwrap_or(default_mbps)
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when no samples have been observed yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_mean_is_conservative() {
        let mut est = HarmonicMeanEstimator::new(5);
        assert!(est.is_empty());
        assert!(est.estimate().is_none());
        for s in [100.0, 100.0, 100.0, 10.0] {
            est.observe(s);
        }
        let hm = est.estimate().unwrap();
        let arithmetic = (100.0 + 100.0 + 100.0 + 10.0) / 4.0;
        assert!(hm < arithmetic);
        assert!(hm > 10.0 && hm < 40.0, "got {hm}");
        assert_eq!(est.len(), 4);
    }

    #[test]
    fn window_slides() {
        let mut est = HarmonicMeanEstimator::new(2);
        est.observe(10.0);
        est.observe(10.0);
        est.observe(1000.0);
        est.observe(1000.0);
        assert!((est.estimate().unwrap() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_samples_are_ignored() {
        let mut est = HarmonicMeanEstimator::new(3);
        est.observe(-5.0);
        est.observe(0.0);
        est.observe(f64::NAN);
        assert!(est.estimate().is_none());
        assert_eq!(est.estimate_or(25.0), 25.0);
        est.observe(50.0);
        assert_eq!(est.estimate_or(25.0), 50.0);
    }

    #[test]
    #[should_panic(expected = "window must be at least 1")]
    fn zero_window_panics() {
        let _ = HarmonicMeanEstimator::new(0);
    }
}

//! Aggregate serving telemetry: streaming percentiles and fixed histograms.
//!
//! A multi-tenant server cannot afford to keep every frame time of every
//! session (10k sessions × thousands of frames) just to answer "what is the
//! p99?". This module provides the standard fix — a **log-linear histogram
//! sketch** ([`PercentileSketch`]) with bounded memory (~4 KiB) and bounded
//! relative error (≤ 1/64 per recorded value), plus fixed unit-interval
//! histograms ([`UnitHistogram`]) for QoE-quality and reuse-rate
//! distributions, and the [`ServerTelemetry`] roll-up the server publishes.
//!
//! Everything here is deterministic (bucketing is pure bit arithmetic on the
//! recorded values — no sampling) and single-threaded by design: sessions
//! record into plain per-tenant counters during the parallel frame step, and
//! the coordinator merges them into the aggregate between ticks. That keeps
//! the hot path free of atomics and locks while the roll-up stays exact.

use serde::Serialize;

use crate::resilience::RobustnessStats;

/// Lowest binade recorded distinctly: values below `2^MIN_EXP` (≈ 0.95 µs
/// when recording seconds) collapse into the first bucket.
const MIN_EXP: i32 = -20;
/// Highest binade recorded distinctly: values at or above `2^(MAX_EXP+1)`
/// (≈ 68 min in seconds) collapse into the last bucket.
const MAX_EXP: i32 = 11;
/// Sub-buckets per binade (top 5 mantissa bits): relative bucket width is
/// `1/32`, so the midpoint representative is within `1/64` of any member.
const SUBBUCKETS: usize = 32;
const BINADES: usize = (MAX_EXP - MIN_EXP + 1) as usize;
/// Bucket 0 holds zeros/negatives; the rest are binade × sub-bucket cells.
const BUCKETS: usize = 1 + BINADES * SUBBUCKETS;

/// Bounded-memory streaming percentile estimator over non-negative samples.
///
/// Log-linear histogram: each positive sample lands in one of 1024 buckets
/// keyed by its floating-point exponent (clamped to `[2^-20, 2^12)`) and the
/// top 5 mantissa bits. Percentiles are answered by a nearest-rank walk over
/// the cumulative counts, returning the bucket midpoint — relative error is
/// at most half the bucket width (1/64 ≈ 1.6%) for in-range samples. Merging
/// two sketches is element-wise addition, so per-shard sketches roll up
/// exactly.
#[derive(Clone)]
pub struct PercentileSketch {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for PercentileSketch {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for PercentileSketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PercentileSketch")
            .field("count", &self.total)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("mean", &self.mean())
            .finish()
    }
}

impl PercentileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self {
            counts: Box::new([0; BUCKETS]),
            total: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_of(value: f64) -> usize {
        if value <= 0.0 || !value.is_finite() {
            return 0;
        }
        let bits = value.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
        if exp < MIN_EXP {
            return 1;
        }
        if exp > MAX_EXP {
            return BUCKETS - 1;
        }
        let mantissa_top = ((bits >> 47) & 0x1f) as usize;
        1 + (exp - MIN_EXP) as usize * SUBBUCKETS + mantissa_top
    }

    /// Midpoint of a bucket's value range (its nearest-rank representative).
    fn representative(bucket: usize) -> f64 {
        if bucket == 0 {
            return 0.0;
        }
        let cell = bucket - 1;
        let exp = MIN_EXP + (cell / SUBBUCKETS) as i32;
        let sub = (cell % SUBBUCKETS) as f64;
        let base = (exp as f64).exp2();
        base * (1.0 + (sub + 0.5) / SUBBUCKETS as f64)
    }

    /// Records one sample. Zeros, negatives, and non-finite values land in
    /// the underflow bucket (reported as 0).
    pub fn record(&mut self, value: f64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.total += 1;
        if value.is_finite() {
            self.sum += value.max(0.0);
            self.min = self.min.min(value.max(0.0));
            self.max = self.max.max(value.max(0.0));
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact mean of the recorded samples (tracked outside the buckets).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Exact minimum recorded sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Nearest-rank percentile estimate for `q` in `[0, 1]`.
    ///
    /// Returns the midpoint of the bucket containing the rank-`⌈q·n⌉`
    /// sample, clamped into the exact observed `[min, max]` envelope (so
    /// `percentile(1.0)` never exceeds the true maximum).
    pub fn percentile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (bucket, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Self::representative(bucket).clamp(
                    if self.min.is_finite() { self.min } else { 0.0 },
                    if self.max.is_finite() {
                        self.max
                    } else {
                        f64::MAX
                    },
                );
            }
        }
        self.max()
    }

    /// Adds every sample of `other` into `self` (element-wise; exact).
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Number of buckets in a [`UnitHistogram`].
pub const UNIT_BUCKETS: usize = 10;

/// Fixed 10-bucket histogram over `[0, 1]` for bounded ratios (QoE quality,
/// per-frame reuse rate). Bucket `i` covers `[i/10, (i+1)/10)`; 1.0 lands in
/// the last bucket.
#[derive(Debug, Clone, Default, Serialize)]
pub struct UnitHistogram {
    counts: [u64; UNIT_BUCKETS],
    total: u64,
}

impl UnitHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value, clamped into `[0, 1]`.
    pub fn record(&mut self, value: f64) {
        let v = value.clamp(0.0, 1.0);
        let idx = ((v * UNIT_BUCKETS as f64) as usize).min(UNIT_BUCKETS - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Raw bucket counts.
    pub fn counts(&self) -> &[u64; UNIT_BUCKETS] {
        &self.counts
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Fraction of samples in bucket `i` (0 when empty).
    pub fn fraction(&self, i: usize) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[i] as f64 / self.total as f64
        }
    }

    /// Adds every sample of `other` into `self`.
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
    }
}

/// Plain per-session counters, written by exactly one worker during the
/// parallel frame step (no atomics — ownership is the synchronization) and
/// drained into [`ServerTelemetry`] by the coordinator between ticks.
#[derive(Debug, Clone, Default)]
pub struct SessionCounters {
    /// Frames this session has produced.
    pub frames: u64,
    /// Frames whose measured time exceeded the deadline.
    pub deadline_misses: u64,
    /// Wall-clock seconds of this session's most recent frame.
    pub last_frame_time_s: f64,
    /// kNN row reuse rate of the most recent frame, in `[0, 1]`.
    pub last_reuse_rate: f64,
    /// Quality factor of the degradation level served on the last frame.
    pub last_quality: f64,
    /// Total compute seconds across all frames.
    pub total_compute_s: f64,
}

/// Aggregate roll-up across every session of a server run.
#[derive(Debug, Clone, Default)]
pub struct ServerTelemetry {
    /// Per-frame wall-clock times (seconds) across all sessions.
    pub frame_time: PercentileSketch,
    /// Distribution of served quality factors (1.0 = full pipeline).
    pub quality: UnitHistogram,
    /// Distribution of per-frame kNN row reuse rates.
    pub reuse: UnitHistogram,
    /// Total frames produced across all sessions.
    pub frames_total: u64,
    /// Total deadline misses across all sessions.
    pub deadline_misses: u64,
    /// Sessions admitted over the run.
    pub sessions_admitted: u64,
    /// Sessions rejected by admission control (queue overflow).
    pub sessions_rejected: u64,
    /// Sessions that completed and were retired.
    pub sessions_retired: u64,
    /// Sessions retired early with a quarantine cause (retry exhaustion or
    /// repeated integrity failure on their ingest path).
    pub sessions_quarantined: u64,
    /// Sessions rejected specifically because overload tightened the
    /// admission queue below its configured bound (a subset of
    /// `sessions_rejected`).
    pub sessions_shed: u64,
    /// Current server overload level (0 = no overload).
    pub overload_level: u32,
    /// Times the overload controller escalated one level.
    pub overload_escalations: u64,
    /// Keyframe-resync slots granted from the per-tick budget.
    pub resync_grants: u64,
    /// Ticks a parked tenant spent waiting past the per-tick resync budget.
    pub resync_deferrals: u64,
    /// Aggregate ingest/recovery counters across all resilient-ingest
    /// tenants, merged per tick from each tenant's own monotone counters
    /// (the frame path itself stays lock-free).
    pub ingest: RobustnessStats,
}

impl ServerTelemetry {
    /// An empty roll-up.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one session's last-frame observations into the aggregate.
    /// Called by the coordinator after each tick, once per active session.
    pub fn record_frame(&mut self, counters: &SessionCounters) {
        self.frame_time.record(counters.last_frame_time_s);
        self.quality.record(counters.last_quality);
        self.reuse.record(counters.last_reuse_rate);
        self.frames_total += 1;
    }

    /// Summary snapshot for reports and the scaling bench.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            frames_total: self.frames_total,
            deadline_misses: self.deadline_misses,
            sessions_admitted: self.sessions_admitted,
            sessions_rejected: self.sessions_rejected,
            sessions_retired: self.sessions_retired,
            sessions_quarantined: self.sessions_quarantined,
            sessions_shed: self.sessions_shed,
            overload_level: self.overload_level,
            overload_escalations: self.overload_escalations,
            resync_grants: self.resync_grants,
            resync_deferrals: self.resync_deferrals,
            ingest: self.ingest,
            frame_time_p50_ms: self.frame_time.percentile(0.50) * 1e3,
            frame_time_p95_ms: self.frame_time.percentile(0.95) * 1e3,
            frame_time_p99_ms: self.frame_time.percentile(0.99) * 1e3,
            frame_time_mean_ms: self.frame_time.mean() * 1e3,
            frame_time_max_ms: self.frame_time.max() * 1e3,
            quality_histogram: self.quality.clone(),
            reuse_histogram: self.reuse.clone(),
        }
    }
}

/// Serializable summary of a [`ServerTelemetry`] roll-up.
#[derive(Debug, Clone, Serialize)]
pub struct TelemetrySnapshot {
    /// Total frames produced across all sessions.
    pub frames_total: u64,
    /// Total deadline misses across all sessions.
    pub deadline_misses: u64,
    /// Sessions admitted over the run.
    pub sessions_admitted: u64,
    /// Sessions rejected by admission control.
    pub sessions_rejected: u64,
    /// Sessions that completed and were retired.
    pub sessions_retired: u64,
    /// Sessions retired early with a quarantine cause.
    pub sessions_quarantined: u64,
    /// Sessions rejected because overload tightened the admission queue.
    pub sessions_shed: u64,
    /// Overload level at snapshot time (0 = no overload).
    pub overload_level: u32,
    /// Times the overload controller escalated one level.
    pub overload_escalations: u64,
    /// Keyframe-resync slots granted from the per-tick budget.
    pub resync_grants: u64,
    /// Ticks parked tenants spent waiting past the resync budget.
    pub resync_deferrals: u64,
    /// Aggregate ingest/recovery counters across resilient-ingest tenants.
    pub ingest: RobustnessStats,
    /// Median per-frame wall time, milliseconds.
    pub frame_time_p50_ms: f64,
    /// 95th-percentile per-frame wall time, milliseconds.
    pub frame_time_p95_ms: f64,
    /// 99th-percentile per-frame wall time, milliseconds.
    pub frame_time_p99_ms: f64,
    /// Mean per-frame wall time, milliseconds (exact).
    pub frame_time_mean_ms: f64,
    /// Maximum per-frame wall time, milliseconds (exact).
    pub frame_time_max_ms: f64,
    /// Distribution of served quality factors.
    pub quality_histogram: UnitHistogram,
    /// Distribution of per-frame reuse rates.
    pub reuse_histogram: UnitHistogram,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng, StdRng};

    /// Exact nearest-rank percentile over a sorted copy — the reference the
    /// sketch is tested against.
    fn reference_percentile(sorted: &[f64], q: f64) -> f64 {
        assert!(!sorted.is_empty());
        let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
        sorted[rank - 1]
    }

    fn check_against_reference(samples: &mut [f64], tolerance: f64) {
        let mut sketch = PercentileSketch::new();
        for &s in samples.iter() {
            sketch.record(s);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for &q in &[0.5, 0.95, 0.99] {
            let exact = reference_percentile(samples, q);
            let approx = sketch.percentile(q);
            let err = (approx - exact).abs() / exact.max(1e-12);
            assert!(
                err <= tolerance,
                "q={q}: sketch {approx} vs exact {exact} (rel err {err:.4})"
            );
        }
    }

    #[test]
    fn sketch_matches_sorted_reference_uniform() {
        for seed in [1u64, 7, 42, 1234] {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut samples: Vec<f64> = (0..10_000)
                .map(|_| rng.random_range(0.001f64..0.1))
                .collect();
            // Bucket width 1/32 ⇒ midpoint within 1/64; nearest-rank
            // boundary effects stay well inside 3%.
            check_against_reference(&mut samples, 0.03);
        }
    }

    #[test]
    fn sketch_matches_sorted_reference_heavy_tail() {
        // Log-uniform over six decades — the regime frame times actually
        // occupy when a server degrades under load.
        for seed in [3u64, 99] {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut samples: Vec<f64> = (0..10_000)
                .map(|_| 10f64.powf(rng.random_range(-6.0f64..0.0)))
                .collect();
            check_against_reference(&mut samples, 0.03);
        }
    }

    #[test]
    fn sketch_exact_stats_and_envelope() {
        let mut sketch = PercentileSketch::new();
        for v in [0.5, 0.25, 1.0, 0.75] {
            sketch.record(v);
        }
        assert_eq!(sketch.count(), 4);
        assert!((sketch.mean() - 0.625).abs() < 1e-12);
        assert_eq!(sketch.min(), 0.25);
        assert_eq!(sketch.max(), 1.0);
        // Percentiles are clamped into the exact observed range.
        assert!(sketch.percentile(1.0) <= 1.0);
        assert!(sketch.percentile(0.0) >= 0.25);
    }

    #[test]
    fn sketch_handles_degenerate_inputs() {
        let mut sketch = PercentileSketch::new();
        assert_eq!(sketch.percentile(0.5), 0.0);
        sketch.record(0.0);
        sketch.record(-1.0);
        sketch.record(f64::NAN);
        assert_eq!(sketch.count(), 3);
        assert_eq!(sketch.percentile(0.5), 0.0);
        // Out-of-range magnitudes clamp instead of panicking.
        sketch.record(1e-12);
        sketch.record(1e12);
        assert!(sketch.percentile(1.0).is_finite());
    }

    #[test]
    fn sketch_merge_equals_combined_stream() {
        let mut rng = StdRng::seed_from_u64(11);
        let a_samples: Vec<f64> = (0..500).map(|_| rng.random_range(0.001f64..1.0)).collect();
        let b_samples: Vec<f64> = (0..700).map(|_| rng.random_range(0.001f64..1.0)).collect();
        let mut a = PercentileSketch::new();
        let mut b = PercentileSketch::new();
        let mut combined = PercentileSketch::new();
        for &s in &a_samples {
            a.record(s);
            combined.record(s);
        }
        for &s in &b_samples {
            b.record(s);
            combined.record(s);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        for &q in &[0.5, 0.95, 0.99] {
            assert_eq!(a.percentile(q), combined.percentile(q));
        }
        assert_eq!(a.min(), combined.min());
        assert_eq!(a.max(), combined.max());
    }

    #[test]
    fn unit_histogram_buckets_and_fractions() {
        let mut h = UnitHistogram::new();
        for v in [0.0, 0.05, 0.95, 1.0, 2.0, -1.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.counts()[0], 3); // 0.0, 0.05, -1.0 (clamped)
        assert_eq!(h.counts()[9], 3); // 0.95, 1.0, 2.0 (clamped)
        assert!((h.fraction(0) - 0.5).abs() < 1e-12);
        let mut other = UnitHistogram::new();
        other.record(0.55);
        h.merge(&other);
        assert_eq!(h.count(), 7);
        assert_eq!(h.counts()[5], 1);
    }

    #[test]
    fn telemetry_rollup_snapshot() {
        let mut agg = ServerTelemetry::new();
        let mut c = SessionCounters::default();
        for i in 0..100 {
            c.frames += 1;
            c.last_frame_time_s = 0.001 * (1.0 + i as f64 / 100.0);
            c.last_reuse_rate = 0.9;
            c.last_quality = 1.0;
            agg.record_frame(&c);
        }
        agg.sessions_admitted = 1;
        let snap = agg.snapshot();
        assert_eq!(snap.frames_total, 100);
        assert!(snap.frame_time_p50_ms >= 1.0 && snap.frame_time_p50_ms <= 2.1);
        assert!(snap.frame_time_p99_ms >= snap.frame_time_p50_ms);
        assert_eq!(snap.quality_histogram.counts()[9], 100);
        assert_eq!(snap.reuse_histogram.counts()[9], 100);
    }
}

//! Multi-tenant SR server: thousands of streaming sessions over one shared
//! work-stealing pool and one shared immutable model registry.
//!
//! The paper's system claim is that LUT-based SR is cheap enough to scale
//! volumetric streaming past per-client GPU inference. This module is the
//! server side of that claim: [`SrServer`] drives N concurrent churned
//! [`DeltaStream`] sessions, where
//!
//! * **state is shared, never copied** — every session of a content item
//!   probes the registry's one `Arc`'d LUT through
//!   [`volut_core::registry::SharedLut`] (see [`ServerConfig::share_registry`]
//!   for the measured-baseline escape hatch), so bytes/session is dominated
//!   by per-session scratch, not by the model;
//! * **admission is controlled** — a bounded run queue in front of a fixed
//!   active-session capacity; overflow is *rejected and counted*, never
//!   silently queued without bound;
//! * **deadlines drive scheduling and degradation** — each tick plans every
//!   session's [`DegradationLevel`] against the per-frame compute budget
//!   using the deterministic analytic [`SrComputeModel`] (wall-clock feeds
//!   miss counters and telemetry only, keeping outputs bit-identical across
//!   worker counts), then dispatches the frame jobs longest-predicted-first
//!   onto the pool via `volut_pointcloud::runtime::run_order` so heavy
//!   tenants cannot convoy behind thousands of light ones;
//! * **telemetry is lock-cheap** — each tenant owns plain counters written
//!   by exactly one worker during the parallel step; the coordinator rolls
//!   them into the aggregate [`ServerTelemetry`] (frame-time p50/p95/p99,
//!   QoE distribution, reuse-rate histogram, ingest/recovery stats)
//!   between ticks;
//! * **ingest is a real protocol boundary** — an [`IngestSource`] per
//!   tenant feeds frames either from the local generator or through the
//!   resilient delta protocol (a retention-bounded
//!   [`DeltaServer`] origin behind a seeded
//!   faulty link, recovered by the splice → retransmit → keyframe ladder
//!   *inside* the tick loop). Recovery time charges against the frame
//!   deadline and QoE; hopeless tenants are quarantined with a typed
//!   [`QuarantineCause`]; keyframe resyncs queue against a per-tick budget
//!   (recovery-storm control); sustained degradation pressure sheds
//!   admissions and raises a server-wide degradation floor
//!   ([`OverloadPolicy`]). Faults stay per-tenant: a poisoned or dead link
//!   never changes a neighbor's digest or QoE.
//!
//! Determinism contract: given the same specs and seeds, per-session output
//! digests and aggregate QoE are identical across `VOLUT_WORKERS` counts
//! and across admission orderings — pinned by `tests/property_server.rs`.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;
use volut_core::registry::{ContentModel, ModelRegistry};
use volut_core::SrPipeline;
use volut_pointcloud::synthetic::{self, DeltaStream, DeltaStreamConfig};
use volut_pointcloud::{runtime, Color, Point3, PointCloud};

use crate::client::{SrComputeModel, SrSession};
use crate::faults::{FaultConfig, OwnedFaultyLink};
use crate::qoe::{ChunkQoe, QoeAccumulator, QoeParams, QoeSummary};
use crate::resilience::{
    DegradationConfig, DegradationController, DegradationLevel, DeltaServer, ResilientReceiver,
    RetentionPolicy, RetryPolicy, RobustnessStats,
};
use crate::telemetry::{ServerTelemetry, SessionCounters, TelemetrySnapshot};
use crate::trace::NetworkTrace;

/// Server-wide configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum concurrently active sessions; admission beyond this waits in
    /// the run queue.
    pub capacity: usize,
    /// Bound of the run queue; [`SrServer::enqueue`] beyond it is rejected
    /// and counted.
    pub queue_limit: usize,
    /// Playback interval of one frame (the QoE chunk duration), seconds.
    pub frame_interval_s: f64,
    /// Per-frame compute deadline (the degradation planning budget),
    /// seconds.
    pub deadline_s: f64,
    /// Upsampling ratio requested by every session.
    pub ratio: f64,
    /// Degradation hysteresis; `None` pins every session to
    /// [`DegradationLevel::Full`].
    pub degradation: Option<DegradationConfig>,
    /// Deterministic analytic model used for deadline planning (never
    /// wall-clock — see the module docs).
    pub planning_model: SrComputeModel,
    /// `true` (default): sessions probe the registry's shared table.
    /// `false`: every session deep-copies its content model's LUT — the
    /// pre-registry behavior, kept as the measured bytes/session baseline
    /// for the `server_scaling` bench.
    pub share_registry: bool,
    /// Keyframe-resync slots granted per tick across all resilient-ingest
    /// tenants (recovery-storm control): tenants needing a full resync
    /// park in a deterministic queue and at most this many are released
    /// each tick, so a correlated burst cannot trigger a thundering herd
    /// of cold recomputes. Cold starts are exempt.
    pub resync_budget_per_tick: usize,
    /// Overload shedding policy; `None` (default) disables server-level
    /// overload control entirely.
    pub overload: Option<OverloadPolicy>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            capacity: 1024,
            queue_limit: 4096,
            frame_interval_s: 1.0 / 30.0,
            deadline_s: 1.0 / 30.0,
            ratio: 2.0,
            degradation: Some(DegradationConfig::default()),
            planning_model: SrComputeModel::volut_lut(),
            share_registry: true,
            resync_budget_per_tick: 8,
            overload: None,
        }
    }
}

/// Overload shedding policy: sustained degradation pressure tightens
/// admission and escalates a server-wide degradation floor, one level per
/// escalation. The pressure signal is the fraction of active tenants whose
/// *planned* level (from the deterministic analytic model, before any
/// floor) sits below [`DegradationLevel::Full`] — never wall-clock — so
/// overload decisions replay identically across worker counts and
/// admission orderings.
#[derive(Debug, Clone, Serialize)]
pub struct OverloadPolicy {
    /// Pressure at or above this fraction counts the tick as overloaded.
    pub pressure_threshold: f64,
    /// Consecutive overloaded ticks before escalating one level.
    pub escalate_after: u32,
    /// Consecutive calm ticks before relaxing one level.
    pub relax_after: u32,
    /// Maximum overload level. Each level halves the effective admission
    /// queue and active capacity and raises the degradation floor one
    /// rung.
    pub max_level: u32,
}

impl Default for OverloadPolicy {
    fn default() -> Self {
        Self {
            pressure_threshold: 0.5,
            escalate_after: 3,
            relax_after: 6,
            max_level: 3,
        }
    }
}

/// Where a tenant's frames come from — the server's ingest boundary.
#[derive(Debug, Clone, Default)]
pub enum IngestSource {
    /// Frames come straight from the local generator with no transport in
    /// between (the pre-ingest-boundary behavior): no link, no faults, no
    /// ingest cost.
    #[default]
    Local,
    /// Frames are fetched through the resilient delta protocol — a
    /// [`DeltaServer`] origin behind a seeded faulty link, recovered by
    /// the full splice → retransmit → keyframe ladder inside the tick
    /// loop. Recovery time is charged against the tenant's frame deadline
    /// and QoE.
    Resilient(IngestConfig),
}

// The serde shim's derive handles unit-variant enums only; render the
// data-carrying variant by hand as a one-entry tagged map.
impl Serialize for IngestSource {
    fn to_value(&self) -> serde::Value {
        match self {
            IngestSource::Local => serde::Value::Str("local".to_string()),
            IngestSource::Resilient(cfg) => {
                serde::Value::Map(vec![("resilient".to_string(), cfg.to_value())])
            }
        }
    }
}

/// Configuration of one tenant's resilient ingest path.
#[derive(Debug, Clone, Serialize)]
pub struct IngestConfig {
    /// Fault profile of the tenant's ingest link.
    pub faults: FaultConfig,
    /// Recovery-ladder retry policy (set [`RetryPolicy::jitter`] non-zero
    /// to de-correlate co-tenant retransmits after a shared burst).
    pub retry: RetryPolicy,
    /// Ingest link bandwidth, Mbps (modeled as a stable trace).
    pub link_mbps: f64,
    /// `Some(seed)`: every tenant with the same value draws the identical
    /// fault schedule — the correlated-burst scenario where one backbone
    /// event hits many tenants at once. `None` (default): the schedule is
    /// seeded per tenant from the session seed, independent of admission
    /// order.
    pub shared_fault_seed: Option<u64>,
    /// Retention bound of the tenant's origin history; gap requests behind
    /// the window fall back to a keyframe resync.
    pub retention: RetentionPolicy,
    /// Consecutive ticks of full recovery-ladder exhaustion before the
    /// tenant is quarantined with [`QuarantineCause::RetryExhausted`].
    pub quarantine_after_exhaustions: u32,
    /// Consecutive delivered frames whose recovery hit integrity failures
    /// (checksum/digest rejections or detected poisonings) before the
    /// tenant is quarantined with [`QuarantineCause::IntegrityFailure`].
    pub quarantine_after_integrity: u32,
}

impl Default for IngestConfig {
    fn default() -> Self {
        Self {
            faults: FaultConfig::lossless(),
            retry: RetryPolicy::default(),
            link_mbps: 80.0,
            shared_fault_seed: None,
            retention: RetentionPolicy::last_frames(32),
            quarantine_after_exhaustions: 2,
            quarantine_after_integrity: 8,
        }
    }
}

/// Why a tenant was retired before completing its frames. A quarantined
/// tenant is counted, reported, and never served again — and never takes
/// the tick (or any co-tenant) down with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum QuarantineCause {
    /// The recovery ladder exhausted every rung and retry for several
    /// consecutive ticks: the ingest link is effectively down.
    RetryExhausted,
    /// Recovery kept hitting integrity failures (mangled payloads,
    /// digest mismatches, detected poisonings) past the configured
    /// threshold.
    IntegrityFailure,
}

/// One session request: which content to stream and how the synthetic
/// client behaves.
#[derive(Debug, Clone, Serialize)]
pub struct SessionSpec {
    /// Registry name of the content item to serve.
    pub content: String,
    /// Seed of the session's synthetic base cloud and churn stream.
    pub seed: u64,
    /// Points per delivered (low-resolution) frame.
    pub points: usize,
    /// Fraction of each frame's points churned per frame.
    pub churn: f64,
    /// Session length in frames (clamped to ≥ 1 at admission).
    pub frames: u64,
    /// How the tenant is fed frames (local generator or resilient delta
    /// protocol over a faulty link).
    pub ingest: IngestSource,
}

/// Per-tenant state of the resilient ingest path: a paced origin behind a
/// seeded faulty link plus the receiver running the recovery ladder. Lives
/// inside the tenant, so the parallel frame step still hands each worker
/// one exclusive `&mut` — ingest never adds locks to the frame path.
struct ResilientIngest {
    /// The tenant's origin: frames are pushed as the client consumes them
    /// (paced, so the served sequence is identical to a clean run's) and
    /// retention-bounded.
    delta_server: DeltaServer,
    receiver: ResilientReceiver,
    link: OwnedFaultyLink,
    config: IngestConfig,
    /// Next sequence number to fetch.
    next_seq: u64,
    /// Parked awaiting a keyframe-resync grant (recovery-storm control).
    parked: bool,
    /// Grant from the coordinator's per-tick resync budget.
    granted: bool,
    /// Tick at which the tenant parked (primary grant-queue key).
    park_tick: u64,
    /// Consecutive ticks the whole recovery ladder was exhausted.
    transport_streak: u32,
    /// Consecutive delivered frames whose recovery hit integrity failures.
    integrity_streak: u32,
    /// `integrity_failures + poisonings_detected` at the last commit.
    prev_integrity: u64,
}

/// Per-session serving state. All mutable state lives here, so the parallel
/// frame step hands each worker exclusive `&mut` access to disjoint tenants.
struct Tenant {
    id: u64,
    spec: SessionSpec,
    session: SrSession,
    /// Refinement-free pipeline sharing the session's scratch for degraded
    /// frames (temporal caches are keyed per pipeline/ratio, so swapping is
    /// bit-safe — see [`SrSession::upsample_frame_via`]).
    degraded: SrPipeline,
    stream: DeltaStream,
    /// `Some` when the tenant is fed through the resilient delta protocol.
    ingest: Option<ResilientIngest>,
    controller: Option<DegradationController>,
    /// Level planned for the current tick (written by the coordinator).
    planned: DegradationLevel,
    remaining: u64,
    /// Whether the session's temporal cache chain matches the stream's
    /// previous frame (false after Passthrough frames, which skip the
    /// engine entirely); gates *declared* deltas only — the engine's own
    /// diff fallback keeps undeclared frames correct regardless.
    synced: bool,
    started: bool,
    counters: SessionCounters,
    qoe: QoeAccumulator,
    prev_quality: Option<f64>,
    /// FNV-1a fold of every frame's output geometry digest — the cheap
    /// cross-run bit-identity witness.
    digest: u64,
    frame_errors: u64,
    prev_rows_reused: u64,
    prev_rows_recomputed: u64,
    /// Simulated ingest seconds of the most recent frame (link + backoff +
    /// timeouts) — deterministic, charged into next tick's planning.
    last_ingest_s: f64,
    /// Stall seconds accrued on frameless ticks (parked / exhausted),
    /// charged into the next delivered frame's QoE.
    pending_stall_s: f64,
    /// Quarantine verdict; set inside the parallel step, acted on by the
    /// coordinator at retirement.
    failure: Option<QuarantineCause>,
    /// Whether this tick produced a frame (gates the telemetry rollup).
    stepped: bool,
    /// Ingest stats already rolled into the aggregate telemetry.
    rolled_stats: RobustnessStats,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv1a(mut acc: u64, value: u64) -> u64 {
    for byte in value.to_le_bytes() {
        acc ^= u64::from(byte);
        acc = acc.wrapping_mul(FNV_PRIME);
    }
    acc
}

fn cloud_bytes(cloud: &PointCloud) -> usize {
    cloud.len() * std::mem::size_of::<Point3>()
        + cloud
            .colors()
            .map_or(0, |c: &[Color]| std::mem::size_of_val(c))
}

impl Tenant {
    fn admit(
        id: u64,
        spec: SessionSpec,
        model: &Arc<ContentModel>,
        config: &ServerConfig,
    ) -> volut_core::Result<Self> {
        let session = if config.share_registry {
            SrSession::from_model(model)?
        } else {
            SrSession::new(model.cloned_pipeline()?)
        };
        let degraded = model.identity_pipeline();
        let base = synthetic::sphere(spec.points.max(16), 1.0, spec.seed);
        let spacing = base.mean_spacing(64).unwrap_or(0.01);
        let stream = DeltaStream::new(
            base,
            DeltaStreamConfig {
                churn: spec.churn,
                drift: spacing * 4.0,
                jitter: spacing * 0.5,
                seed: spec.seed,
            },
        );
        let remaining = spec.frames.max(1);
        let ingest = match &spec.ingest {
            IngestSource::Local => None,
            IngestSource::Resilient(cfg) => {
                let trace = Arc::new(NetworkTrace::stable(cfg.link_mbps.max(0.1), 60.0));
                // Seeds derive from the session seed, never the admission
                // id, so schedules replay across admission orderings; a
                // shared seed reproduces one backbone event across tenants.
                let fault_seed = cfg.shared_fault_seed.unwrap_or(spec.seed);
                Some(ResilientIngest {
                    delta_server: DeltaServer::with_retention(Vec::new(), cfg.retention),
                    receiver: ResilientReceiver::new(cfg.retry, spec.seed ^ 0x6a09_e667_f3bc_c908),
                    link: OwnedFaultyLink::new(trace, cfg.faults.clone(), fault_seed),
                    config: cfg.clone(),
                    next_seq: 0,
                    parked: false,
                    granted: false,
                    park_tick: 0,
                    transport_streak: 0,
                    integrity_streak: 0,
                    prev_integrity: 0,
                })
            }
        };
        Ok(Self {
            id,
            spec,
            session,
            degraded,
            stream,
            ingest,
            controller: config.degradation.map(DegradationController::new),
            planned: DegradationLevel::Full,
            remaining,
            synced: false,
            started: false,
            counters: SessionCounters::default(),
            qoe: QoeAccumulator::new(),
            prev_quality: None,
            digest: FNV_OFFSET,
            frame_errors: 0,
            prev_rows_reused: 0,
            prev_rows_recomputed: 0,
            last_ingest_s: 0.0,
            pending_stall_s: 0.0,
            failure: None,
            stepped: false,
            rolled_stats: RobustnessStats::default(),
        })
    }

    /// Predicted compute seconds of the next frame at `level` under the
    /// analytic planning model (deterministic by construction).
    fn predict(&self, level: DegradationLevel, config: &ServerConfig) -> f64 {
        level.adjusted_model(&config.planning_model).frame_time_s(
            self.stream.frame().len() as f64,
            level.effective_ratio(config.ratio),
        )
    }

    /// Runs one frame at the planned level. Called from the parallel step
    /// with exclusive access; everything observable in the output digest
    /// and QoE depends only on the session's own seed, plan, and simulated
    /// ingest schedule — never on wall-clock or worker interleaving.
    ///
    /// A resilient-ingest tenant first pulls the frame through the recovery
    /// ladder. Three frameless outcomes exist: the tenant is parked
    /// awaiting a resync grant (pure stall), the ladder exhausted every
    /// rung (stall, possibly quarantine), or the tenant was already
    /// quarantined. Frameless ticks charge stall time into the next
    /// delivered frame's QoE and leave the digest/frame counters untouched,
    /// so the delivered sequence stays bit-identical to a clean run's.
    fn step(&mut self, config: &ServerConfig, tick: u64) {
        self.stepped = false;
        if self.failure.is_some() {
            return;
        }
        let started = Instant::now();
        let level = self.planned;
        let (frame, delta, ingest_s, recovered) = match &mut self.ingest {
            None => {
                let (frame, delta) = if self.started {
                    let delta = self.stream.advance();
                    (self.stream.frame().clone(), Some(delta))
                } else {
                    self.started = true;
                    (self.stream.frame().clone(), None)
                };
                (frame, delta, 0.0, None)
            }
            Some(ingest) => {
                if ingest.parked && !ingest.granted {
                    // Waiting in the resync queue: the whole interval
                    // stalls, no frame is produced.
                    self.pending_stall_s += config.frame_interval_s;
                    return;
                }
                // Pace the origin: produce exactly the frames the client
                // consumes, so the served sequence — and therefore the
                // digest — is identical to a clean-link run's.
                while (ingest.delta_server.frame_count() as u64) <= ingest.next_seq {
                    if self.started {
                        let d = self.stream.advance();
                        ingest
                            .delta_server
                            .push_frame_with_delta(self.stream.frame().clone(), d);
                    } else {
                        self.started = true;
                        ingest.delta_server.push_frame(self.stream.frame().clone());
                    }
                }
                let clock0 = ingest.receiver.clock_s();
                match ingest.receiver.recover(
                    &ingest.delta_server,
                    &mut ingest.link,
                    ingest.next_seq,
                ) {
                    Ok(rec) => {
                        let resync = rec.delta.is_none() && ingest.receiver.last_seq().is_some();
                        if resync && !ingest.granted {
                            // A full keyframe resync costs a cold recompute;
                            // park until the coordinator grants a slot from
                            // the per-tick budget (recovery-storm control).
                            // Cold starts never reach here (`last_seq` is
                            // still `None`), so startup is budget-exempt.
                            ingest.parked = true;
                            ingest.park_tick = tick;
                            self.pending_stall_s += config.frame_interval_s;
                            return;
                        }
                        if resync {
                            ingest.parked = false;
                            ingest.granted = false;
                        }
                        ingest.transport_streak = 0;
                        let ingest_s = ingest.receiver.clock_s() - clock0;
                        (rec.cloud(), rec.delta.clone(), ingest_s, Some(rec))
                    }
                    Err(_) => {
                        // Every rung and retry failed: stall the interval
                        // and quarantine once the streak is long enough.
                        // The tick — and every co-tenant — keeps going.
                        ingest.transport_streak += 1;
                        self.pending_stall_s += config.frame_interval_s;
                        if ingest.transport_streak
                            >= ingest.config.quarantine_after_exhaustions.max(1)
                        {
                            self.failure = Some(QuarantineCause::RetryExhausted);
                        }
                        return;
                    }
                }
            }
        };
        // A keyframe resync (or cold start) recomputes cold: flush the
        // cross-frame caches so the output depends only on this frame's
        // own bits — the invariant that makes recovery bit-identical.
        if recovered.is_some() && delta.is_none() {
            self.session.flush_caches();
            self.synced = false;
        }
        let declared = if self.synced { delta } else { None };
        let declared_was_some = declared.is_some();
        let ratio = level.effective_ratio(config.ratio);
        let outcome = match level {
            DegradationLevel::Passthrough => None,
            DegradationLevel::Full => Some(match declared {
                Some(d) => self.session.upsample_frame_delta(&frame, ratio, d),
                None => self.session.upsample_frame(&frame, ratio),
            }),
            _ => Some(
                self.session
                    .upsample_frame_via(&self.degraded, &frame, ratio, declared),
            ),
        };
        let output_digest = match outcome {
            None => {
                // Passthrough: the received points are served untouched and
                // the engine never sees the frame, so the session's cached
                // previous frame goes stale.
                self.synced = false;
                frame.geometry_digest()
            }
            Some(Ok(result)) => {
                self.synced = true;
                result.cloud.geometry_digest()
            }
            Some(Err(_)) => {
                // Degenerate frame (e.g. churned below the neighborhood
                // minimum): serve the input untouched, count it, keep going.
                self.frame_errors += 1;
                self.synced = false;
                frame.geometry_digest()
            }
        };
        self.digest = fnv1a(self.digest, self.counters.frames);
        self.digest = fnv1a(self.digest, output_digest);
        self.digest = fnv1a(self.digest, frame.len() as u64);

        if let (Some(rec), Some(ingest)) = (recovered, &mut self.ingest) {
            // The engine verifies every declared delta against its cached
            // state; a rejection is an attempted cache poisoning — count it
            // and flush so the next frame recomputes cold (the served frame
            // itself is already correct via the engine's own diff fallback).
            if declared_was_some && self.session.last_delta_error().is_some() {
                ingest.receiver.note_poisoning();
                self.session.flush_caches();
                self.synced = false;
            }
            ingest.receiver.commit(rec, ingest.next_seq);
            ingest.next_seq += 1;
            let stats = ingest.receiver.stats();
            let integrity = stats.integrity_failures + stats.poisonings_detected;
            if integrity > ingest.prev_integrity {
                ingest.integrity_streak += 1;
                if ingest.integrity_streak >= ingest.config.quarantine_after_integrity.max(1) {
                    self.failure = Some(QuarantineCause::IntegrityFailure);
                }
            } else {
                ingest.integrity_streak = 0;
            }
            ingest.prev_integrity = integrity;
        }

        let elapsed = started.elapsed().as_secs_f64();
        let quality = level.quality_factor();
        self.counters.frames += 1;
        self.counters.last_frame_time_s = elapsed;
        self.counters.last_quality = quality;
        self.counters.total_compute_s += elapsed;
        // Ingest recovery time (simulated link + backoff seconds —
        // deterministic) is charged against the frame deadline alongside
        // the measured compute, so degradation and QoE see real fault cost.
        if elapsed + ingest_s > config.deadline_s {
            self.counters.deadline_misses += 1;
        }
        if let Some(controller) = &mut self.controller {
            controller.observe(elapsed + ingest_s, config.deadline_s);
        }
        let t = self.session.temporal_stats();
        let frame_reused = t.rows_reused - self.prev_rows_reused;
        let frame_recomputed = t.rows_recomputed - self.prev_rows_recomputed;
        self.prev_rows_reused = t.rows_reused;
        self.prev_rows_recomputed = t.rows_recomputed;
        let rows = frame_reused + frame_recomputed;
        self.counters.last_reuse_rate = if rows == 0 {
            0.0
        } else {
            frame_reused as f64 / rows as f64
        };
        // Stall = everything accrued while frameless (parked / exhausted
        // intervals) plus the part of this frame's recovery that overran
        // the playback interval.
        let stall_s = self.pending_stall_s + (ingest_s - config.frame_interval_s).max(0.0);
        self.pending_stall_s = 0.0;
        self.qoe.push(ChunkQoe {
            quality,
            previous_quality: self.prev_quality.unwrap_or(quality),
            stall_s,
            duration_s: config.frame_interval_s,
        });
        self.prev_quality = Some(quality);
        self.last_ingest_s = ingest_s;
        self.stepped = true;
        self.remaining -= 1;
    }

    fn memory_bytes(&self, config: &ServerConfig) -> usize {
        let table = if config.share_registry {
            0 // counted once, registry-side
        } else {
            self.session.pipeline().refiner_memory_bytes()
        };
        let retained = self
            .ingest
            .as_ref()
            .map_or(0, |i| i.delta_server.retained_bytes() as usize);
        std::mem::size_of::<Self>()
            + self.session.scratch().reserved_bytes()
            + cloud_bytes(self.stream.frame())
            + table
            + retained
    }
}

/// Final report of one completed session.
#[derive(Debug, Clone, Serialize)]
pub struct SessionReport {
    /// Admission-order id.
    pub id: u64,
    /// Content item served.
    pub content: String,
    /// Session seed.
    pub seed: u64,
    /// Frames produced.
    pub frames: u64,
    /// Frames whose measured compute exceeded the deadline.
    pub deadline_misses: u64,
    /// Frames that hit an engine error and were served passthrough.
    pub frame_errors: u64,
    /// Session QoE summary (deterministic: built from planned levels, not
    /// wall-clock).
    pub qoe: QoeSummary,
    /// FNV-1a fold of per-frame output digests — compare across runs to
    /// check bit-identity.
    pub digest: u64,
    /// Frames spent at each degradation level, `Full` first.
    pub residency: [u64; 5],
    /// `Some` when the session was quarantined before completing its
    /// frames; the typed cause of retirement.
    pub failure: Option<QuarantineCause>,
    /// Final recovery-ladder stats of a resilient-ingest session (`None`
    /// for local ingest).
    pub ingest: Option<RobustnessStats>,
}

/// Memory accounting of a running server (see the `server_scaling` bench).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ServerMemoryStats {
    /// Active sessions measured.
    pub sessions: usize,
    /// Bytes held once for all sessions (registry tables + networks).
    pub registry_bytes: usize,
    /// Total bytes across per-session state (scratch arenas, frame clouds,
    /// and — in the cloned baseline — per-session table copies).
    pub session_bytes_total: usize,
    /// `session_bytes_total / sessions` (0 when idle).
    pub bytes_per_session: f64,
}

/// Aggregate report of a full [`SrServer::run`].
#[derive(Debug, Clone, Serialize)]
pub struct ServerReport {
    /// Aggregate telemetry snapshot (percentiles, histograms, counters).
    pub telemetry: TelemetrySnapshot,
    /// Total frames produced per wall-clock second across all sessions.
    pub aggregate_fps: f64,
    /// Wall-clock seconds of the whole run.
    pub wall_s: f64,
    /// Frames served passthrough due to engine errors, across all sessions.
    pub frame_errors: u64,
    /// Per-session reports, admission order.
    pub sessions: Vec<SessionReport>,
}

/// The multi-tenant serving harness. See the module docs for the design.
pub struct SrServer {
    registry: Arc<ModelRegistry>,
    config: ServerConfig,
    queue: VecDeque<SessionSpec>,
    tenants: Vec<Tenant>,
    telemetry: ServerTelemetry,
    finished: Vec<SessionReport>,
    next_id: u64,
    order: Vec<u32>,
    /// Monotonic tick counter (grant-queue ordering key).
    ticks: u64,
    /// Current overload level (0 = no shedding).
    overload_level: u32,
    /// Consecutive overloaded ticks (escalation streak).
    overload_pressured: u32,
    /// Consecutive calm ticks (relaxation streak).
    overload_calm: u32,
}

/// Moves a raw tenant-slice pointer into the parallel frame step. Safety
/// rests on `run_order` visiting each index of a permutation exactly once,
/// so no two workers ever hold `&mut` to the same tenant.
#[derive(Clone, Copy)]
struct TenantsPtr(*mut Tenant);
unsafe impl Send for TenantsPtr {}
unsafe impl Sync for TenantsPtr {}

impl TenantsPtr {
    /// # Safety
    /// The caller must guarantee no other live reference to tenant `ix`
    /// (here: `run_order` over a permutation visits each index once).
    #[allow(clippy::mut_from_ref)]
    unsafe fn tenant(&self, ix: u32) -> &mut Tenant {
        &mut *self.0.add(ix as usize)
    }
}

impl SrServer {
    /// Creates a server over a published registry.
    pub fn new(registry: Arc<ModelRegistry>, config: ServerConfig) -> Self {
        Self {
            registry,
            config,
            queue: VecDeque::new(),
            tenants: Vec::new(),
            telemetry: ServerTelemetry::new(),
            finished: Vec::new(),
            next_id: 0,
            order: Vec::new(),
            ticks: 0,
            overload_level: 0,
            overload_pressured: 0,
            overload_calm: 0,
        }
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Currently active sessions.
    pub fn active_sessions(&self) -> usize {
        self.tenants.len()
    }

    /// Sessions waiting in the run queue.
    pub fn queued_sessions(&self) -> usize {
        self.queue.len()
    }

    /// Submits a session request. Returns `false` — and counts a rejection
    /// — when the run queue is full or the content item is not published.
    /// Under overload the effective queue bound halves per overload level
    /// (admission tightening); requests shed this way are additionally
    /// counted in [`ServerTelemetry::sessions_shed`].
    pub fn enqueue(&mut self, spec: SessionSpec) -> bool {
        if self.registry.get(&spec.content).is_none() {
            self.telemetry.sessions_rejected += 1;
            return false;
        }
        let limit = (self.config.queue_limit >> self.overload_level.min(31)).max(1);
        if self.queue.len() >= limit {
            if limit < self.config.queue_limit {
                self.telemetry.sessions_shed += 1;
            }
            self.telemetry.sessions_rejected += 1;
            return false;
        }
        self.queue.push_back(spec);
        true
    }

    /// Runs one server tick: admit from the queue up to (overload-adjusted)
    /// capacity, grant keyframe-resync slots from the per-tick budget, plan
    /// every active session's degradation level against the deadline,
    /// dispatch the frame jobs longest-predicted-first onto the pool, roll
    /// counters into the aggregate, retire completed or quarantined
    /// sessions, and update the overload controller.
    pub fn tick(&mut self) {
        let tick = self.ticks;
        self.ticks += 1;

        // 1. Admission: fill free (overload-adjusted) capacity from the
        // queue, in order.
        let capacity = (self.config.capacity >> self.overload_level.min(31)).max(1);
        while self.tenants.len() < capacity {
            let Some(spec) = self.queue.pop_front() else {
                break;
            };
            let model = self
                .registry
                .get(&spec.content)
                .expect("enqueue validated the content name");
            match Tenant::admit(self.next_id, spec, &model, &self.config) {
                Ok(tenant) => {
                    self.tenants.push(tenant);
                    self.next_id += 1;
                    self.telemetry.sessions_admitted += 1;
                }
                Err(_) => {
                    self.telemetry.sessions_rejected += 1;
                }
            }
        }
        if self.tenants.is_empty() {
            return;
        }

        // 1.5. Recovery-storm control: release at most
        // `resync_budget_per_tick` parked tenants, longest-waiting first
        // (ties broken by session seed then admission id — all
        // deterministic, independent of worker count and wall-clock).
        let mut waiting: Vec<usize> = self
            .tenants
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                t.failure.is_none() && t.ingest.as_ref().is_some_and(|i| i.parked && !i.granted)
            })
            .map(|(ix, _)| ix)
            .collect();
        waiting.sort_by_key(|&ix| {
            let t = &self.tenants[ix];
            let park_tick = t.ingest.as_ref().map_or(0, |i| i.park_tick);
            (park_tick, t.spec.seed, t.id)
        });
        for (rank, &ix) in waiting.iter().enumerate() {
            if rank < self.config.resync_budget_per_tick {
                self.tenants[ix].ingest.as_mut().expect("filtered").granted = true;
                self.telemetry.resync_grants += 1;
            } else {
                self.telemetry.resync_deferrals += 1;
            }
        }

        // 2. Plan levels sequentially (admission order) with the analytic
        // model — deterministic, and cheap relative to the frames. Ingest
        // cost (last frame's simulated recovery seconds) is charged into
        // the prediction so the LPT order sees fault-burdened tenants as
        // heavy. Overload pressure is measured on the *pre-floor* planned
        // levels, so the floor itself never feeds back into the signal.
        let mut predicted: Vec<f64> = Vec::with_capacity(self.tenants.len());
        let mut below_full = 0usize;
        let floor = self.config.overload.as_ref().map(|_| {
            DegradationLevel::ALL
                [(self.overload_level as usize).min(DegradationLevel::ALL.len() - 1)]
        });
        for tenant in &mut self.tenants {
            let level = match &mut tenant.controller {
                Some(controller) => {
                    let spec_points = tenant.stream.frame().len() as f64;
                    let model = &self.config.planning_model;
                    let ratio = self.config.ratio;
                    let last_ingest = tenant.last_ingest_s;
                    let planned = controller.plan(
                        |level| {
                            level
                                .adjusted_model(model)
                                .frame_time_s(spec_points, level.effective_ratio(ratio))
                                + last_ingest
                        },
                        self.config.deadline_s,
                    );
                    if planned != DegradationLevel::Full {
                        below_full += 1;
                    }
                    match floor {
                        Some(floor) if floor.index() > planned.index() => {
                            controller.escalate_to(floor);
                            floor
                        }
                        _ => planned,
                    }
                }
                None => DegradationLevel::Full,
            };
            tenant.planned = level;
            predicted.push(tenant.predict(level, &self.config) + tenant.last_ingest_s);
        }
        let planned_active = self.tenants.len();

        // 3. LPT dispatch order: longest predicted frame first (ties by
        // admission id) so heavy sessions start while light ones backfill.
        self.order.clear();
        self.order.extend(0..self.tenants.len() as u32);
        self.order.sort_by(|&a, &b| {
            predicted[b as usize]
                .total_cmp(&predicted[a as usize])
                .then(a.cmp(&b))
        });

        // 4. Parallel frame step: one task per tenant, exclusive &mut via
        // disjoint indices.
        let base = TenantsPtr(self.tenants.as_mut_ptr());
        let config = &self.config;
        runtime::run_order(&self.order, 1, |items| {
            for &ix in items {
                // SAFETY: `order` is a permutation of 0..tenants.len(), and
                // run_order partitions it into disjoint slices, so this
                // index is visited by exactly one worker.
                let tenant = unsafe { base.tenant(ix) };
                tenant.step(config, tick);
            }
        });

        // 5. Sequential roll-up in admission order (only tenants that
        // actually produced a frame this tick), then retirement.
        for tenant in &mut self.tenants {
            if tenant.stepped {
                self.telemetry.record_frame(&tenant.counters);
                self.telemetry.deadline_misses += u64::from(
                    tenant.counters.last_frame_time_s + tenant.last_ingest_s
                        > self.config.deadline_s,
                );
                tenant.stepped = false;
            }
            if let Some(ingest) = &tenant.ingest {
                // Lock-free by construction: the stats live in the tenant,
                // written only by its one worker; the coordinator folds the
                // per-tick delta here, between parallel steps.
                let current = ingest.receiver.stats();
                self.telemetry
                    .ingest
                    .add_delta(&current, &tenant.rolled_stats);
                tenant.rolled_stats = current;
            }
        }
        let mut retired = Vec::new();
        self.tenants.retain_mut(|tenant| {
            if tenant.remaining > 0 && tenant.failure.is_none() {
                return true;
            }
            retired.push(SessionReport {
                id: tenant.id,
                content: std::mem::take(&mut tenant.spec.content),
                seed: tenant.spec.seed,
                frames: tenant.counters.frames,
                deadline_misses: tenant.counters.deadline_misses,
                frame_errors: tenant.frame_errors,
                qoe: tenant.qoe.summarize(&QoeParams::default()),
                digest: tenant.digest,
                residency: tenant
                    .controller
                    .as_ref()
                    .map_or([tenant.counters.frames, 0, 0, 0, 0], |c| c.residency()),
                failure: tenant.failure,
                ingest: tenant.ingest.as_ref().map(|i| i.receiver.stats()),
            });
            false
        });
        self.telemetry.sessions_quarantined +=
            retired.iter().filter(|r| r.failure.is_some()).count() as u64;
        self.telemetry.sessions_retired += retired.len() as u64;
        self.finished.extend(retired);

        // 6. Overload controller: escalate after sustained pressure, relax
        // after sustained calm. `below_full` came from the pre-floor plans
        // of the analytic model — nothing here reads wall-clock.
        if let Some(policy) = &self.config.overload {
            let pressure = below_full as f64 / planned_active.max(1) as f64;
            if pressure >= policy.pressure_threshold {
                self.overload_pressured += 1;
                self.overload_calm = 0;
                if self.overload_pressured >= policy.escalate_after
                    && self.overload_level < policy.max_level
                {
                    self.overload_level += 1;
                    self.overload_pressured = 0;
                    self.telemetry.overload_escalations += 1;
                }
            } else {
                self.overload_calm += 1;
                self.overload_pressured = 0;
                if self.overload_calm >= policy.relax_after && self.overload_level > 0 {
                    self.overload_level -= 1;
                    self.overload_calm = 0;
                }
            }
        }
        self.telemetry.overload_level = self.overload_level;
    }

    /// Drives ticks until the queue and every admitted session are drained,
    /// then reports. `max_ticks` bounds the loop against misconfiguration.
    pub fn run(&mut self, max_ticks: u64) -> ServerReport {
        let started = Instant::now();
        let mut ticks = 0;
        while (!self.tenants.is_empty() || !self.queue.is_empty()) && ticks < max_ticks {
            self.tick();
            ticks += 1;
        }
        let wall_s = started.elapsed().as_secs_f64();
        self.report(wall_s)
    }

    /// Builds the aggregate report for the work completed so far.
    pub fn report(&self, wall_s: f64) -> ServerReport {
        let snapshot = self.telemetry.snapshot();
        ServerReport {
            aggregate_fps: if wall_s > 0.0 {
                snapshot.frames_total as f64 / wall_s
            } else {
                0.0
            },
            wall_s,
            frame_errors: self.finished.iter().map(|s| s.frame_errors).sum::<u64>()
                + self.tenants.iter().map(|t| t.frame_errors).sum::<u64>(),
            sessions: self.finished.clone(),
            telemetry: snapshot,
        }
    }

    /// Aggregate telemetry accumulated so far.
    pub fn telemetry(&self) -> &ServerTelemetry {
        &self.telemetry
    }

    /// Memory accounting across the currently active sessions: what is held
    /// once (registry) vs per session (scratch, frame clouds, and per-session
    /// table copies in the cloned baseline).
    pub fn memory_stats(&self) -> ServerMemoryStats {
        let session_bytes_total: usize = self
            .tenants
            .iter()
            .map(|t| t.memory_bytes(&self.config))
            .sum();
        ServerMemoryStats {
            sessions: self.tenants.len(),
            registry_bytes: self.registry.shared_bytes(),
            session_bytes_total,
            bytes_per_session: if self.tenants.is_empty() {
                0.0
            } else {
                session_bytes_total as f64 / self.tenants.len() as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volut_core::encoding::KeyScheme;
    use volut_core::lut::sparse::SparseLut;
    use volut_core::SrConfig;

    fn test_registry() -> Arc<ModelRegistry> {
        let mut registry = ModelRegistry::new();
        use volut_core::lut::Lut;
        let mut lut = SparseLut::new();
        lut.set(7, [0.01, 0.0, -0.01]).unwrap();
        registry.publish(ContentModel::from_sparse(
            "demo",
            SrConfig::default(),
            KeyScheme::Full,
            lut,
            None,
        ));
        Arc::new(registry)
    }

    fn spec(seed: u64) -> SessionSpec {
        SessionSpec {
            content: "demo".into(),
            seed,
            points: 400,
            churn: 0.1,
            frames: 4,
            ingest: IngestSource::Local,
        }
    }

    #[test]
    fn admits_runs_and_retires_sessions() {
        let mut server = SrServer::new(test_registry(), ServerConfig::default());
        for seed in 0..8 {
            assert!(server.enqueue(spec(seed)));
        }
        let report = server.run(64);
        assert_eq!(report.telemetry.sessions_admitted, 8);
        assert_eq!(report.telemetry.sessions_retired, 8);
        assert_eq!(report.telemetry.sessions_rejected, 0);
        assert_eq!(report.telemetry.frames_total, 8 * 4);
        assert_eq!(report.sessions.len(), 8);
        assert_eq!(report.frame_errors, 0);
        for s in &report.sessions {
            assert_eq!(s.frames, 4);
            assert!(s.qoe.normalized > 0.0);
        }
        assert_eq!(server.active_sessions(), 0);
    }

    #[test]
    fn rejects_beyond_queue_limit_and_unknown_content() {
        let config = ServerConfig {
            queue_limit: 2,
            ..ServerConfig::default()
        };
        let mut server = SrServer::new(test_registry(), config);
        assert!(server.enqueue(spec(0)));
        assert!(server.enqueue(spec(1)));
        assert!(!server.enqueue(spec(2)), "queue is bounded");
        let unknown = SessionSpec {
            content: "missing".into(),
            ..spec(3)
        };
        // Unknown content cannot occupy a queue slot.
        let mut server2 = SrServer::new(test_registry(), ServerConfig::default());
        assert!(!server2.enqueue(unknown));
        assert_eq!(server2.telemetry().sessions_rejected, 1);
        assert_eq!(server.telemetry().sessions_rejected, 1);
    }

    #[test]
    fn capacity_staggers_admission_without_losing_sessions() {
        let config = ServerConfig {
            capacity: 2,
            ..ServerConfig::default()
        };
        let mut server = SrServer::new(test_registry(), config);
        for seed in 0..6 {
            assert!(server.enqueue(spec(seed)));
        }
        server.tick();
        assert_eq!(server.active_sessions(), 2);
        assert_eq!(server.queued_sessions(), 4);
        let report = server.run(256);
        assert_eq!(report.telemetry.sessions_retired, 6);
        assert_eq!(report.telemetry.frames_total, 6 * 4);
    }

    #[test]
    fn same_seed_sessions_share_one_digest() {
        // Two sessions of the same spec inside one server run must produce
        // the same per-session digest: tenant state is fully isolated.
        let mut server = SrServer::new(test_registry(), ServerConfig::default());
        server.enqueue(spec(42));
        server.enqueue(spec(7));
        server.enqueue(spec(42));
        let report = server.run(64);
        assert_eq!(report.sessions[0].digest, report.sessions[2].digest);
        assert_ne!(report.sessions[0].digest, report.sessions[1].digest);
    }

    #[test]
    fn passthrough_budget_degrades_without_corruption() {
        // An impossible budget forces Passthrough; a later recovery frame
        // must not chain a stale declared delta (synced gating).
        let config = ServerConfig {
            deadline_s: 1e-9,
            degradation: Some(DegradationConfig {
                degrade_after: 1,
                recover_after: 1,
                recover_margin: 1.0,
                ..DegradationConfig::default()
            }),
            ..ServerConfig::default()
        };
        let mut server = SrServer::new(test_registry(), config);
        server.enqueue(SessionSpec {
            frames: 6,
            ..spec(9)
        });
        let report = server.run(64);
        assert_eq!(report.frame_errors, 0);
        let s = &report.sessions[0];
        assert!(
            s.residency[DegradationLevel::Passthrough.index()] > 0,
            "residency {:?}",
            s.residency
        );
        // Passthrough quality is priced into QoE.
        assert!(s.qoe.mean_quality < 0.9);
    }

    fn resilient_spec(seed: u64, cfg: IngestConfig) -> SessionSpec {
        SessionSpec {
            ingest: IngestSource::Resilient(cfg),
            ..spec(seed)
        }
    }

    /// Degradation pinned off so planning (which sees ingest cost) cannot
    /// shift levels between the compared runs — digest comparisons then
    /// isolate the transport path alone.
    fn undegraded() -> ServerConfig {
        ServerConfig {
            degradation: None,
            ..ServerConfig::default()
        }
    }

    fn digests_by_seed(report: &ServerReport) -> Vec<(u64, u64)> {
        let mut rows: Vec<(u64, u64)> =
            report.sessions.iter().map(|s| (s.seed, s.digest)).collect();
        rows.sort_unstable();
        rows
    }

    #[test]
    fn resilient_clean_link_matches_local_digests() {
        let mut local = SrServer::new(test_registry(), undegraded());
        let mut resilient = SrServer::new(test_registry(), undegraded());
        for seed in [3, 11, 27] {
            local.enqueue(spec(seed));
            resilient.enqueue(resilient_spec(seed, IngestConfig::default()));
        }
        let local_report = local.run(64);
        let report = resilient.run(64);
        assert_eq!(digests_by_seed(&report), digests_by_seed(&local_report));
        for s in &report.sessions {
            assert_eq!(s.frames, 4);
            assert_eq!(s.failure, None);
            let stats = s.ingest.expect("resilient sessions report ingest stats");
            assert_eq!(stats.frames, 4);
            assert_eq!(stats.poisonings_detected, 0);
        }
        assert!(local_report.sessions.iter().all(|s| s.ingest.is_none()));
    }

    #[test]
    fn lossy_ingest_stays_bit_identical_to_clean() {
        let lossy = IngestConfig {
            faults: FaultConfig {
                drop: 0.3,
                ..FaultConfig::default()
            },
            ..IngestConfig::default()
        };
        let mut clean = SrServer::new(test_registry(), undegraded());
        let mut faulted = SrServer::new(test_registry(), undegraded());
        for seed in [5, 13, 21] {
            clean.enqueue(SessionSpec {
                frames: 8,
                ..resilient_spec(seed, IngestConfig::default())
            });
            faulted.enqueue(SessionSpec {
                frames: 8,
                ..resilient_spec(seed, lossy.clone())
            });
        }
        let clean_report = clean.run(256);
        let report = faulted.run(256);
        assert_eq!(digests_by_seed(&report), digests_by_seed(&clean_report));
        let recovered: u64 = report
            .sessions
            .iter()
            .filter_map(|s| s.ingest)
            .map(|st| st.recovered_retransmit + st.recovered_compose + st.recovered_keyframe)
            .sum();
        assert!(recovered > 0, "the lossy run must exercise the ladder");
        assert_eq!(report.telemetry.ingest.frames, 3 * 8);
    }

    #[test]
    fn permanent_link_failure_quarantines_and_isolates_neighbors() {
        let dead = IngestConfig {
            faults: FaultConfig {
                drop: 1.0,
                ..FaultConfig::default()
            },
            ..IngestConfig::default()
        };
        let mut baseline = SrServer::new(test_registry(), undegraded());
        let mut chaotic = SrServer::new(test_registry(), undegraded());
        for seed in [1, 2, 3] {
            baseline.enqueue(resilient_spec(seed, IngestConfig::default()));
            chaotic.enqueue(resilient_spec(seed, IngestConfig::default()));
        }
        chaotic.enqueue(resilient_spec(99, dead));
        let baseline_report = baseline.run(64);
        let report = chaotic.run(64);
        let victim = report
            .sessions
            .iter()
            .find(|s| s.seed == 99)
            .expect("quarantined sessions are still reported");
        assert_eq!(victim.failure, Some(QuarantineCause::RetryExhausted));
        assert_eq!(victim.frames, 0, "a dead link never delivers a frame");
        assert_eq!(report.telemetry.sessions_quarantined, 1);
        let healthy: Vec<(u64, u64)> = digests_by_seed(&report)
            .into_iter()
            .filter(|(seed, _)| *seed != 99)
            .collect();
        assert_eq!(
            healthy,
            digests_by_seed(&baseline_report),
            "a neighbor's dead link must not move any other tenant's bits"
        );
    }

    #[test]
    fn resync_budget_serializes_keyframe_storms() {
        // A one-frame retention window turns every post-start fetch into a
        // keyframe resync, so all tenants storm the budget at once.
        let tiny_window = IngestConfig {
            retention: RetentionPolicy::last_frames(1),
            ..IngestConfig::default()
        };
        let config = ServerConfig {
            resync_budget_per_tick: 1,
            ..undegraded()
        };
        let mut local = SrServer::new(test_registry(), undegraded());
        let mut server = SrServer::new(test_registry(), config);
        for seed in [4, 8, 15] {
            local.enqueue(spec(seed));
            server.enqueue(resilient_spec(seed, tiny_window.clone()));
        }
        let local_report = local.run(64);
        let report = server.run(256);
        assert_eq!(report.telemetry.sessions_retired, 3);
        assert!(report.telemetry.resync_grants > 0);
        assert!(
            report.telemetry.resync_deferrals > 0,
            "three simultaneous resyncs against a budget of one must defer"
        );
        // Keyframe resyncs recompute cold; cold output is bit-identical to
        // the incremental path, so digests still match the local run.
        assert_eq!(digests_by_seed(&report), digests_by_seed(&local_report));
        for s in &report.sessions {
            let stats = s.ingest.expect("resilient stats");
            assert!(stats.recovered_keyframe > 0, "{stats:?}");
        }
    }

    #[test]
    fn overload_sheds_admissions_and_escalates() {
        let config = ServerConfig {
            capacity: 1,
            queue_limit: 8,
            deadline_s: 1e-9,
            overload: Some(OverloadPolicy {
                escalate_after: 1,
                relax_after: 1000,
                ..OverloadPolicy::default()
            }),
            ..ServerConfig::default()
        };
        let mut server = SrServer::new(test_registry(), config);
        for seed in 0..8 {
            assert!(server.enqueue(SessionSpec {
                frames: 16,
                ..spec(seed)
            }));
        }
        server.tick();
        server.tick();
        assert!(
            server.telemetry().overload_level >= 1,
            "an impossible deadline must escalate overload"
        );
        assert!(server.telemetry().overload_escalations >= 1);
        // The queue still holds 7 requests; the tightened limit (8 >> 1 = 4)
        // sheds the next one.
        assert!(!server.enqueue(spec(100)));
        assert!(server.telemetry().sessions_shed >= 1);
    }

    #[test]
    fn cloned_baseline_pays_the_table_per_session() {
        let registry = test_registry();
        let mk = |share| {
            let config = ServerConfig {
                share_registry: share,
                ..ServerConfig::default()
            };
            let mut server = SrServer::new(Arc::clone(&registry), config);
            for seed in 0..4 {
                server.enqueue(spec(seed));
            }
            server.tick(); // admit + first frame so scratch is warm
            server.memory_stats()
        };
        let shared = mk(true);
        let cloned = mk(false);
        assert_eq!(shared.sessions, 4);
        let table = registry.shared_bytes() as f64;
        assert!(table > 0.0);
        assert!(
            cloned.bytes_per_session >= shared.bytes_per_session + table,
            "cloned {} vs shared {} + table {}",
            cloned.bytes_per_session,
            shared.bytes_per_session,
            table
        );
    }
}

//! Multi-tenant SR server: thousands of streaming sessions over one shared
//! work-stealing pool and one shared immutable model registry.
//!
//! The paper's system claim is that LUT-based SR is cheap enough to scale
//! volumetric streaming past per-client GPU inference. This module is the
//! server side of that claim: [`SrServer`] drives N concurrent churned
//! [`DeltaStream`] sessions, where
//!
//! * **state is shared, never copied** — every session of a content item
//!   probes the registry's one `Arc`'d LUT through
//!   [`volut_core::registry::SharedLut`] (see [`ServerConfig::share_registry`]
//!   for the measured-baseline escape hatch), so bytes/session is dominated
//!   by per-session scratch, not by the model;
//! * **admission is controlled** — a bounded run queue in front of a fixed
//!   active-session capacity; overflow is *rejected and counted*, never
//!   silently queued without bound;
//! * **deadlines drive scheduling and degradation** — each tick plans every
//!   session's [`DegradationLevel`] against the per-frame compute budget
//!   using the deterministic analytic [`SrComputeModel`] (wall-clock feeds
//!   miss counters and telemetry only, keeping outputs bit-identical across
//!   worker counts), then dispatches the frame jobs longest-predicted-first
//!   onto the pool via `volut_pointcloud::runtime::run_order` so heavy
//!   tenants cannot convoy behind thousands of light ones;
//! * **telemetry is lock-cheap** — each tenant owns plain counters written
//!   by exactly one worker during the parallel step; the coordinator rolls
//!   them into the aggregate [`ServerTelemetry`] (frame-time p50/p95/p99,
//!   QoE distribution, reuse-rate histogram) between ticks.
//!
//! Determinism contract: given the same specs and seeds, per-session output
//! digests and aggregate QoE are identical across `VOLUT_WORKERS` counts
//! and across admission orderings — pinned by `tests/property_server.rs`.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;
use volut_core::registry::{ContentModel, ModelRegistry};
use volut_core::SrPipeline;
use volut_pointcloud::synthetic::{self, DeltaStream, DeltaStreamConfig};
use volut_pointcloud::{runtime, Color, Point3, PointCloud};

use crate::client::{SrComputeModel, SrSession};
use crate::qoe::{ChunkQoe, QoeAccumulator, QoeParams, QoeSummary};
use crate::resilience::{DegradationConfig, DegradationController, DegradationLevel};
use crate::telemetry::{ServerTelemetry, SessionCounters, TelemetrySnapshot};

/// Server-wide configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum concurrently active sessions; admission beyond this waits in
    /// the run queue.
    pub capacity: usize,
    /// Bound of the run queue; [`SrServer::enqueue`] beyond it is rejected
    /// and counted.
    pub queue_limit: usize,
    /// Playback interval of one frame (the QoE chunk duration), seconds.
    pub frame_interval_s: f64,
    /// Per-frame compute deadline (the degradation planning budget),
    /// seconds.
    pub deadline_s: f64,
    /// Upsampling ratio requested by every session.
    pub ratio: f64,
    /// Degradation hysteresis; `None` pins every session to
    /// [`DegradationLevel::Full`].
    pub degradation: Option<DegradationConfig>,
    /// Deterministic analytic model used for deadline planning (never
    /// wall-clock — see the module docs).
    pub planning_model: SrComputeModel,
    /// `true` (default): sessions probe the registry's shared table.
    /// `false`: every session deep-copies its content model's LUT — the
    /// pre-registry behavior, kept as the measured bytes/session baseline
    /// for the `server_scaling` bench.
    pub share_registry: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            capacity: 1024,
            queue_limit: 4096,
            frame_interval_s: 1.0 / 30.0,
            deadline_s: 1.0 / 30.0,
            ratio: 2.0,
            degradation: Some(DegradationConfig::default()),
            planning_model: SrComputeModel::volut_lut(),
            share_registry: true,
        }
    }
}

/// One session request: which content to stream and how the synthetic
/// client behaves.
#[derive(Debug, Clone, Serialize)]
pub struct SessionSpec {
    /// Registry name of the content item to serve.
    pub content: String,
    /// Seed of the session's synthetic base cloud and churn stream.
    pub seed: u64,
    /// Points per delivered (low-resolution) frame.
    pub points: usize,
    /// Fraction of each frame's points churned per frame.
    pub churn: f64,
    /// Session length in frames (clamped to ≥ 1 at admission).
    pub frames: u64,
}

/// Per-session serving state. All mutable state lives here, so the parallel
/// frame step hands each worker exclusive `&mut` access to disjoint tenants.
struct Tenant {
    id: u64,
    spec: SessionSpec,
    session: SrSession,
    /// Refinement-free pipeline sharing the session's scratch for degraded
    /// frames (temporal caches are keyed per pipeline/ratio, so swapping is
    /// bit-safe — see [`SrSession::upsample_frame_via`]).
    degraded: SrPipeline,
    stream: DeltaStream,
    controller: Option<DegradationController>,
    /// Level planned for the current tick (written by the coordinator).
    planned: DegradationLevel,
    remaining: u64,
    /// Whether the session's temporal cache chain matches the stream's
    /// previous frame (false after Passthrough frames, which skip the
    /// engine entirely); gates *declared* deltas only — the engine's own
    /// diff fallback keeps undeclared frames correct regardless.
    synced: bool,
    started: bool,
    counters: SessionCounters,
    qoe: QoeAccumulator,
    prev_quality: Option<f64>,
    /// FNV-1a fold of every frame's output geometry digest — the cheap
    /// cross-run bit-identity witness.
    digest: u64,
    frame_errors: u64,
    prev_rows_reused: u64,
    prev_rows_recomputed: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv1a(mut acc: u64, value: u64) -> u64 {
    for byte in value.to_le_bytes() {
        acc ^= u64::from(byte);
        acc = acc.wrapping_mul(FNV_PRIME);
    }
    acc
}

fn cloud_bytes(cloud: &PointCloud) -> usize {
    cloud.len() * std::mem::size_of::<Point3>()
        + cloud
            .colors()
            .map_or(0, |c: &[Color]| std::mem::size_of_val(c))
}

impl Tenant {
    fn admit(
        id: u64,
        spec: SessionSpec,
        model: &Arc<ContentModel>,
        config: &ServerConfig,
    ) -> volut_core::Result<Self> {
        let session = if config.share_registry {
            SrSession::from_model(model)?
        } else {
            SrSession::new(model.cloned_pipeline()?)
        };
        let degraded = model.identity_pipeline();
        let base = synthetic::sphere(spec.points.max(16), 1.0, spec.seed);
        let spacing = base.mean_spacing(64).unwrap_or(0.01);
        let stream = DeltaStream::new(
            base,
            DeltaStreamConfig {
                churn: spec.churn,
                drift: spacing * 4.0,
                jitter: spacing * 0.5,
                seed: spec.seed,
            },
        );
        let remaining = spec.frames.max(1);
        Ok(Self {
            id,
            spec,
            session,
            degraded,
            stream,
            controller: config.degradation.map(DegradationController::new),
            planned: DegradationLevel::Full,
            remaining,
            synced: false,
            started: false,
            counters: SessionCounters::default(),
            qoe: QoeAccumulator::new(),
            prev_quality: None,
            digest: FNV_OFFSET,
            frame_errors: 0,
            prev_rows_reused: 0,
            prev_rows_recomputed: 0,
        })
    }

    /// Predicted compute seconds of the next frame at `level` under the
    /// analytic planning model (deterministic by construction).
    fn predict(&self, level: DegradationLevel, config: &ServerConfig) -> f64 {
        level.adjusted_model(&config.planning_model).frame_time_s(
            self.stream.frame().len() as f64,
            level.effective_ratio(config.ratio),
        )
    }

    /// Runs one frame at the planned level. Called from the parallel step
    /// with exclusive access; everything observable in the output digest
    /// and QoE depends only on the session's own seed and plan.
    fn step(&mut self, config: &ServerConfig) {
        let started = Instant::now();
        let level = self.planned;
        let (frame, delta) = if self.started {
            let delta = self.stream.advance();
            (self.stream.frame().clone(), Some(delta))
        } else {
            self.started = true;
            (self.stream.frame().clone(), None)
        };
        let declared = if self.synced { delta } else { None };
        let ratio = level.effective_ratio(config.ratio);
        let outcome = match level {
            DegradationLevel::Passthrough => None,
            DegradationLevel::Full => Some(match declared {
                Some(d) => self.session.upsample_frame_delta(&frame, ratio, d),
                None => self.session.upsample_frame(&frame, ratio),
            }),
            _ => Some(
                self.session
                    .upsample_frame_via(&self.degraded, &frame, ratio, declared),
            ),
        };
        let output_digest = match outcome {
            None => {
                // Passthrough: the received points are served untouched and
                // the engine never sees the frame, so the session's cached
                // previous frame goes stale.
                self.synced = false;
                frame.geometry_digest()
            }
            Some(Ok(result)) => {
                self.synced = true;
                result.cloud.geometry_digest()
            }
            Some(Err(_)) => {
                // Degenerate frame (e.g. churned below the neighborhood
                // minimum): serve the input untouched, count it, keep going.
                self.frame_errors += 1;
                self.synced = false;
                frame.geometry_digest()
            }
        };
        self.digest = fnv1a(self.digest, self.counters.frames);
        self.digest = fnv1a(self.digest, output_digest);
        self.digest = fnv1a(self.digest, frame.len() as u64);

        let elapsed = started.elapsed().as_secs_f64();
        let quality = level.quality_factor();
        self.counters.frames += 1;
        self.counters.last_frame_time_s = elapsed;
        self.counters.last_quality = quality;
        self.counters.total_compute_s += elapsed;
        if elapsed > config.deadline_s {
            self.counters.deadline_misses += 1;
        }
        if let Some(controller) = &mut self.controller {
            controller.observe(elapsed, config.deadline_s);
        }
        let t = self.session.temporal_stats();
        let frame_reused = t.rows_reused - self.prev_rows_reused;
        let frame_recomputed = t.rows_recomputed - self.prev_rows_recomputed;
        self.prev_rows_reused = t.rows_reused;
        self.prev_rows_recomputed = t.rows_recomputed;
        let rows = frame_reused + frame_recomputed;
        self.counters.last_reuse_rate = if rows == 0 {
            0.0
        } else {
            frame_reused as f64 / rows as f64
        };
        self.qoe.push(ChunkQoe {
            quality,
            previous_quality: self.prev_quality.unwrap_or(quality),
            stall_s: 0.0,
            duration_s: config.frame_interval_s,
        });
        self.prev_quality = Some(quality);
        self.remaining -= 1;
    }

    fn memory_bytes(&self, config: &ServerConfig) -> usize {
        let table = if config.share_registry {
            0 // counted once, registry-side
        } else {
            self.session.pipeline().refiner_memory_bytes()
        };
        std::mem::size_of::<Self>()
            + self.session.scratch().reserved_bytes()
            + cloud_bytes(self.stream.frame())
            + table
    }
}

/// Final report of one completed session.
#[derive(Debug, Clone, Serialize)]
pub struct SessionReport {
    /// Admission-order id.
    pub id: u64,
    /// Content item served.
    pub content: String,
    /// Session seed.
    pub seed: u64,
    /// Frames produced.
    pub frames: u64,
    /// Frames whose measured compute exceeded the deadline.
    pub deadline_misses: u64,
    /// Frames that hit an engine error and were served passthrough.
    pub frame_errors: u64,
    /// Session QoE summary (deterministic: built from planned levels, not
    /// wall-clock).
    pub qoe: QoeSummary,
    /// FNV-1a fold of per-frame output digests — compare across runs to
    /// check bit-identity.
    pub digest: u64,
    /// Frames spent at each degradation level, `Full` first.
    pub residency: [u64; 5],
}

/// Memory accounting of a running server (see the `server_scaling` bench).
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ServerMemoryStats {
    /// Active sessions measured.
    pub sessions: usize,
    /// Bytes held once for all sessions (registry tables + networks).
    pub registry_bytes: usize,
    /// Total bytes across per-session state (scratch arenas, frame clouds,
    /// and — in the cloned baseline — per-session table copies).
    pub session_bytes_total: usize,
    /// `session_bytes_total / sessions` (0 when idle).
    pub bytes_per_session: f64,
}

/// Aggregate report of a full [`SrServer::run`].
#[derive(Debug, Clone, Serialize)]
pub struct ServerReport {
    /// Aggregate telemetry snapshot (percentiles, histograms, counters).
    pub telemetry: TelemetrySnapshot,
    /// Total frames produced per wall-clock second across all sessions.
    pub aggregate_fps: f64,
    /// Wall-clock seconds of the whole run.
    pub wall_s: f64,
    /// Frames served passthrough due to engine errors, across all sessions.
    pub frame_errors: u64,
    /// Per-session reports, admission order.
    pub sessions: Vec<SessionReport>,
}

/// The multi-tenant serving harness. See the module docs for the design.
pub struct SrServer {
    registry: Arc<ModelRegistry>,
    config: ServerConfig,
    queue: VecDeque<SessionSpec>,
    tenants: Vec<Tenant>,
    telemetry: ServerTelemetry,
    finished: Vec<SessionReport>,
    next_id: u64,
    order: Vec<u32>,
}

/// Moves a raw tenant-slice pointer into the parallel frame step. Safety
/// rests on `run_order` visiting each index of a permutation exactly once,
/// so no two workers ever hold `&mut` to the same tenant.
#[derive(Clone, Copy)]
struct TenantsPtr(*mut Tenant);
unsafe impl Send for TenantsPtr {}
unsafe impl Sync for TenantsPtr {}

impl TenantsPtr {
    /// # Safety
    /// The caller must guarantee no other live reference to tenant `ix`
    /// (here: `run_order` over a permutation visits each index once).
    #[allow(clippy::mut_from_ref)]
    unsafe fn tenant(&self, ix: u32) -> &mut Tenant {
        &mut *self.0.add(ix as usize)
    }
}

impl SrServer {
    /// Creates a server over a published registry.
    pub fn new(registry: Arc<ModelRegistry>, config: ServerConfig) -> Self {
        Self {
            registry,
            config,
            queue: VecDeque::new(),
            tenants: Vec::new(),
            telemetry: ServerTelemetry::new(),
            finished: Vec::new(),
            next_id: 0,
            order: Vec::new(),
        }
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Currently active sessions.
    pub fn active_sessions(&self) -> usize {
        self.tenants.len()
    }

    /// Sessions waiting in the run queue.
    pub fn queued_sessions(&self) -> usize {
        self.queue.len()
    }

    /// Submits a session request. Returns `false` — and counts a rejection
    /// — when the run queue is full or the content item is not published.
    pub fn enqueue(&mut self, spec: SessionSpec) -> bool {
        if self.queue.len() >= self.config.queue_limit || self.registry.get(&spec.content).is_none()
        {
            self.telemetry.sessions_rejected += 1;
            return false;
        }
        self.queue.push_back(spec);
        true
    }

    /// Runs one server tick: admit from the queue up to capacity, plan
    /// every active session's degradation level against the deadline,
    /// dispatch the frame jobs longest-predicted-first onto the pool, roll
    /// counters into the aggregate, and retire completed sessions.
    pub fn tick(&mut self) {
        // 1. Admission: fill free capacity from the queue, in order.
        while self.tenants.len() < self.config.capacity {
            let Some(spec) = self.queue.pop_front() else {
                break;
            };
            let model = self
                .registry
                .get(&spec.content)
                .expect("enqueue validated the content name");
            match Tenant::admit(self.next_id, spec, &model, &self.config) {
                Ok(tenant) => {
                    self.tenants.push(tenant);
                    self.next_id += 1;
                    self.telemetry.sessions_admitted += 1;
                }
                Err(_) => {
                    self.telemetry.sessions_rejected += 1;
                }
            }
        }
        if self.tenants.is_empty() {
            return;
        }

        // 2. Plan levels sequentially (admission order) with the analytic
        // model — deterministic, and cheap relative to the frames.
        let mut predicted: Vec<f64> = Vec::with_capacity(self.tenants.len());
        for tenant in &mut self.tenants {
            let level = match &mut tenant.controller {
                Some(controller) => {
                    let spec_points = tenant.stream.frame().len() as f64;
                    let model = &self.config.planning_model;
                    let ratio = self.config.ratio;
                    controller.plan(
                        |level| {
                            level
                                .adjusted_model(model)
                                .frame_time_s(spec_points, level.effective_ratio(ratio))
                        },
                        self.config.deadline_s,
                    )
                }
                None => DegradationLevel::Full,
            };
            tenant.planned = level;
            predicted.push(tenant.predict(level, &self.config));
        }

        // 3. LPT dispatch order: longest predicted frame first (ties by
        // admission id) so heavy sessions start while light ones backfill.
        self.order.clear();
        self.order.extend(0..self.tenants.len() as u32);
        self.order.sort_by(|&a, &b| {
            predicted[b as usize]
                .total_cmp(&predicted[a as usize])
                .then(a.cmp(&b))
        });

        // 4. Parallel frame step: one task per tenant, exclusive &mut via
        // disjoint indices.
        let base = TenantsPtr(self.tenants.as_mut_ptr());
        let config = &self.config;
        runtime::run_order(&self.order, 1, |items| {
            for &ix in items {
                // SAFETY: `order` is a permutation of 0..tenants.len(), and
                // run_order partitions it into disjoint slices, so this
                // index is visited by exactly one worker.
                let tenant = unsafe { base.tenant(ix) };
                tenant.step(config);
            }
        });

        // 5. Sequential roll-up in admission order, then retirement.
        for tenant in &self.tenants {
            self.telemetry.record_frame(&tenant.counters);
            self.telemetry.deadline_misses +=
                u64::from(tenant.counters.last_frame_time_s > self.config.deadline_s);
        }
        let mut retired = Vec::new();
        self.tenants.retain_mut(|tenant| {
            if tenant.remaining > 0 {
                return true;
            }
            retired.push(SessionReport {
                id: tenant.id,
                content: std::mem::take(&mut tenant.spec.content),
                seed: tenant.spec.seed,
                frames: tenant.counters.frames,
                deadline_misses: tenant.counters.deadline_misses,
                frame_errors: tenant.frame_errors,
                qoe: tenant.qoe.summarize(&QoeParams::default()),
                digest: tenant.digest,
                residency: tenant
                    .controller
                    .as_ref()
                    .map_or([tenant.counters.frames, 0, 0, 0, 0], |c| c.residency()),
            });
            false
        });
        self.telemetry.sessions_retired += retired.len() as u64;
        self.finished.extend(retired);
    }

    /// Drives ticks until the queue and every admitted session are drained,
    /// then reports. `max_ticks` bounds the loop against misconfiguration.
    pub fn run(&mut self, max_ticks: u64) -> ServerReport {
        let started = Instant::now();
        let mut ticks = 0;
        while (!self.tenants.is_empty() || !self.queue.is_empty()) && ticks < max_ticks {
            self.tick();
            ticks += 1;
        }
        let wall_s = started.elapsed().as_secs_f64();
        self.report(wall_s)
    }

    /// Builds the aggregate report for the work completed so far.
    pub fn report(&self, wall_s: f64) -> ServerReport {
        let snapshot = self.telemetry.snapshot();
        ServerReport {
            aggregate_fps: if wall_s > 0.0 {
                snapshot.frames_total as f64 / wall_s
            } else {
                0.0
            },
            wall_s,
            frame_errors: self.finished.iter().map(|s| s.frame_errors).sum::<u64>()
                + self.tenants.iter().map(|t| t.frame_errors).sum::<u64>(),
            sessions: self.finished.clone(),
            telemetry: snapshot,
        }
    }

    /// Aggregate telemetry accumulated so far.
    pub fn telemetry(&self) -> &ServerTelemetry {
        &self.telemetry
    }

    /// Memory accounting across the currently active sessions: what is held
    /// once (registry) vs per session (scratch, frame clouds, and per-session
    /// table copies in the cloned baseline).
    pub fn memory_stats(&self) -> ServerMemoryStats {
        let session_bytes_total: usize = self
            .tenants
            .iter()
            .map(|t| t.memory_bytes(&self.config))
            .sum();
        ServerMemoryStats {
            sessions: self.tenants.len(),
            registry_bytes: self.registry.shared_bytes(),
            session_bytes_total,
            bytes_per_session: if self.tenants.is_empty() {
                0.0
            } else {
                session_bytes_total as f64 / self.tenants.len() as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use volut_core::encoding::KeyScheme;
    use volut_core::lut::sparse::SparseLut;
    use volut_core::SrConfig;

    fn test_registry() -> Arc<ModelRegistry> {
        let mut registry = ModelRegistry::new();
        use volut_core::lut::Lut;
        let mut lut = SparseLut::new();
        lut.set(7, [0.01, 0.0, -0.01]).unwrap();
        registry.publish(ContentModel::from_sparse(
            "demo",
            SrConfig::default(),
            KeyScheme::Full,
            lut,
            None,
        ));
        Arc::new(registry)
    }

    fn spec(seed: u64) -> SessionSpec {
        SessionSpec {
            content: "demo".into(),
            seed,
            points: 400,
            churn: 0.1,
            frames: 4,
        }
    }

    #[test]
    fn admits_runs_and_retires_sessions() {
        let mut server = SrServer::new(test_registry(), ServerConfig::default());
        for seed in 0..8 {
            assert!(server.enqueue(spec(seed)));
        }
        let report = server.run(64);
        assert_eq!(report.telemetry.sessions_admitted, 8);
        assert_eq!(report.telemetry.sessions_retired, 8);
        assert_eq!(report.telemetry.sessions_rejected, 0);
        assert_eq!(report.telemetry.frames_total, 8 * 4);
        assert_eq!(report.sessions.len(), 8);
        assert_eq!(report.frame_errors, 0);
        for s in &report.sessions {
            assert_eq!(s.frames, 4);
            assert!(s.qoe.normalized > 0.0);
        }
        assert_eq!(server.active_sessions(), 0);
    }

    #[test]
    fn rejects_beyond_queue_limit_and_unknown_content() {
        let config = ServerConfig {
            queue_limit: 2,
            ..ServerConfig::default()
        };
        let mut server = SrServer::new(test_registry(), config);
        assert!(server.enqueue(spec(0)));
        assert!(server.enqueue(spec(1)));
        assert!(!server.enqueue(spec(2)), "queue is bounded");
        let unknown = SessionSpec {
            content: "missing".into(),
            ..spec(3)
        };
        // Unknown content cannot occupy a queue slot.
        let mut server2 = SrServer::new(test_registry(), ServerConfig::default());
        assert!(!server2.enqueue(unknown));
        assert_eq!(server2.telemetry().sessions_rejected, 1);
        assert_eq!(server.telemetry().sessions_rejected, 1);
    }

    #[test]
    fn capacity_staggers_admission_without_losing_sessions() {
        let config = ServerConfig {
            capacity: 2,
            ..ServerConfig::default()
        };
        let mut server = SrServer::new(test_registry(), config);
        for seed in 0..6 {
            assert!(server.enqueue(spec(seed)));
        }
        server.tick();
        assert_eq!(server.active_sessions(), 2);
        assert_eq!(server.queued_sessions(), 4);
        let report = server.run(256);
        assert_eq!(report.telemetry.sessions_retired, 6);
        assert_eq!(report.telemetry.frames_total, 6 * 4);
    }

    #[test]
    fn same_seed_sessions_share_one_digest() {
        // Two sessions of the same spec inside one server run must produce
        // the same per-session digest: tenant state is fully isolated.
        let mut server = SrServer::new(test_registry(), ServerConfig::default());
        server.enqueue(spec(42));
        server.enqueue(spec(7));
        server.enqueue(spec(42));
        let report = server.run(64);
        assert_eq!(report.sessions[0].digest, report.sessions[2].digest);
        assert_ne!(report.sessions[0].digest, report.sessions[1].digest);
    }

    #[test]
    fn passthrough_budget_degrades_without_corruption() {
        // An impossible budget forces Passthrough; a later recovery frame
        // must not chain a stale declared delta (synced gating).
        let config = ServerConfig {
            deadline_s: 1e-9,
            degradation: Some(DegradationConfig {
                degrade_after: 1,
                recover_after: 1,
                recover_margin: 1.0,
                ..DegradationConfig::default()
            }),
            ..ServerConfig::default()
        };
        let mut server = SrServer::new(test_registry(), config);
        server.enqueue(SessionSpec {
            frames: 6,
            ..spec(9)
        });
        let report = server.run(64);
        assert_eq!(report.frame_errors, 0);
        let s = &report.sessions[0];
        assert!(
            s.residency[DegradationLevel::Passthrough.index()] > 0,
            "residency {:?}",
            s.residency
        );
        // Passthrough quality is priced into QoE.
        assert!(s.qoe.mean_quality < 0.9);
    }

    #[test]
    fn cloned_baseline_pays_the_table_per_session() {
        let registry = test_registry();
        let mk = |share| {
            let config = ServerConfig {
                share_registry: share,
                ..ServerConfig::default()
            };
            let mut server = SrServer::new(Arc::clone(&registry), config);
            for seed in 0..4 {
                server.enqueue(spec(seed));
            }
            server.tick(); // admit + first frame so scratch is warm
            server.memory_stats()
        };
        let shared = mk(true);
        let cloned = mk(false);
        assert_eq!(shared.sessions, 4);
        let table = registry.shared_bytes() as f64;
        assert!(table > 0.0);
        assert!(
            cloned.bytes_per_session >= shared.bytes_per_session + table,
            "cloned {} vs shared {} + table {}",
            cloned.bytes_per_session,
            shared.bytes_per_session,
            table
        );
    }
}

//! Synthetic 6DoF user-motion traces.
//!
//! The paper replays multi-user 6DoF motion traces during playback; real
//! traces are not available, so this module generates representative viewer
//! behaviours (orbiting the content, standing still and inspecting, walking
//! past). The ViVo baseline's visibility adaptation consumes these poses.

use serde::{Deserialize, Serialize};
use volut_pointcloud::Point3;

/// A viewer pose: position plus view direction (unit vector).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pose {
    /// Viewer position in world coordinates.
    pub position: Point3,
    /// Unit view direction.
    pub direction: Point3,
}

/// The behaviour pattern of a synthetic viewer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MotionKind {
    /// Slow orbit around the content at constant radius.
    Orbit,
    /// Mostly stationary, small head movements.
    Inspect,
    /// Walks past the content, producing fast viewport changes.
    WalkBy,
}

/// A deterministic 6DoF motion trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MotionTrace {
    /// The behaviour pattern.
    pub kind: MotionKind,
    /// Orbit/walk radius in meters.
    pub radius: f32,
    /// Angular or linear speed parameter (radians per second or m/s).
    pub speed: f32,
}

impl MotionTrace {
    /// A slow orbit: the paper's "typical" viewer.
    pub fn orbit() -> Self {
        Self {
            kind: MotionKind::Orbit,
            radius: 2.5,
            speed: 0.25,
        }
    }

    /// A nearly stationary inspection viewer.
    pub fn inspect() -> Self {
        Self {
            kind: MotionKind::Inspect,
            radius: 1.8,
            speed: 0.05,
        }
    }

    /// A fast walk-by viewer (stressful for viewport prediction).
    pub fn walk_by() -> Self {
        Self {
            kind: MotionKind::WalkBy,
            radius: 3.0,
            speed: 1.2,
        }
    }

    /// The multi-user trace set used by the evaluation.
    pub fn evaluation_set() -> Vec<MotionTrace> {
        vec![Self::orbit(), Self::inspect(), Self::walk_by()]
    }

    /// Pose at time `t` seconds, looking at the content centered at `target`.
    pub fn pose_at(&self, t: f64, target: Point3) -> Pose {
        let t = t as f32;
        let position = match self.kind {
            MotionKind::Orbit => {
                let angle = self.speed * t;
                target + Point3::new(self.radius * angle.cos(), self.radius * angle.sin(), 1.6)
            }
            MotionKind::Inspect => {
                let wobble = (self.speed * t * 6.0).sin() * 0.15;
                target + Point3::new(self.radius, wobble, 1.6)
            }
            MotionKind::WalkBy => {
                let x = -6.0 + self.speed * t;
                target + Point3::new(x, self.radius, 1.6)
            }
        };
        let direction = (target + Point3::new(0.0, 0.0, 1.0) - position)
            .normalized()
            .unwrap_or(Point3::new(0.0, 0.0, -1.0));
        Pose {
            position,
            direction,
        }
    }

    /// Mean angular speed of the view direction (radians per second),
    /// estimated over `duration_s`. ViVo's prediction accuracy degrades as
    /// this increases.
    pub fn mean_angular_speed(&self, duration_s: f64, target: Point3) -> f64 {
        let steps = (duration_s.ceil() as usize * 4).max(2);
        let dt = duration_s / steps as f64;
        let mut total = 0.0f64;
        for i in 1..steps {
            let a = self.pose_at((i - 1) as f64 * dt, target).direction;
            let b = self.pose_at(i as f64 * dt, target).direction;
            let cos = a.dot(b).clamp(-1.0, 1.0);
            total += f64::from(cos.acos()) / dt;
        }
        total / (steps - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poses_have_unit_directions() {
        for trace in MotionTrace::evaluation_set() {
            for i in 0..20 {
                let pose = trace.pose_at(i as f64 * 0.5, Point3::ZERO);
                assert!((pose.direction.norm() - 1.0).abs() < 1e-4);
                assert!(pose.position.is_finite());
            }
        }
    }

    #[test]
    fn orbit_moves_and_inspect_stays_close() {
        let orbit = MotionTrace::orbit();
        let inspect = MotionTrace::inspect();
        let d_orbit = orbit
            .pose_at(0.0, Point3::ZERO)
            .position
            .distance(orbit.pose_at(5.0, Point3::ZERO).position);
        let d_inspect = inspect
            .pose_at(0.0, Point3::ZERO)
            .position
            .distance(inspect.pose_at(5.0, Point3::ZERO).position);
        assert!(d_orbit > d_inspect);
    }

    #[test]
    fn walkby_has_highest_angular_speed() {
        let target = Point3::ZERO;
        let w = MotionTrace::walk_by().mean_angular_speed(10.0, target);
        let i = MotionTrace::inspect().mean_angular_speed(10.0, target);
        assert!(w > i, "walk-by {w} should exceed inspect {i}");
    }

    #[test]
    fn traces_are_deterministic() {
        let a = MotionTrace::orbit().pose_at(3.3, Point3::ZERO);
        let b = MotionTrace::orbit().pose_at(3.3, Point3::ZERO);
        assert_eq!(a, b);
    }
}

//! End-to-end system variants compared in the evaluation (§7.4, §7.5).
//!
//! | Variant | ABR | SR back-end | Notes |
//! |---|---|---|---|
//! | H1 `VolutContinuous` | continuous MPC | LUT | the full VoLUT system |
//! | H2 `VolutDiscrete` | discrete MPC | LUT | ablation: discrete ladder |
//! | H3 `DiscreteYuzuSr` | discrete MPC | Yuzu NN | ablation: slow SR |
//! | `YuzuSr` | discrete MPC | Yuzu NN | the Yuzu baseline (cache/delta coding disabled) |
//! | `Vivo` | rate-based | none | viewport-adaptive streaming without SR |
//! | `Raw` | rate-based | none | full-density streaming, no adaptation beyond rate |

use crate::abr::{AbrController, ContinuousMpcAbr, DiscreteMpcAbr, RateBasedAbr};
use crate::client::SrComputeModel;
use crate::qoe::QoeParams;
use serde::{Deserialize, Serialize};

/// The system variants reproduced from the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SystemKind {
    /// H1: VoLUT with continuous ABR and LUT-based SR.
    VolutContinuous,
    /// H2: VoLUT with a discrete ABR ladder and LUT-based SR.
    VolutDiscrete,
    /// H3: discrete ABR with Yuzu's neural SR.
    DiscreteYuzuSr,
    /// Yuzu-SR baseline (discrete ABR + neural SR + per-ratio model downloads).
    YuzuSr,
    /// ViVo: viewport-adaptive streaming, no SR.
    Vivo,
    /// Raw point-cloud streaming at the highest sustainable density, no SR.
    Raw,
}

impl SystemKind {
    /// All variants, in presentation order.
    pub fn all() -> Vec<SystemKind> {
        vec![
            SystemKind::VolutContinuous,
            SystemKind::VolutDiscrete,
            SystemKind::DiscreteYuzuSr,
            SystemKind::YuzuSr,
            SystemKind::Vivo,
            SystemKind::Raw,
        ]
    }

    /// The three ablation variants of Table 2.
    pub fn ablation_variants() -> Vec<SystemKind> {
        vec![
            SystemKind::VolutContinuous,
            SystemKind::VolutDiscrete,
            SystemKind::DiscreteYuzuSr,
        ]
    }

    /// Human-readable label used in the figures.
    pub fn label(&self) -> &'static str {
        match self {
            SystemKind::VolutContinuous => "VoLUT (H1, continuous ABR)",
            SystemKind::VolutDiscrete => "VoLUT (H2, discrete ABR)",
            SystemKind::DiscreteYuzuSr => "H3 (discrete ABR + Yuzu SR)",
            SystemKind::YuzuSr => "Yuzu-SR",
            SystemKind::Vivo => "ViVo",
            SystemKind::Raw => "Raw streaming",
        }
    }
}

/// Everything the simulator needs to emulate one system variant.
pub struct SystemSpec {
    /// Which variant this is.
    pub kind: SystemKind,
    /// The ABR controller instance.
    pub abr: Box<dyn AbrController>,
    /// The client compute model.
    pub compute: SrComputeModel,
    /// Quality discount for SR-generated points in `[0, 1]` (0 disables SR).
    pub sr_quality_factor: f64,
    /// Maximum SR ratio the client applies.
    pub max_sr_ratio: f64,
    /// Whether refinement scales like NN inference on the device profile.
    pub nn_inference: bool,
    /// One-time extra download at session start (SR models, metadata), bytes.
    pub startup_download_bytes: u64,
    /// Whether the system only fetches the predicted viewport (ViVo).
    pub viewport_adaptive: bool,
}

impl std::fmt::Debug for SystemSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemSpec")
            .field("kind", &self.kind)
            .field("abr", &self.abr.name())
            .field("compute", &self.compute.name)
            .field("sr_quality_factor", &self.sr_quality_factor)
            .finish()
    }
}

impl SystemSpec {
    /// Builds the specification for a system variant under the given QoE
    /// weights.
    pub fn build(kind: SystemKind, qoe: QoeParams) -> Self {
        // Approximate size of Yuzu's per-ratio SR models shipped to the
        // client before playback (the paper counts them in data usage).
        const YUZU_MODEL_BYTES: u64 = 60_000_000;
        match kind {
            SystemKind::VolutContinuous => Self {
                kind,
                abr: Box::new(ContinuousMpcAbr::new(qoe, 5, 96)),
                compute: SrComputeModel::volut_lut(),
                sr_quality_factor: 0.95,
                max_sr_ratio: 8.0,
                nn_inference: false,
                startup_download_bytes: 2_000_000, // the distilled LUT subset + metadata
                viewport_adaptive: false,
            },
            SystemKind::VolutDiscrete => Self {
                kind,
                // The discrete ablation uses a Yuzu-style ladder: the point of
                // H2 is precisely that coarse rungs waste bandwidth or quality.
                abr: Box::new(DiscreteMpcAbr::new(qoe, 5, vec![0.25, 1.0 / 3.0, 0.5, 1.0])),
                compute: SrComputeModel::volut_lut(),
                sr_quality_factor: 0.95,
                max_sr_ratio: 8.0,
                nn_inference: false,
                startup_download_bytes: 2_000_000,
                viewport_adaptive: false,
            },
            SystemKind::DiscreteYuzuSr => Self {
                kind,
                abr: Box::new(DiscreteMpcAbr::yuzu_ladder(qoe)),
                compute: SrComputeModel::yuzu_nn(),
                sr_quality_factor: 0.85,
                max_sr_ratio: 4.0,
                nn_inference: true,
                startup_download_bytes: YUZU_MODEL_BYTES,
                viewport_adaptive: false,
            },
            SystemKind::YuzuSr => Self {
                kind,
                abr: Box::new(DiscreteMpcAbr::yuzu_ladder(qoe)),
                compute: SrComputeModel::yuzu_nn(),
                sr_quality_factor: 0.85,
                max_sr_ratio: 4.0,
                nn_inference: true,
                startup_download_bytes: YUZU_MODEL_BYTES,
                viewport_adaptive: false,
            },
            SystemKind::Vivo => Self {
                kind,
                abr: Box::new(RateBasedAbr::default()),
                compute: SrComputeModel::none(),
                sr_quality_factor: 0.0,
                max_sr_ratio: 1.0,
                nn_inference: false,
                startup_download_bytes: 500_000,
                viewport_adaptive: true,
            },
            SystemKind::Raw => Self {
                kind,
                abr: Box::new(RateBasedAbr::default()),
                compute: SrComputeModel::none(),
                sr_quality_factor: 0.0,
                max_sr_ratio: 1.0,
                nn_inference: false,
                startup_download_bytes: 0,
                viewport_adaptive: false,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_build() {
        for kind in SystemKind::all() {
            let spec = SystemSpec::build(kind, QoeParams::default());
            assert_eq!(spec.kind, kind);
            assert!(!spec.compute.name.is_empty());
            assert!(!kind.label().is_empty());
        }
        assert_eq!(SystemKind::all().len(), 6);
        assert_eq!(SystemKind::ablation_variants().len(), 3);
    }

    #[test]
    fn volut_uses_continuous_abr_and_lut() {
        let spec = SystemSpec::build(SystemKind::VolutContinuous, QoeParams::default());
        assert_eq!(spec.abr.name(), "continuous-mpc");
        assert_eq!(spec.compute.name, "volut-lut");
        assert!(!spec.nn_inference);
        assert!(spec.max_sr_ratio > 4.0);
    }

    #[test]
    fn yuzu_pays_model_download_and_nn_inference() {
        let spec = SystemSpec::build(SystemKind::YuzuSr, QoeParams::default());
        assert!(spec.startup_download_bytes > 10_000_000);
        assert!(spec.nn_inference);
        assert_eq!(spec.abr.name(), "discrete-mpc");
    }

    #[test]
    fn vivo_is_viewport_adaptive_without_sr() {
        let spec = SystemSpec::build(SystemKind::Vivo, QoeParams::default());
        assert!(spec.viewport_adaptive);
        assert_eq!(spec.sr_quality_factor, 0.0);
        assert_eq!(spec.max_sr_ratio, 1.0);
    }
}

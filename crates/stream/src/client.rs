//! Client-side compute: the live SR session and the analytic compute model.
//!
//! [`SrSession`] wraps a [`volut_core::SrPipeline`] together with a
//! [`FrameScratch`] arena so that consecutive frames of one streaming
//! session reuse the engine's index and neighborhood buffers instead of
//! re-allocating them 30 times per second.
//!
//! The streaming simulator additionally needs to know how long the client
//! spends upsampling each chunk without actually running super-resolution on
//! every frame of a multi-minute session. [`SrComputeModel`] captures the
//! per-point cost of each pipeline stage; defaults are provided for the
//! three SR back-ends compared in the paper and can be re-calibrated from
//! actual [`volut_core::SrPipeline`] measurements.

use serde::{Deserialize, Serialize};
use volut_core::device::{DeviceProfile, StageKind};
use volut_core::interpolate::FrameScratch;
use volut_core::pipeline::{SrPipeline, SrResult};
use volut_pointcloud::{FrameDelta, PointCloud};

use crate::chunk::Chunk;

/// A live client-side super-resolution session: one pipeline plus the
/// frame-scratch arena shared by all frames it upsamples.
///
/// # Example
///
/// ```
/// use volut_core::{refine::IdentityRefiner, SrConfig, SrPipeline};
/// use volut_stream::client::SrSession;
/// use volut_pointcloud::synthetic;
///
/// # fn main() -> Result<(), volut_core::Error> {
/// let pipeline = SrPipeline::new(SrConfig::default(), Box::new(IdentityRefiner));
/// let mut session = SrSession::new(pipeline);
/// for seed in 0..3 {
///     let frame = synthetic::sphere(500, 1.0, seed);
///     let result = session.upsample_frame(&frame, 2.0)?;
///     assert_eq!(result.cloud.len(), 1000);
/// }
/// assert_eq!(session.frames_upsampled(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SrSession {
    pipeline: SrPipeline,
    scratch: FrameScratch,
    frames: u64,
}

impl SrSession {
    /// Creates a session around a configured pipeline.
    pub fn new(pipeline: SrPipeline) -> Self {
        Self {
            pipeline,
            scratch: FrameScratch::new(),
            frames: 0,
        }
    }

    /// Creates a session serving a published [`volut_core::registry::ContentModel`]:
    /// the pipeline probes the registry's shared table through an `Arc`, so
    /// constructing a session allocates per-session scratch only — never a
    /// copy of the content item's LUT or network. This is the constructor
    /// the multi-tenant server uses at admission.
    ///
    /// # Errors
    /// Propagates [`volut_core::registry::ContentModel::pipeline`] failures
    /// (invalid stored configuration).
    pub fn from_model(model: &volut_core::registry::ContentModel) -> volut_core::Result<Self> {
        Ok(Self::new(model.pipeline()?))
    }

    /// The wrapped pipeline.
    pub fn pipeline(&self) -> &SrPipeline {
        &self.pipeline
    }

    /// Upsamples one frame through a **different** pipeline while reusing
    /// this session's scratch arena — the degraded-path entry point: a
    /// server under deadline pressure swaps a session to a cheaper pipeline
    /// (e.g. interpolation-only) for some frames without losing the warm
    /// spatial index and temporal row store. Cross-frame caches are keyed
    /// by pipeline id, config, and ratio, so alternating pipelines can
    /// never serve each other's cached outputs (see
    /// `volut_core::interpolate::temporal`); a swapped frame simply runs
    /// its cacheable stages cold. Pass `delta` when the transition from the
    /// previous frame is known, exactly as with
    /// [`Self::upsample_frame_delta`].
    ///
    /// # Errors
    /// Propagates pipeline failures (invalid ratio, insufficient points).
    pub fn upsample_frame_via(
        &mut self,
        pipeline: &SrPipeline,
        low: &PointCloud,
        ratio: f64,
        delta: Option<FrameDelta>,
    ) -> volut_core::Result<SrResult> {
        if let Some(delta) = delta {
            self.scratch.set_frame_delta(delta);
        }
        let result = pipeline.upsample_with(low, ratio, &mut self.scratch)?;
        self.frames += 1;
        Ok(result)
    }

    /// Number of frames upsampled so far.
    pub fn frames_upsampled(&self) -> u64 {
        self.frames
    }

    /// Upsamples one received frame, reusing the session's scratch buffers.
    ///
    /// The session's spatial index is cached across frames: when the frame
    /// geometry is unchanged (static chunks, repeated frames) the index
    /// (re)build cost is amortized to a content check after frame 1 — see
    /// [`Self::index_stats`] and the `index_build` stage timing.
    ///
    /// # Errors
    /// Propagates pipeline failures (invalid ratio, insufficient points).
    pub fn upsample_frame(&mut self, low: &PointCloud, ratio: f64) -> volut_core::Result<SrResult> {
        let result = self.pipeline.upsample_with(low, ratio, &mut self.scratch)?;
        self.frames += 1;
        Ok(result)
    }

    /// [`Self::upsample_frame`] with a caller-declared geometry generation:
    /// frames sharing a generation with the cached index skip even the
    /// content check (the O(1) fast path for static chunks whose identity
    /// the streaming layer already knows). The caller must change the
    /// generation whenever the frame geometry changes.
    ///
    /// # Errors
    /// Propagates pipeline failures (invalid ratio, insufficient points).
    pub fn upsample_frame_keyed(
        &mut self,
        low: &PointCloud,
        ratio: f64,
        geometry_generation: u64,
    ) -> volut_core::Result<SrResult> {
        self.scratch.set_geometry_generation(geometry_generation);
        let result = self.upsample_frame(low, ratio);
        self.scratch.clear_geometry_generation();
        result
    }

    /// [`Self::upsample_frame`] for a delta-frame whose change from the
    /// previous frame the streaming layer already knows (chunk scheduling,
    /// delta-encoded transport): the declared [`FrameDelta`] spares the
    /// engine its own frame diff, and the temporal layer reuses every kNN
    /// row the churn cannot affect (see `volut_core::interpolate::temporal`
    /// — results are bit-identical to a full recompute). The delta is
    /// verified before use; a wrong declaration falls back to the engine's
    /// diff, costing time but never correctness.
    ///
    /// # Errors
    /// Propagates pipeline failures (invalid ratio, insufficient points).
    pub fn upsample_frame_delta(
        &mut self,
        low: &PointCloud,
        ratio: f64,
        delta: FrameDelta,
    ) -> volut_core::Result<SrResult> {
        self.scratch.set_frame_delta(delta);
        self.upsample_frame(low, ratio)
    }

    /// Rebuild/reuse counters of the session's scratch-resident index,
    /// including the temporal layer's row-reuse counters and how many frame
    /// batches ran through the scratch-resident dual-tree all-kNN kernel.
    pub fn index_stats(&self) -> volut_core::interpolate::IndexCacheStats {
        self.scratch.index_stats()
    }

    /// Frame- and row-level counters of the temporal (delta-frame) reuse
    /// layer.
    pub fn temporal_stats(&self) -> volut_core::interpolate::TemporalStats {
        self.scratch.temporal_stats()
    }

    /// Enables or disables incremental (temporal) kNN reuse for subsequent
    /// frames (enabled by default; bit-identical results either way).
    pub fn set_incremental(&mut self, enabled: bool) {
        self.scratch.set_incremental(enabled);
    }

    /// Why the engine rejected the most recent externally declared
    /// [`FrameDelta`] (see [`Self::upsample_frame_delta`]), or `None` when
    /// it verified. A rejection never corrupts output — the engine falls
    /// back to its own bitwise diff — but a resilient transport reads the
    /// typed reason to tell a mangled payload from genuine divergence.
    pub fn last_delta_error(&self) -> Option<volut_pointcloud::DeltaError> {
        self.scratch.last_delta_error()
    }

    /// Flushes every cross-frame cache (temporal rows, interpolation
    /// outputs, refined tail, pending delta, spatial index) so the next
    /// frame recomputes cold from its own bits alone — the keyframe-resync
    /// primitive of fault-tolerant sessions. See the cache-flush invariants
    /// in `volut_core::interpolate::temporal`.
    pub fn flush_caches(&mut self) {
        self.scratch.flush_temporal();
    }

    /// The session's frame-scratch arena (index cache, dual-tree scratch,
    /// neighborhood buffers) — read-only, for capacity/stats inspection.
    pub fn scratch(&self) -> &FrameScratch {
        &self.scratch
    }

    /// Calibrates an [`SrComputeModel`] from this session by measuring one
    /// representative frame.
    ///
    /// # Errors
    /// Propagates pipeline failures.
    pub fn calibrate_model(
        &mut self,
        representative_frame: &PointCloud,
        ratio: f64,
    ) -> volut_core::Result<SrComputeModel> {
        let name = self.pipeline.refiner_name().to_string();
        let result = self.upsample_frame(representative_frame, ratio)?;
        Ok(SrComputeModel::calibrate(&name, &result))
    }

    /// Calibrates an [`SrComputeModel`] by driving a churned delta-frame
    /// sequence live through this session — the temporally coherent
    /// counterpart of [`Self::calibrate_model`]. A single cold frame prices
    /// every chunk as if its geometry were brand new; real volumetric
    /// streams churn only a fraction of each frame, and the engine's
    /// incremental kNN reuse makes steady-state frames far cheaper. The
    /// sequence comes from [`volut_pointcloud::synthetic::DeltaStream`]
    /// (spatially coherent churn at `churn` fraction per frame); the model
    /// is calibrated from the *median*-total steady-state frame, so the
    /// analytic simulator charges temporally-coherent compute costs when
    /// handed to `StreamingSimulator::run_with_model`.
    ///
    /// # Errors
    /// Propagates pipeline failures.
    pub fn calibrate_model_churned(
        &mut self,
        base_frame: &PointCloud,
        ratio: f64,
        churn: f64,
        frames: usize,
    ) -> volut_core::Result<SrComputeModel> {
        use volut_pointcloud::synthetic::{DeltaStream, DeltaStreamConfig};
        let name = self.pipeline.refiner_name().to_string();
        let spacing = base_frame.mean_spacing(64).unwrap_or(0.01);
        let mut stream = DeltaStream::new(
            base_frame.clone(),
            DeltaStreamConfig {
                churn,
                drift: spacing * 4.0,
                jitter: spacing * 0.5,
                seed: 0xCAB,
            },
        );
        // Warm frame (cold index + row capture), then measured frames.
        self.upsample_frame(base_frame, ratio)?;
        let mut measured: Vec<SrResult> = Vec::with_capacity(frames.max(1));
        for _ in 0..frames.max(1) {
            let delta = stream.advance();
            measured.push(self.upsample_frame_delta(stream.frame(), ratio, delta)?);
        }
        measured.sort_by(|a, b| {
            a.timings
                .total()
                .as_secs_f64()
                .total_cmp(&b.timings.total().as_secs_f64())
        });
        let median = &measured[measured.len() / 2];
        Ok(SrComputeModel::calibrate(&name, median))
    }
}

/// Per-point compute cost of a super-resolution back-end, in microseconds on
/// the reference host.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SrComputeModel {
    /// Name used in reports.
    pub name: String,
    /// kNN / index time per *input* point.
    pub knn_us_per_input_point: f64,
    /// Interpolation time per *output* point.
    pub interp_us_per_output_point: f64,
    /// Colorization time per *output* point.
    pub colorize_us_per_output_point: f64,
    /// Refinement time per *output* point (LUT lookup or NN inference).
    pub refine_us_per_output_point: f64,
}

impl SrComputeModel {
    /// VoLUT's pipeline: octree kNN + dilated interpolation + LUT lookup.
    /// Defaults calibrated from host micro-benchmarks of `volut-core`.
    pub fn volut_lut() -> Self {
        Self {
            name: "volut-lut".into(),
            knn_us_per_input_point: 0.30,
            interp_us_per_output_point: 0.06,
            colorize_us_per_output_point: 0.02,
            refine_us_per_output_point: 0.06,
        }
    }

    /// Yuzu's neural SR: per-point inference through a ~500-wide network
    /// even in its frozen, optimized deployment.
    pub fn yuzu_nn() -> Self {
        Self {
            name: "yuzu-sr".into(),
            knn_us_per_input_point: 1.0,
            interp_us_per_output_point: 0.45,
            colorize_us_per_output_point: 0.05,
            refine_us_per_output_point: 8.0,
        }
    }

    /// GradPU's iterative neural refinement (multiple passes per point).
    pub fn gradpu_nn() -> Self {
        Self {
            name: "gradpu".into(),
            knn_us_per_input_point: 3.5,
            interp_us_per_output_point: 0.45,
            colorize_us_per_output_point: 0.05,
            refine_us_per_output_point: 180.0,
        }
    }

    /// No client-side SR (ViVo, raw streaming).
    pub fn none() -> Self {
        Self {
            name: "no-sr".into(),
            knn_us_per_input_point: 0.0,
            interp_us_per_output_point: 0.0,
            colorize_us_per_output_point: 0.0,
            refine_us_per_output_point: 0.0,
        }
    }

    /// Calibrates a model from a measured [`SrResult`]: divides the measured
    /// stage times by the actual point counts.
    pub fn calibrate(name: &str, result: &SrResult) -> Self {
        let input = result.input_points.max(1) as f64;
        let output = (result.cloud.len() - result.input_points).max(1) as f64;
        Self {
            name: name.into(),
            knn_us_per_input_point: (result.timings.index_build + result.timings.knn).as_secs_f64()
                * 1e6
                / input,
            interp_us_per_output_point: result.timings.interpolation.as_secs_f64() * 1e6 / output,
            colorize_us_per_output_point: result.timings.colorization.as_secs_f64() * 1e6 / output,
            refine_us_per_output_point: result.timings.refinement.as_secs_f64() * 1e6 / output,
        }
    }

    /// Host-time (seconds) to upsample one frame of `input_points` points by
    /// `sr_ratio`.
    pub fn frame_time_s(&self, input_points: f64, sr_ratio: f64) -> f64 {
        let ratio = sr_ratio.max(1.0);
        let output_points = input_points * (ratio - 1.0).max(0.0);
        (input_points * self.knn_us_per_input_point
            + output_points
                * (self.interp_us_per_output_point
                    + self.colorize_us_per_output_point
                    + self.refine_us_per_output_point))
            / 1e6
    }

    /// Host-time (seconds) to upsample an entire chunk fetched at
    /// `fetch_density` and upsampled by `sr_ratio`.
    pub fn chunk_time_s(&self, chunk: &Chunk, fetch_density: f64, sr_ratio: f64) -> f64 {
        let input_per_frame = chunk.points_per_frame as f64 * fetch_density.clamp(0.0, 1.0);
        self.frame_time_s(input_per_frame, sr_ratio) * chunk.frame_count as f64
    }

    /// Device-time (seconds) for the same chunk on a specific device profile:
    /// each stage is scaled by the profile's per-stage factor. The
    /// `nn_inference` flag controls whether refinement scales like NN
    /// inference (Yuzu/GradPU) or like a memory-bound lookup (VoLUT).
    pub fn chunk_time_on_device(
        &self,
        chunk: &Chunk,
        fetch_density: f64,
        sr_ratio: f64,
        device: &DeviceProfile,
        nn_inference: bool,
    ) -> f64 {
        let input_per_frame = chunk.points_per_frame as f64 * fetch_density.clamp(0.0, 1.0);
        let ratio = sr_ratio.max(1.0);
        let output_per_frame = input_per_frame * (ratio - 1.0).max(0.0);
        let frames = chunk.frame_count as f64;
        let knn =
            input_per_frame * self.knn_us_per_input_point / 1e6 * device.scale_for(StageKind::Knn);
        let interp = output_per_frame * self.interp_us_per_output_point / 1e6
            * device.scale_for(StageKind::Interpolation);
        let colorize = output_per_frame * self.colorize_us_per_output_point / 1e6
            * device.scale_for(StageKind::Colorization);
        let refine_kind = if nn_inference {
            StageKind::NnInference
        } else {
            StageKind::LutLookup
        };
        let refine = output_per_frame * self.refine_us_per_output_point / 1e6
            * device.scale_for(refine_kind);
        (knn + interp + colorize + refine) * frames
    }

    /// Sustained super-resolution frame rate (FPS) on a device for frames of
    /// `input_points` upsampled by `sr_ratio`.
    pub fn device_fps(
        &self,
        input_points: f64,
        sr_ratio: f64,
        device: &DeviceProfile,
        nn_inference: bool,
    ) -> f64 {
        let chunk = Chunk {
            index: 0,
            first_frame: 0,
            frame_count: 1,
            duration_s: 1.0 / 30.0,
            points_per_frame: input_points as usize,
        };
        let t = self.chunk_time_on_device(&chunk, 1.0, sr_ratio, device, nn_inference);
        if t <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::chunk_video;
    use crate::video::VideoMeta;

    fn chunk() -> Chunk {
        chunk_video(&VideoMeta::long_dress(), 1.0)[0]
    }

    #[test]
    fn volut_is_faster_than_yuzu_and_gradpu() {
        let c = chunk();
        let volut = SrComputeModel::volut_lut().chunk_time_s(&c, 0.25, 4.0);
        let yuzu = SrComputeModel::yuzu_nn().chunk_time_s(&c, 0.25, 4.0);
        let gradpu = SrComputeModel::gradpu_nn().chunk_time_s(&c, 0.25, 4.0);
        assert!(volut < yuzu);
        assert!(yuzu < gradpu);
        assert!(volut > 0.0);
        assert_eq!(SrComputeModel::none().chunk_time_s(&c, 0.25, 4.0), 0.0);
    }

    #[test]
    fn frame_time_scales_with_ratio_moderately() {
        // The dominant cost is kNN over input points, so the frame time
        // should grow sub-linearly with the upsampling ratio (Figure 18).
        let m = SrComputeModel::volut_lut();
        let t2 = m.frame_time_s(25_000.0, 2.0);
        let t8 = m.frame_time_s(25_000.0, 8.0);
        assert!(t8 < t2 * 4.0, "t8 {t8} should be < 4x t2 {t2}");
        assert!(t8 > t2);
    }

    #[test]
    fn device_scaling_orders_platforms() {
        let c = chunk();
        let m = SrComputeModel::volut_lut();
        let desktop =
            m.chunk_time_on_device(&c, 0.25, 4.0, &DeviceProfile::desktop_3080ti(), false);
        let pi = m.chunk_time_on_device(&c, 0.25, 4.0, &DeviceProfile::orange_pi(), false);
        assert!(desktop < pi);
        // Yuzu pays the NN-inference scale factor on the Pi.
        let yuzu_pi = SrComputeModel::yuzu_nn().chunk_time_on_device(
            &c,
            0.25,
            4.0,
            &DeviceProfile::orange_pi(),
            true,
        );
        assert!(yuzu_pi > pi);
    }

    #[test]
    fn volut_hits_line_rate_on_orange_pi() {
        // The headline claim: 30+ FPS SR on mobile for 100K-point output.
        let m = SrComputeModel::volut_lut();
        let fps = m.device_fps(25_000.0, 4.0, &DeviceProfile::orange_pi(), false);
        assert!(fps > 5.0, "orange pi fps {fps}");
        let desktop_fps = m.device_fps(25_000.0, 4.0, &DeviceProfile::desktop_3080ti(), false);
        assert!(desktop_fps > 30.0, "desktop fps {desktop_fps}");
        assert!(desktop_fps > fps);
    }

    #[test]
    fn calibration_from_measured_result() {
        use volut_core::{refine::IdentityRefiner, SrConfig, SrPipeline};
        use volut_pointcloud::synthetic;
        let pipeline = SrPipeline::new(SrConfig::default(), Box::new(IdentityRefiner));
        let low = synthetic::sphere(2000, 1.0, 1);
        let result = pipeline.upsample(&low, 2.0).unwrap();
        let model = SrComputeModel::calibrate("measured", &result);
        assert!(model.knn_us_per_input_point > 0.0);
        assert!(model.frame_time_s(2000.0, 2.0) > 0.0);
    }

    #[test]
    fn repeated_frames_amortize_index_builds() {
        use volut_core::{refine::IdentityRefiner, SrConfig, SrPipeline};
        use volut_pointcloud::synthetic;
        let mut session = SrSession::new(SrPipeline::new(
            SrConfig::default(),
            Box::new(IdentityRefiner),
        ));
        // A static chunk: the same frame repeated. Only frame 1 builds the
        // spatial index; every later frame reuses the cached one, and the
        // stage timings report the (near-zero) validation cost separately.
        let frame = synthetic::sphere(2_000, 1.0, 5);
        let first = session.upsample_frame(&frame, 2.0).unwrap();
        let mut later_builds = std::time::Duration::ZERO;
        for _ in 0..4 {
            let r = session.upsample_frame(&frame, 2.0).unwrap();
            assert_eq!(r.cloud, first.cloud);
            later_builds += r.timings.index_build;
        }
        let stats = session.index_stats();
        assert_eq!(stats.rebuilds, 1, "stats {stats:?}");
        assert_eq!(stats.reuses, 4, "stats {stats:?}");
        // The content check is linear; the rebuild is O(n log n) plus a
        // clone. Four validations together should undercut one build by a
        // wide margin (loose 2x bound to stay robust on noisy CI hosts).
        assert!(
            later_builds
                < first
                    .timings
                    .index_build
                    .max(std::time::Duration::from_micros(50))
                    * 2,
            "validation {later_builds:?} vs first build {:?}",
            first.timings.index_build
        );

        // The keyed path trusts the generation without content checks.
        let keyed = session.upsample_frame_keyed(&frame, 2.0, 42).unwrap();
        assert_eq!(keyed.cloud, first.cloud);
        let _ = session.upsample_frame_keyed(&frame, 2.0, 42).unwrap();
        assert_eq!(session.index_stats().reuses, 6);
        assert_eq!(session.index_stats().rebuilds, 1);
    }

    #[test]
    fn repeated_frames_hit_dual_tree_without_rebuilds_or_allocs() {
        use volut_core::{refine::IdentityRefiner, SrConfig, SrPipeline};
        use volut_pointcloud::synthetic;
        // Production-scale frame: large enough that the batch layer's auto
        // policy selects the dual-tree kernel for the per-frame kNN
        // self-join. The engine keeps such batches whole at every worker
        // count — the traversal parallelizes internally by sharding the
        // query-leaf set — so the counter assertions hold on any host.
        let n = 6_000;
        let frames = 4u64;
        let mut session = SrSession::new(SrPipeline::new(
            SrConfig::default(),
            Box::new(IdentityRefiner),
        ));
        let frame = synthetic::sphere(n, 1.0, 17);
        let first = session.upsample_frame(&frame, 2.0).unwrap();
        let reserved = session.scratch().dual_tree_reserved_bytes();
        for _ in 1..frames {
            let r = session.upsample_frame(&frame, 2.0).unwrap();
            assert_eq!(r.cloud, first.cloud);
        }
        let stats = session.index_stats();
        // Identical geometry: exactly one index rebuild, every later frame
        // served from the cache...
        assert_eq!(stats.rebuilds, 1, "stats {stats:?}");
        assert_eq!(stats.reuses, frames - 1, "stats {stats:?}");
        // ...the cold frame's self-join answered by the dual-tree kernel,
        // and every later (identical) frame's rows copied forward wholesale
        // by the temporal layer instead of paying the kernel again...
        assert_eq!(stats.dual_tree_batches, 1, "stats {stats:?}");
        assert_eq!(
            stats.rows_reused,
            (frames - 1) * n as u64,
            "stats {stats:?}"
        );
        assert!(reserved > 0);
        // ...and steady-state frames grow no dual-tree scratch capacity.
        assert_eq!(
            session.scratch().dual_tree_reserved_bytes(),
            reserved,
            "repeated identical frames must not allocate dual-tree scratch"
        );
    }

    #[test]
    fn churned_session_reuses_rows_and_matches_full_recompute() {
        use volut_core::{refine::IdentityRefiner, SrConfig, SrPipeline};
        use volut_pointcloud::synthetic::{DeltaStream, DeltaStreamConfig};
        let make_session = || {
            SrSession::new(SrPipeline::new(
                SrConfig::default(),
                Box::new(IdentityRefiner),
            ))
        };
        let mut incremental = make_session();
        let mut full = make_session();
        full.set_incremental(false);
        let base = volut_pointcloud::synthetic::humanoid(3_000, 0.4, 23);
        let mut stream = DeltaStream::new(
            base,
            DeltaStreamConfig {
                churn: 0.1,
                drift: 0.05,
                jitter: 0.01,
                seed: 7,
            },
        );
        for frame_no in 0..6 {
            let frame = stream.frame().clone();
            let a = incremental.upsample_frame(&frame, 2.0).unwrap();
            let b = full.upsample_frame(&frame, 2.0).unwrap();
            assert_eq!(a.cloud, b.cloud, "frame {frame_no}: bit-identical");
            stream.advance();
        }
        let stats = incremental.index_stats();
        assert!(stats.rows_reused > 0, "stats {stats:?}");
        assert!(stats.rows_recomputed > 0, "stats {stats:?}");
        // Frame 1 rebuilds; later frames are patched or (rarely, once the
        // churn budget is crossed) rebuilt — never content-reused, since
        // every frame differs.
        assert_eq!(stats.reuses, 0, "stats {stats:?}");
        assert_eq!(stats.rebuilds + stats.patches, 6, "stats {stats:?}");
        assert!(stats.patches >= 3, "stats {stats:?}");
        let t = incremental.temporal_stats();
        assert_eq!(t.incremental_frames, 5, "stats {t:?}");
        assert_eq!(t.full_frames, 1, "stats {t:?}");
        // At 10% spatially-coherent churn, most rows must be copied
        // forward, not recomputed.
        assert!(
            t.rows_reused > t.rows_recomputed,
            "reuse should dominate at 10% coherent churn: {t:?}"
        );
        // Downstream reuse must track churn too: most generated points —
        // and their refined positions — ride the copy-forward path through
        // interpolation, colorization and refinement.
        assert!(
            t.gen_points_reused > t.gen_points_recomputed,
            "gen-point reuse should dominate at 10% coherent churn: {t:?}"
        );
        assert!(
            t.refined_points_reused > t.refined_points_recomputed,
            "refined-point reuse should dominate at 10% coherent churn: {t:?}"
        );
        // The disabled session did all-full frames.
        let t_full = full.temporal_stats();
        assert_eq!(t_full.rows_reused, 0);
        assert_eq!(t_full.incremental_frames, 0);
        assert_eq!(t_full.gen_points_reused, 0);
        assert_eq!(t_full.refined_points_reused, 0);
    }

    #[test]
    fn churned_session_has_zero_steady_state_scratch_growth() {
        use volut_core::{refine::IdentityRefiner, SrConfig, SrPipeline};
        use volut_pointcloud::synthetic::{DeltaStream, DeltaStreamConfig};
        let mut session = SrSession::new(SrPipeline::new(
            SrConfig::default(),
            Box::new(IdentityRefiner),
        ));
        let base = volut_pointcloud::synthetic::humanoid(4_000, 0.2, 29);
        let mut stream = DeltaStream::new(
            base,
            DeltaStreamConfig {
                churn: 0.1,
                drift: 0.04,
                jitter: 0.01,
                seed: 13,
            },
        );
        // Warm up past the first full rebuild cycle (patch budget crossing
        // included) so every buffer reaches its steady-state high-water
        // mark...
        for _ in 0..8 {
            session.upsample_frame(stream.frame(), 2.0).unwrap();
            stream.advance();
        }
        let reserved = session.scratch().reserved_bytes();
        assert!(reserved > 0);
        // ...then assert the churned steady state allocates nothing new.
        for frame_no in 8..16 {
            session.upsample_frame(stream.frame(), 2.0).unwrap();
            stream.advance();
            assert_eq!(
                session.scratch().reserved_bytes(),
                reserved,
                "frame {frame_no} grew the scratch"
            );
        }
    }

    #[test]
    fn explicit_delta_api_matches_diffed_and_full_paths() {
        use volut_core::{refine::IdentityRefiner, SrConfig, SrPipeline};
        use volut_pointcloud::synthetic::{DeltaStream, DeltaStreamConfig};
        let make_session = || {
            SrSession::new(SrPipeline::new(
                SrConfig::default(),
                Box::new(IdentityRefiner),
            ))
        };
        let mut keyed = make_session();
        let mut diffed = make_session();
        let mut full = make_session();
        full.set_incremental(false);
        let base = volut_pointcloud::synthetic::sphere(2_500, 1.0, 31);
        let cfg = DeltaStreamConfig {
            churn: 0.15,
            drift: 0.06,
            jitter: 0.01,
            seed: 3,
        };
        let mut stream = DeltaStream::new(base.clone(), cfg);
        let a = keyed.upsample_frame(&base, 2.0).unwrap();
        let b = diffed.upsample_frame(&base, 2.0).unwrap();
        assert_eq!(a.cloud, b.cloud);
        for _ in 0..4 {
            let delta = stream.advance();
            let frame = stream.frame().clone();
            let a = keyed.upsample_frame_delta(&frame, 2.0, delta).unwrap();
            let b = diffed.upsample_frame(&frame, 2.0).unwrap();
            let c = full.upsample_frame(&frame, 2.0).unwrap();
            assert_eq!(a.cloud, b.cloud);
            assert_eq!(a.cloud, c.cloud);
        }
        assert!(keyed.temporal_stats().rows_reused > 0);
        // Every delta so far was correct, so no rejection is recorded.
        assert_eq!(keyed.last_delta_error(), None);
        // A *wrong* delta (stale by one frame) must not corrupt results —
        // the engine verifies and falls back to its own diff.
        let stale = stream.advance();
        let _skipped = stream.frame().clone();
        let wrong_frame_delta = stale; // describes the previous transition
        let next = stream.advance();
        drop(next);
        let frame = stream.frame().clone();
        let a = keyed
            .upsample_frame_delta(&frame, 2.0, wrong_frame_delta)
            .unwrap();
        let c = full.upsample_frame(&frame, 2.0).unwrap();
        assert_eq!(a.cloud, c.cloud);
        // The rejection reason is typed: the stale delta chains from the
        // cached frame (old length matches) but lands on the skipped frame,
        // so verification fails on content — a survivor whose position
        // differs (or, had the churn changed the count, the new length).
        match keyed.last_delta_error() {
            Some(
                volut_pointcloud::DeltaError::PositionMismatch { .. }
                | volut_pointcloud::DeltaError::NewLenMismatch { .. },
            ) => {}
            other => panic!("expected a content rejection, got {other:?}"),
        }
        // A subsequent correct delta clears the record.
        let delta = stream.advance();
        keyed
            .upsample_frame_delta(&stream.frame().clone(), 2.0, delta)
            .unwrap();
        assert_eq!(keyed.last_delta_error(), None);
    }

    #[test]
    fn session_reuses_scratch_across_frames() {
        use volut_core::{refine::IdentityRefiner, SrConfig, SrPipeline};
        use volut_pointcloud::synthetic;
        let fresh_pipeline = SrPipeline::new(SrConfig::default(), Box::new(IdentityRefiner));
        let mut session = SrSession::new(SrPipeline::new(
            SrConfig::default(),
            Box::new(IdentityRefiner),
        ));
        for seed in 0..4 {
            let frame = synthetic::sphere(600, 1.0, seed);
            let expected = fresh_pipeline.upsample(&frame, 2.5).unwrap();
            let got = session.upsample_frame(&frame, 2.5).unwrap();
            assert_eq!(expected.cloud, got.cloud, "frame {seed}");
        }
        assert_eq!(session.frames_upsampled(), 4);
        let frame = synthetic::sphere(600, 1.0, 9);
        let model = session.calibrate_model(&frame, 2.0).unwrap();
        assert_eq!(model.name, "identity");
        assert!(model.frame_time_s(600.0, 2.0) >= 0.0);
    }
}

//! The QoE objective (Eq. 10), borrowed from Yuzu's SR-targeting
//! formulation: `QoE = Σ α·Q(r) − β·V(r_i, r_{i−1}) − γ·S(r_i)`.
//!
//! * `Q(r)` — visual quality, measured as the post-SR point density the user
//!   actually views, normalized by the full-density point count;
//! * `V` — quality-variation penalty between consecutive chunks, weighted
//!   more heavily for quality drops (which viewers notice more);
//! * `S` — stall (rebuffering) time in seconds.

use serde::{Deserialize, Serialize};

/// Weights of the QoE objective.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QoeParams {
    /// Weight of the quality term.
    pub alpha: f64,
    /// Weight of the quality-variation penalty.
    pub beta: f64,
    /// Extra multiplier applied to downward quality switches.
    pub drop_penalty: f64,
    /// Weight of the stall penalty (per second of stall).
    pub gamma: f64,
}

impl Default for QoeParams {
    fn default() -> Self {
        // α = 1 per chunk-second of full quality; stalls are heavily
        // penalized (a 1-second stall erases ~4 chunk-seconds of quality),
        // matching the qualitative weighting of Yuzu's user study.
        Self {
            alpha: 1.0,
            beta: 1.0,
            drop_penalty: 1.5,
            gamma: 4.0,
        }
    }
}

/// Per-chunk QoE record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChunkQoe {
    /// Post-SR quality in `[0, 1]` (viewed density / full density).
    pub quality: f64,
    /// Quality of the previous chunk (for the variation term).
    pub previous_quality: f64,
    /// Stall time attributed to this chunk, in seconds.
    pub stall_s: f64,
    /// Chunk playback duration in seconds.
    pub duration_s: f64,
}

/// Accumulates per-chunk records into a session QoE score.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QoeAccumulator {
    chunks: Vec<ChunkQoe>,
}

/// Final QoE summary of a session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QoeSummary {
    /// Raw QoE score (Eq. 10).
    pub score: f64,
    /// Maximum achievable score for the same session (full quality, no
    /// stalls, no switches) — used for normalization.
    pub ideal_score: f64,
    /// `score / ideal_score × 100`, the "normalized QoE" of Figures 12/14.
    pub normalized: f64,
    /// Mean post-SR quality.
    pub mean_quality: f64,
    /// Total stall seconds.
    pub total_stall_s: f64,
    /// Mean absolute quality change between consecutive chunks.
    pub mean_variation: f64,
}

impl QoeAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one chunk.
    pub fn push(&mut self, chunk: ChunkQoe) {
        self.chunks.push(chunk);
    }

    /// Number of recorded chunks.
    pub fn len(&self) -> usize {
        self.chunks.len()
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.chunks.is_empty()
    }

    /// Computes the session summary under the given weights.
    pub fn summarize(&self, params: &QoeParams) -> QoeSummary {
        if self.chunks.is_empty() {
            return QoeSummary {
                score: 0.0,
                ideal_score: 0.0,
                normalized: 0.0,
                mean_quality: 0.0,
                total_stall_s: 0.0,
                mean_variation: 0.0,
            };
        }
        let mut score = 0.0;
        let mut ideal = 0.0;
        let mut quality_sum = 0.0;
        let mut stall_sum = 0.0;
        let mut variation_sum = 0.0;
        for c in &self.chunks {
            let quality = c.quality.clamp(0.0, 1.0);
            let prev = c.previous_quality.clamp(0.0, 1.0);
            let variation = (quality - prev).abs();
            let drop_extra = if quality < prev {
                params.drop_penalty
            } else {
                1.0
            };
            score += params.alpha * quality * c.duration_s
                - params.beta * variation * drop_extra
                - params.gamma * c.stall_s;
            ideal += params.alpha * c.duration_s;
            quality_sum += quality;
            stall_sum += c.stall_s;
            variation_sum += variation;
        }
        let n = self.chunks.len() as f64;
        let normalized = if ideal > 0.0 {
            (score / ideal * 100.0).max(0.0)
        } else {
            0.0
        };
        QoeSummary {
            score,
            ideal_score: ideal,
            normalized,
            mean_quality: quality_sum / n,
            total_stall_s: stall_sum,
            mean_variation: variation_sum / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(q: f64, prev: f64, stall: f64) -> ChunkQoe {
        ChunkQoe {
            quality: q,
            previous_quality: prev,
            stall_s: stall,
            duration_s: 1.0,
        }
    }

    #[test]
    fn perfect_session_is_normalized_100() {
        let mut acc = QoeAccumulator::new();
        for _ in 0..10 {
            acc.push(chunk(1.0, 1.0, 0.0));
        }
        let s = acc.summarize(&QoeParams::default());
        assert!((s.normalized - 100.0).abs() < 1e-9);
        assert_eq!(s.total_stall_s, 0.0);
        assert_eq!(s.mean_quality, 1.0);
    }

    #[test]
    fn stalls_reduce_qoe() {
        let mut no_stall = QoeAccumulator::new();
        let mut stall = QoeAccumulator::new();
        for _ in 0..10 {
            no_stall.push(chunk(0.8, 0.8, 0.0));
            stall.push(chunk(0.8, 0.8, 0.2));
        }
        let p = QoeParams::default();
        assert!(stall.summarize(&p).score < no_stall.summarize(&p).score);
        assert!((stall.summarize(&p).total_stall_s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quality_drops_penalized_more_than_rises() {
        let p = QoeParams::default();
        let mut rising = QoeAccumulator::new();
        rising.push(chunk(1.0, 0.5, 0.0));
        let mut dropping = QoeAccumulator::new();
        dropping.push(chunk(0.5, 1.0, 0.0));
        let rise_score = rising.summarize(&p).score;
        let drop_score = dropping.summarize(&p).score;
        // Same |Δq| but dropping also has lower quality and a drop multiplier.
        assert!(drop_score < rise_score);
    }

    #[test]
    fn higher_quality_higher_qoe() {
        let p = QoeParams::default();
        let mut low = QoeAccumulator::new();
        let mut high = QoeAccumulator::new();
        for _ in 0..5 {
            low.push(chunk(0.3, 0.3, 0.0));
            high.push(chunk(0.9, 0.9, 0.0));
        }
        assert!(high.summarize(&p).normalized > low.summarize(&p).normalized);
    }

    #[test]
    fn empty_accumulator_is_zero() {
        let acc = QoeAccumulator::new();
        assert!(acc.is_empty());
        let s = acc.summarize(&QoeParams::default());
        assert_eq!(s.score, 0.0);
        assert_eq!(s.normalized, 0.0);
    }
}

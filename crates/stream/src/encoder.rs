//! Server-side chunk encoding.
//!
//! The server stores full-density frames and, on request, encodes a chunk at
//! the point density chosen by the client's ABR controller using random
//! downsampling (§5.2), then serializes it with the binary `.vpc` wire
//! format.

use crate::video::VolumetricVideo;
use crate::Result;
use volut_pointcloud::{io, sampling, PointCloud};

/// An encoded (downsampled + serialized) frame ready for transmission.
#[derive(Debug, Clone)]
pub struct EncodedFrame {
    /// Frame index within the video.
    pub frame_index: usize,
    /// Density ratio the frame was encoded at.
    pub density: f64,
    /// Number of points actually included.
    pub points: usize,
    /// Serialized payload.
    pub payload: bytes::Bytes,
}

impl EncodedFrame {
    /// Payload size in bytes.
    pub fn byte_len(&self) -> usize {
        self.payload.len()
    }

    /// Decodes the payload back into a point cloud.
    ///
    /// # Errors
    /// Returns a format error when the payload is corrupted.
    pub fn decode(&self) -> Result<PointCloud> {
        Ok(io::decode(&self.payload)?)
    }
}

/// Server-side encoder over a materialized video.
#[derive(Debug)]
pub struct ServerEncoder<'a> {
    video: &'a VolumetricVideo,
}

impl<'a> ServerEncoder<'a> {
    /// Creates an encoder for the given video.
    pub fn new(video: &'a VolumetricVideo) -> Self {
        Self { video }
    }

    /// Encodes frame `frame_index` at `density` (a ratio in `(0, 1]`).
    ///
    /// # Errors
    /// Returns an error when the frame does not exist or the density is
    /// outside its domain.
    pub fn encode_frame(
        &self,
        frame_index: usize,
        density: f64,
        seed: u64,
    ) -> Result<EncodedFrame> {
        let frame = self
            .video
            .frame(frame_index)
            .ok_or_else(|| crate::Error::NotFound(format!("frame {frame_index}")))?;
        let low = if density >= 1.0 {
            frame.clone()
        } else {
            sampling::random_downsample(frame, density, seed.wrapping_add(frame_index as u64))?
        };
        Ok(EncodedFrame {
            frame_index,
            density,
            points: low.len(),
            payload: io::encode(&low),
        })
    }

    /// Encodes a run of frames starting at `first_frame`.
    ///
    /// # Errors
    /// Fails when any frame is missing or the density is invalid.
    pub fn encode_frames(
        &self,
        first_frame: usize,
        count: usize,
        density: f64,
        seed: u64,
    ) -> Result<Vec<EncodedFrame>> {
        (first_frame..first_frame + count)
            .map(|i| self.encode_frame(i, density, seed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::video::VideoMeta;

    fn video() -> VolumetricVideo {
        VolumetricVideo::generate(&VideoMeta::tiny(4, 800), 4, 800, 3)
    }

    #[test]
    fn full_density_roundtrip() {
        let v = video();
        let enc = ServerEncoder::new(&v);
        let frame = enc.encode_frame(0, 1.0, 1).unwrap();
        assert_eq!(frame.points, 800);
        let decoded = frame.decode().unwrap();
        assert_eq!(&decoded, v.frame(0).unwrap());
    }

    #[test]
    fn downsampled_frames_are_smaller() {
        let v = video();
        let enc = ServerEncoder::new(&v);
        let full = enc.encode_frame(1, 1.0, 1).unwrap();
        let half = enc.encode_frame(1, 0.5, 1).unwrap();
        assert!(half.points < full.points);
        assert!(half.byte_len() < full.byte_len());
        let ratio = half.points as f64 / full.points as f64;
        assert!((ratio - 0.5).abs() < 0.15, "got {ratio}");
    }

    #[test]
    fn missing_frame_and_bad_density_are_rejected() {
        let v = video();
        let enc = ServerEncoder::new(&v);
        assert!(enc.encode_frame(99, 1.0, 1).is_err());
        assert!(enc.encode_frame(0, 0.0, 1).is_err());
    }

    #[test]
    fn multi_frame_encoding() {
        let v = video();
        let enc = ServerEncoder::new(&v);
        let frames = enc.encode_frames(0, 3, 0.25, 7).unwrap();
        assert_eq!(frames.len(), 3);
        assert!(frames.iter().all(|f| f.points < 400));
    }
}
